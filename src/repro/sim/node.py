"""Actor base class for protocol participants.

Every protocol role in the reproduction — MDCC storage node, master,
app-server coordinator, 2PC participant, Megastore* replica — subclasses
:class:`Node` and implements message handlers.  Nodes live in a data center
and talk exclusively through the :class:`~repro.sim.network.Network`, which
is what makes the wide-area behaviour (and failures) observable.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.sim.core import Event, Simulator
from repro.sim.network import Network

__all__ = ["Node"]


class Node:
    """A simulated machine: unique id, home data center, message dispatch.

    Message dispatch convention: ``on_message`` looks up a handler method
    named ``handle_<TypeName>`` (snake-cased message class name) and calls
    it as ``handler(message, src_id)``.  Unhandled messages raise — silence
    hides protocol bugs.
    """

    def __init__(self, sim: Simulator, network: Network, node_id: str, dc: str) -> None:
        self.sim = sim
        self.network = network
        self.node_id = node_id
        self.dc = dc
        self._handler_cache: Dict[type, Optional[Callable]] = {}
        network.register(self)

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send(self, dst_id: str, message: object) -> None:
        """Send a message over the network (latency applies)."""
        self.network.send(self.node_id, dst_id, message)

    def broadcast(self, dst_ids, message: object) -> int:
        """Send ``message`` to every destination in ``dst_ids``."""
        return self.network.broadcast(self.node_id, dst_ids, message)

    def on_message(self, message: object, src_id: str) -> None:
        handler = self._resolve_handler(type(message))
        if handler is None:
            raise NotImplementedError(
                f"{type(self).__name__} {self.node_id!r} has no handler for "
                f"{type(message).__name__}"
            )
        handler(message, src_id)

    def _resolve_handler(self, message_type: type) -> Optional[Callable]:
        if message_type not in self._handler_cache:
            name = "handle_" + _snake_case(message_type.__name__)
            self._handler_cache[message_type] = getattr(self, name, None)
        return self._handler_cache[message_type]

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def set_timer(self, delay: float, callback: Callable, *args: Any) -> Event:
        """Schedule a local callback; returns a cancellable handle."""
        return self.sim.schedule(delay, callback, *args)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.node_id} @ {self.dc}>"


def _snake_case(name: str) -> str:
    out = []
    for index, char in enumerate(name):
        if char.isupper() and index > 0 and (
            not name[index - 1].isupper()
            or (index + 1 < len(name) and not name[index + 1].isupper())
        ):
            out.append("_")
        out.append(char.lower())
    return "".join(out)
