"""Actor base class for simulator-bound participants.

The transport-neutral actor base now lives in
:class:`repro.transport.base.Node`; protocol roles subclass that and take
a :class:`~repro.transport.base.Transport`.  This module keeps the
historical ``Node(sim, network, node_id, dc)`` constructor for test
doubles and legacy components that are written directly against the
simulator — it wraps the pair in a :class:`~repro.transport.simnet.SimTransport`
and exposes the familiar ``self.sim`` / ``self.network`` attributes.
"""

from __future__ import annotations

from repro.sim.core import Simulator
from repro.sim.network import Network
from repro.transport.base import Node as TransportNode
from repro.transport.base import _snake_case  # noqa: F401 - re-export
from repro.transport.simnet import SimTransport

__all__ = ["Node"]


class Node(TransportNode):
    """A simulated machine addressed as ``Node(sim, network, node_id, dc)``.

    See :class:`repro.transport.base.Node` for the dispatch convention.
    """

    def __init__(self, sim: Simulator, network: Network, node_id: str, dc: str) -> None:
        super().__init__(SimTransport(sim, network), node_id, dc)
        self.sim = sim
        self.network = network
