"""Deprecated re-export of :mod:`repro.metrics`.

The measurement instruments started life inside the simulation package,
but they are pure data structures that protocol roles use identically
over every transport backend — so they now live in the neutral
:mod:`repro.metrics`.  Importing them from here still works but warns;
this shim will be removed in a future revision.
"""

import warnings

warnings.warn(
    "repro.sim.monitor is deprecated; import from repro.metrics instead",
    DeprecationWarning,
    stacklevel=2,
)

from repro.metrics import (  # noqa: E402
    BoxplotStats,
    Counter,
    CounterSet,
    LatencyRecorder,
    TimeSeries,
    percentile,
)

__all__ = [
    "BoxplotStats",
    "Counter",
    "CounterSet",
    "LatencyRecorder",
    "TimeSeries",
    "percentile",
]
