"""Backward-compatible re-export of :mod:`repro.metrics`.

The measurement instruments started life inside the simulation package,
but they are pure data structures that protocol roles use identically
over every transport backend — so they now live in the neutral
:mod:`repro.metrics`.  Importing them from here keeps working.
"""

from repro.metrics import (
    BoxplotStats,
    Counter,
    CounterSet,
    LatencyRecorder,
    TimeSeries,
    percentile,
)

__all__ = [
    "BoxplotStats",
    "Counter",
    "CounterSet",
    "LatencyRecorder",
    "TimeSeries",
    "percentile",
]
