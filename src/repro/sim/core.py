"""Deterministic discrete-event simulation kernel.

Time is a ``float`` measured in **milliseconds**, matching the units the MDCC
paper reports (wide-area round trips are hundreds of milliseconds).  The
kernel is intentionally small: an event heap, a virtual clock, cancellable
timers, futures, and a generator-based process runner used by workload
clients.

Determinism: the kernel itself introduces no randomness.  Events scheduled
for the same instant fire in schedule order (a monotonic sequence number
breaks ties), so a simulation driven by seeded RNG streams replays exactly.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Optional

from repro.transport.base import Future, TransportError, all_of, any_of

__all__ = [
    "Event",
    "Future",
    "Process",
    "SimulationError",
    "Simulator",
    "all_of",
    "any_of",
]

# The neutral transport layer owns Future and the misuse exception; the
# historical names remain importable from here.  SimulationError *is*
# TransportError, so ``except SimulationError`` keeps catching failures
# raised by either layer.
SimulationError = TransportError


class Event:
    """A scheduled callback; a handle that allows cancellation.

    Instances are created by :meth:`Simulator.schedule` — not directly.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable, args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing.  Safe to call more than once."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.3f} #{self.seq} {state}>"


class Process:
    """A generator-based simulated process.

    The generator may yield:

    * a :class:`Future` — suspend until it resolves; ``yield`` evaluates to
      the future's result (or raises its exception),
    * a ``float``/``int`` delay in milliseconds — suspend for that long,
    * ``None`` — reschedule immediately (yield the event loop).

    The process's own :attr:`completion` future resolves with the
    generator's return value.
    """

    __slots__ = ("sim", "generator", "completion", "name", "_stopped")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        self.sim = sim
        self.generator = generator
        self.completion = Future(sim)
        self.name = name or getattr(generator, "__name__", "process")
        self._stopped = False

    def stop(self) -> None:
        """Terminate the process; its completion future resolves to None."""
        if self._stopped or self.completion.done:
            return
        self._stopped = True
        self.generator.close()
        if not self.completion.done:
            self.completion.resolve(None)

    def _step(self, send_value: Any = None, throw: Optional[BaseException] = None) -> None:
        if self._stopped:
            return
        try:
            if throw is not None:
                yielded = self.generator.throw(throw)
            else:
                yielded = self.generator.send(send_value)
        except StopIteration as stop:
            if not self.completion.done:
                self.completion.resolve(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate via future
            if not self.completion.done:
                self.completion.fail(exc)
            return
        self._dispatch(yielded)

    def _dispatch(self, yielded: Any) -> None:
        if yielded is None:
            self.sim.post(0.0, self._step)
        elif isinstance(yielded, Future):
            yielded.add_done_callback(self._on_future)
        elif isinstance(yielded, (int, float)):
            if yielded < 0:
                self._step(throw=SimulationError("negative process delay"))
                return
            self.sim.post(float(yielded), self._step)
        else:
            self._step(
                throw=SimulationError(
                    f"process yielded unsupported value: {yielded!r}"
                )
            )

    def _on_future(self, fut: Future) -> None:
        # Resume on the next event so resolution-time callbacks finish first.
        if fut._exception is not None:
            exc = fut._exception
            self.sim.post(0.0, self._step, (None, exc))
        else:
            self.sim.post(0.0, self._step, (fut.result(),))


class Simulator:
    """The discrete-event loop: a heap of timestamped callbacks.

    Typical use::

        sim = Simulator()
        sim.schedule(10.0, node.tick)
        sim.spawn(client_process(sim))
        sim.run(until=60_000.0)
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._running = False
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable, *args: Any) -> Event:
        """Run ``callback(*args)`` after ``delay`` ms; returns a handle."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        event = Event(self._now + delay, next(self._seq), callback, args)
        # Heap entries are (time, seq, event) tuples so ordering compares
        # floats/ints at C speed instead of calling Event.__lt__.
        heapq.heappush(self._queue, (event.time, event.seq, event))
        return event

    def post(self, delay: float, callback: Callable, args: tuple = ()) -> None:
        """Schedule a callback that will never be cancelled — no handle.

        The hot-path variant of :meth:`schedule`: message deliveries and
        process steps are fire-and-forget, so they skip the :class:`Event`
        allocation and go on the heap as bare ``(time, seq, callback,
        args)`` tuples.  Sequence numbers are unique, so heap ordering
        never compares past the second element and the two entry shapes
        mix freely.  Ordering is identical to :meth:`schedule`.
        """
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        heapq.heappush(
            self._queue, (self._now + delay, next(self._seq), callback, args)
        )

    def schedule_at(self, time: float, callback: Callable, *args: Any) -> Event:
        """Run ``callback(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(f"cannot schedule in the past: {time} < {self._now}")
        return self.schedule(time - self._now, callback, *args)

    def future(self) -> Future:
        """Convenience constructor for a :class:`Future` bound to this sim."""
        return Future(self)

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a generator-based process immediately (at the current time)."""
        process = Process(self, generator, name=name)
        self.post(0.0, process._step)
        return process

    def sleep(self, delay: float) -> Future:
        """Return a future that resolves after ``delay`` ms."""
        fut = Future(self)
        self.post(delay, fut.resolve, (None,))
        return fut

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        Args:
            until: stop once virtual time would exceed this (ms).  Events at
                exactly ``until`` still run.  The clock is advanced to
                ``until`` when the horizon is reached with work remaining.
            max_events: safety valve; raise if more events than this fire.

        Returns:
            Number of events processed by this call.
        """
        if self._running:
            raise SimulationError("Simulator.run() re-entered")
        self._running = True
        processed = 0
        queue = self._queue
        pop = heapq.heappop
        bounded = until is not None
        capped = max_events is not None
        try:
            while queue:
                entry = queue[0]
                # Fire-and-forget 4-tuples are the common shape, so test
                # for them first; only 3-tuple Event entries can cancel.
                if len(entry) == 4:
                    time = entry[0]
                    if bounded and time > until:
                        self._now = until
                        break
                    pop(queue)
                    self._now = time
                    entry[2](*entry[3])
                else:
                    event = entry[2]
                    if event.cancelled:
                        pop(queue)
                        continue
                    time = entry[0]
                    if bounded and time > until:
                        self._now = until
                        break
                    pop(queue)
                    self._now = time
                    event.callback(*event.args)
                processed += 1
                if capped and processed > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway simulation?"
                    )
            else:
                if bounded and until > self._now:
                    self._now = until
        finally:
            self._running = False
            # Flushed once per run: nothing reads the counter mid-drain.
            self.events_processed += processed
        return processed

    def run_until(self, future: Future, limit: float = 1e9) -> Any:
        """Run until ``future`` resolves; return its result.

        Raises :class:`SimulationError` if the queue drains or the time
        limit passes without resolution — a deadlocked protocol, usually.
        """
        if self._running:
            raise SimulationError("Simulator.run_until() re-entered")
        self._running = True
        try:
            while not future.done:
                if not self._queue:
                    raise SimulationError(
                        "event queue drained before future resolved (deadlock?)"
                    )
                entry = heapq.heappop(self._queue)
                if len(entry) == 3 and entry[2].cancelled:
                    continue
                time = entry[0]
                if time > limit:
                    raise SimulationError(
                        f"future unresolved at time limit {limit} ms"
                    )
                self._now = time
                if len(entry) == 4:
                    entry[2](*entry[3])
                else:
                    event = entry[2]
                    event.callback(*event.args)
                self.events_processed += 1
        finally:
            self._running = False
        return future.result()

    @property
    def pending_events(self) -> int:
        """Number of queued (possibly cancelled) events — for tests."""
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator t={self._now:.3f} queue={len(self._queue)}>"
