"""Named deterministic random streams.

Every stochastic component (network jitter, workload key choice, client
arrival) draws from its own named stream so that adding a new consumer never
perturbs the draws seen by existing ones.  Streams are derived from a master
seed with a stable hash, making whole-simulation replays bit-identical.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RngRegistry", "derive_seed"]


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a stable 64-bit child seed from ``master_seed`` and ``name``.

    Uses SHA-256 rather than ``hash()`` because the latter is salted per
    interpreter run (PYTHONHASHSEED) and would break determinism.
    """
    payload = f"{master_seed}:{name}".encode()
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """A factory of independent, reproducible ``random.Random`` streams.

    >>> rngs = RngRegistry(seed=42)
    >>> a = rngs.stream("network")
    >>> b = rngs.stream("workload")
    >>> a is rngs.stream("network")
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the stream for ``name``."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.seed, name))
        return self._streams[name]

    def fork(self, name: str) -> "RngRegistry":
        """Return a child registry whose streams are independent of ours."""
        return RngRegistry(derive_seed(self.seed, f"fork:{name}"))

    def __contains__(self, name: str) -> bool:
        return name in self._streams
