"""Wide-area network model: the five-data-center fabric of the paper.

The MDCC evaluation ran across five Amazon EC2 regions: US-West
(N. California), US-East (Virginia), EU (Ireland), Asia-Pacific (Singapore)
and Asia-Pacific (Tokyo).  :data:`DEFAULT_RTT_MATRIX` encodes round-trip
times representative of those links circa the paper's measurements; the
protocol-visible property is the *ordering and rough magnitude* of the
inter-DC distances — e.g. the 4th-closest data center being meaningfully
farther than the 3rd is what separates QW-4/MDCC from QW-3 in Figure 3.

Failure injection mirrors §5.3.4: failing a data center silently drops every
message to or from its nodes ("we simulated the failed data center by
preventing the data center from receiving any messages").  Beyond the
paper's single scripted outage, the fabric supports the fault vocabulary of
the chaos engine (:mod:`repro.faults`): N-way partitions, per-node crashes,
and composable per-link degradation policies (added latency, jitter, loss).
"""

from __future__ import annotations

import math

from math import cos as _cos, exp as _exp, log as _log, sin as _sin, sqrt as _sqrt

_TWOPI = 2.0 * math.pi
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.sim.core import SimulationError, Simulator
from repro.sim.rng import RngRegistry

__all__ = [
    "DEFAULT_RTT_MATRIX",
    "EC2_REGIONS",
    "LatencyModel",
    "LinkPolicy",
    "Network",
    "NetworkStats",
]

#: The five regions of the paper's deployment, in the order introduced.
EC2_REGIONS: Tuple[str, ...] = (
    "us-west",
    "us-east",
    "eu-west",
    "ap-southeast",
    "ap-northeast",
)

#: Representative inter-region round-trip times in milliseconds.
#: Keyed by unordered region pair.
DEFAULT_RTT_MATRIX: Dict[FrozenSet[str], float] = {
    frozenset(("us-west", "us-east")): 80.0,
    frozenset(("us-west", "eu-west")): 170.0,
    frozenset(("us-west", "ap-southeast")): 210.0,
    frozenset(("us-west", "ap-northeast")): 120.0,
    frozenset(("us-east", "eu-west")): 90.0,
    frozenset(("us-east", "ap-southeast")): 260.0,
    frozenset(("us-east", "ap-northeast")): 170.0,
    frozenset(("eu-west", "ap-southeast")): 250.0,
    frozenset(("eu-west", "ap-northeast")): 270.0,
    frozenset(("ap-southeast", "ap-northeast")): 75.0,
}


class LatencyModel:
    """Samples one-way message latencies between data centers.

    One-way latency is half the configured RTT, multiplied by a lognormal
    jitter factor (geo links "vary significantly ... over time", §1) plus a
    fixed per-message processing overhead.  Intra-DC messages use a small
    constant RTT — the paper ignores intra-DC latency as negligible, but a
    nonzero value keeps event ordering realistic.
    """

    def __init__(
        self,
        rtt_matrix: Optional[Dict[FrozenSet[str], float]] = None,
        intra_dc_rtt: float = 1.0,
        jitter_sigma: float = 0.06,
        processing_overhead: float = 0.5,
        rng_registry: Optional[RngRegistry] = None,
    ) -> None:
        self.rtt_matrix = dict(DEFAULT_RTT_MATRIX if rtt_matrix is None else rtt_matrix)
        self.intra_dc_rtt = intra_dc_rtt
        self.jitter_sigma = jitter_sigma
        self.processing_overhead = processing_overhead
        registry = rng_registry or RngRegistry(seed=0)
        self._rng = registry.stream("network.latency")
        #: bound method: one attribute lookup saved per latency sample.
        #: Must stay ``gauss`` — swapping the distribution (or the call
        #: count) would shift the shared jitter stream and change every
        #: downstream trajectory, breaking the byte-identity artifacts.
        self._gauss = self._rng.gauss
        # Directional (src, dst) -> RTT table so the per-message hot path
        # avoids building a frozenset for every send.
        self._directional: Dict[Tuple[str, str], float] = {}
        #: (src, dst) -> precomputed base_rtt/2, filled lazily: the jitter
        #: multiplier is the only per-message math left in one_way().
        self._half_rtt: Dict[Tuple[str, str], float] = {}
        self._known: set[str] = set()
        for pair, rtt in self.rtt_matrix.items():
            names = tuple(sorted(pair))
            if len(names) == 2:
                self._directional[(names[0], names[1])] = rtt
                self._directional[(names[1], names[0])] = rtt
                self._known.update(names)

    def base_rtt(self, dc_a: str, dc_b: str) -> float:
        """Deterministic round-trip time between two data centers."""
        if dc_a == dc_b:
            return self.intra_dc_rtt
        rtt = self._directional.get((dc_a, dc_b))
        if rtt is None:
            raise SimulationError(f"no RTT configured for {dc_a!r} <-> {dc_b!r}")
        return rtt

    def one_way(self, src_dc: str, dst_dc: str) -> float:
        """Sample a one-way latency in milliseconds.

        Draws exactly one ``gauss`` from the shared jitter stream per call
        (when jitter is enabled) — the draw discipline the determinism
        artifacts depend on.
        """
        half = self._half_rtt.get((src_dc, dst_dc))
        if half is None:
            half = self.base_rtt(src_dc, dst_dc) / 2.0
            self._half_rtt[(src_dc, dst_dc)] = half
        sigma = self.jitter_sigma
        if sigma > 0:
            half *= math.exp(self._gauss(0.0, sigma))
        return half + self.processing_overhead

    def datacenters(self) -> Tuple[str, ...]:
        """All data centers mentioned in the matrix."""
        return tuple(sorted(self._known))

    def knows_datacenter(self, dc: str) -> bool:
        return dc in self._known

    def rtts_from(self, dc: str) -> Dict[str, float]:
        """``other_dc -> rtt`` for every configured link of ``dc``.

        The template for cloning a data center's network position — a
        replacement DC joining where a failed one used to be inherits its
        round-trip times.
        """
        return {
            other: rtt
            for (src, other), rtt in self._directional.items()
            if src == dc
        }

    def add_datacenter(self, dc: str, rtts: Dict[str, float]) -> None:
        """Register a new data center's links at runtime (elastic joins).

        ``rtts`` maps existing data centers to round-trip times.  Every
        *currently known* DC must be covered — a partially connected DC
        would crash the simulation on its first unreachable send — except
        that a matrix-known DC absent from ``rtts`` whose links were
        copied wholesale is caught at send time as before.
        """
        if dc in self._known:
            raise SimulationError(f"data center {dc!r} already configured")
        if not rtts:
            raise SimulationError(f"no RTTs supplied for new data center {dc!r}")
        missing = self._known - set(rtts)
        if missing:
            raise SimulationError(
                f"RTTs for new data center {dc!r} missing links to "
                f"{sorted(missing)}"
            )
        for other, rtt in rtts.items():
            if other == dc:
                raise SimulationError(f"self-RTT supplied for {dc!r}")
            if not rtt > 0:
                raise SimulationError(f"non-positive RTT {rtt!r} for {dc!r}<->{other!r}")
        for other, rtt in rtts.items():
            self.rtt_matrix[frozenset((dc, other))] = float(rtt)
            self._directional[(dc, other)] = float(rtt)
            self._directional[(other, dc)] = float(rtt)
        self._known.add(dc)

    def sorted_rtts_from(self, dc: str) -> list[Tuple[str, float]]:
        """(other_dc, rtt) pairs sorted by distance — used by tests/benches."""
        out = [(other, self.base_rtt(dc, other)) for other in self.datacenters() if other != dc]
        out.sort(key=lambda item: item[1])
        return out


@dataclass(frozen=True)
class LinkPolicy:
    """A composable degradation applied to one DC pair's traffic.

    Stacks on top of the base :class:`LatencyModel` sample: extra one-way
    latency, extra lognormal jitter on that latency, and an independent
    loss probability.  ``drop_rate=1.0`` is a severed (flapped-down) link.
    """

    extra_latency_ms: float = 0.0
    jitter_sigma: float = 0.0
    drop_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.extra_latency_ms < 0:
            raise SimulationError(f"negative extra latency: {self.extra_latency_ms}")
        if self.jitter_sigma < 0:
            raise SimulationError(f"negative jitter sigma: {self.jitter_sigma}")
        if not 0.0 <= self.drop_rate <= 1.0:
            raise SimulationError(f"drop rate out of range: {self.drop_rate}")


@dataclass
class NetworkStats:
    """Aggregate network counters, exposed for benchmarks and tests."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    per_type: Dict[str, int] = field(default_factory=dict)
    #: why messages were dropped: "dc-failure", "partition", "node-failure",
    #: "link-policy", "random", "unknown-destination", "unknown-source"
    #: (a deregistered node's residual timer fired).  Previously a DC
    #: outage and a partition were indistinguishable in the totals.
    dropped_by_reason: Dict[str, int] = field(default_factory=dict)

    def note_sent(self, message: object) -> None:
        self.messages_sent += 1
        name = type(message).__name__
        self.per_type[name] = self.per_type.get(name, 0) + 1

    def note_dropped(self, reason: str) -> None:
        self.messages_dropped += 1
        self.dropped_by_reason[reason] = self.dropped_by_reason.get(reason, 0) + 1

    def snapshot(self) -> Dict[str, object]:
        return {
            "sent": self.messages_sent,
            "delivered": self.messages_delivered,
            "dropped": self.messages_dropped,
            "dropped_by_reason": dict(sorted(self.dropped_by_reason.items())),
        }


class Network:
    """The message fabric connecting all simulated nodes.

    Nodes register under a unique id; :meth:`send` samples a latency from
    the :class:`LatencyModel` and schedules ``dst.on_message(msg, src_id)``.
    Messages are never reordered on the same (src, dst) pair beyond what
    latency jitter produces — like UDP, not TCP; the Paxos machinery is
    robust to reordering by design, and the paper's protocol tolerates
    "lost, duplicated or re-ordered messages".

    Failure injection:

    * :meth:`fail_datacenter` / :meth:`recover_datacenter` — drop all
      traffic touching a DC (Figure 8's scenario).  Idempotent: repeated
      calls (and repeats racing in-flight timers) are no-ops.
    * :meth:`fail_node` / :meth:`recover_node` — drop all traffic touching
      one node (a master crash, not a whole-DC outage).
    * :meth:`partition` / :meth:`heal_partition` — drop traffic between two
      specific DCs.
    * :meth:`partition_groups` / :meth:`clear_partition_groups` — an N-way
      split: DCs talk only within their group; unlisted DCs form one
      implicit remainder group.
    * :meth:`set_link_policy` / :meth:`clear_link_policy` — degrade one DC
      pair (added latency, jitter, loss).
    * :meth:`set_drop_rate` — uniform random message loss.

    Every fault transition notifies subscribers registered via
    :meth:`subscribe` — the hook the chaos engine's event log hangs off.
    """

    def __init__(
        self,
        sim: Simulator,
        latency_model: Optional[LatencyModel] = None,
        rng_registry: Optional[RngRegistry] = None,
    ) -> None:
        self.sim = sim
        registry = rng_registry or RngRegistry(seed=0)
        self.latency = latency_model or LatencyModel(rng_registry=registry)
        self._drop_rng = registry.stream("network.drop")
        self._link_rng = registry.stream("network.linkfault")
        self._nodes: Dict[str, "NodeLike"] = {}
        self._failed_dcs: set[str] = set()
        self._failed_nodes: set[str] = set()
        self._partitions: set[FrozenSet[str]] = set()
        #: dc -> group index under an N-way partition (None = no split).
        self._groups: Optional[Dict[str, int]] = None
        self._link_policies: Dict[FrozenSet[str], LinkPolicy] = {}
        self._listeners: List[Callable[[float, str, Dict[str, object]], None]] = []
        self.drop_rate = 0.0
        self.stats = NetworkStats()
        #: True while no DC/node failure, partition or group split is in
        #: force — lets :meth:`send` skip :meth:`_blocked_reason` entirely.
        #: Maintained by every fault mutator via :meth:`_refresh_fault_flag`.
        self._fault_free = True

    def _refresh_fault_flag(self) -> None:
        self._fault_free = not (
            self._failed_dcs
            or self._failed_nodes
            or self._partitions
            or self._groups is not None
        )

    # ------------------------------------------------------------------
    # Registration and lookup
    # ------------------------------------------------------------------
    def register(self, node: "NodeLike") -> None:
        """Attach a node; its ``node_id`` must be unique.

        Registration is a *runtime* operation: nodes may join long after
        construction (elastic membership).  Two guarantees make that safe:

        * the node's data center must be known to the latency model (see
          :meth:`add_datacenter`) — previously a node in an unknown DC
          registered silently, exchanged intra-DC traffic below the RTT
          model, and bypassed every DC-keyed fault (outages, partitions,
          link policies all match on the DC name), surfacing only as a
          mid-simulation crash on its first cross-DC send;
        * every fault already in force applies immediately — fault state
          is keyed by DC name and node id, never by registration-time
          snapshots, so a late registrant inherits active outages,
          partitions, group splits, link policies and node crashes.
        """
        if node.node_id in self._nodes:
            raise SimulationError(f"duplicate node id {node.node_id!r}")
        if not self.latency.knows_datacenter(node.dc):
            raise SimulationError(
                f"node {node.node_id!r} registered in unknown data center "
                f"{node.dc!r}; call add_datacenter() first"
            )
        self._nodes[node.node_id] = node

    def deregister(self, node_id: str) -> None:
        """Detach a node (a decommissioned replica).

        Subsequent traffic to it drops as ``unknown-destination``; a
        standing per-node failure entry is cleared so the id can be
        reused by a later (re-)join.  Deregistering an unknown id is a
        no-op — decommission races heal_all in chaos schedules.
        """
        if self._nodes.pop(node_id, None) is None:
            return
        self._failed_nodes.discard(node_id)
        self._refresh_fault_flag()
        self._notify("node-deregistered", node_id=node_id)

    def reset_datacenter_faults(self, dc: str) -> None:
        """Clear fault state keyed to ``dc``'s *name* (elastic rejoins).

        Fault state is DC-name-keyed, so a data center that failed, was
        decommissioned, and later rejoins under the same name would
        inherit its dead predecessor's outage and link faults — the
        DC-level analogue of :meth:`deregister` clearing per-node failure
        entries for id reuse.  Lifts a standing outage, pairwise
        partitions and degraded links involving ``dc``; an N-way group
        split is left alone (the rejoined DC lands in the implicit
        remainder group, as documented for late registrants).
        """
        self.recover_datacenter(dc)
        for pair in sorted(self._partitions, key=sorted):
            if dc in pair:
                self.heal_partition(*pair)
        for pair in sorted(self._link_policies, key=sorted):
            if dc in pair:
                self.clear_link_policy(*pair)

    def add_datacenter(self, dc: str, rtts: Dict[str, float]) -> None:
        """Wire a brand-new data center into the fabric at runtime.

        Delegates link setup to the latency model and announces the
        expansion to fault-event subscribers.  Nodes for ``dc`` can be
        registered once this returns; all DC-keyed fault state applies to
        them like any other DC (there is nothing to inherit — a new DC
        starts fault-free, but e.g. a group split listing only old DCs
        puts it in the implicit remainder group).
        """
        self.latency.add_datacenter(dc, rtts)
        self._notify("dc-registered", dc=dc, links=len(rtts))

    def node(self, node_id: str) -> "NodeLike":
        return self._nodes[node_id]

    def knows(self, node_id: str) -> bool:
        return node_id in self._nodes

    @property
    def node_ids(self) -> Tuple[str, ...]:
        return tuple(self._nodes)

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def send(self, src_id: str, dst_id: str, message: object) -> None:
        """Send ``message`` from ``src_id`` to ``dst_id`` (fire and forget)."""
        # Inlined stats.note_sent: this is the single hottest method in the
        # simulator, called once per protocol message.
        stats = self.stats
        stats.messages_sent += 1
        per_type = stats.per_type
        name = message.__class__.__name__
        # try/except subscripts beat .get on these always-hot dicts: the
        # exceptional arms (a new message type, a deregistered node) are
        # rare, and CPython try blocks cost nothing until they raise.
        try:
            per_type[name] += 1
        except KeyError:
            per_type[name] = 1
        nodes = self._nodes
        try:
            src = nodes[src_id]
        except KeyError:
            # A deregistered (decommissioned) node's residual timers may
            # still fire; its sends go nowhere — the process is gone.
            stats.note_dropped("unknown-source")
            return
        try:
            dst = nodes[dst_id]
        except KeyError:
            stats.note_dropped("unknown-destination")
            return
        if not self._fault_free:
            blocked = self._blocked_reason(src_id, src.dc, dst_id, dst.dc)
            if blocked is not None:
                stats.note_dropped(blocked)
                return
        if self.drop_rate > 0 and self._drop_rng.random() < self.drop_rate:
            stats.note_dropped("random")
            return
        # Inlined LatencyModel.one_way — the per-message draw discipline
        # (exactly one gauss when jitter is on) is preserved verbatim.
        latency = self.latency
        try:
            half = latency._half_rtt[(src.dc, dst.dc)]
        except KeyError:
            half = latency.base_rtt(src.dc, dst.dc) / 2.0
            latency._half_rtt[(src.dc, dst.dc)] = half
        sigma = latency.jitter_sigma
        if sigma > 0:
            # Inlined random.Random.gauss (identical algorithm and draw
            # count, including the cached second variate on the Random
            # instance) — the stream stays bit-for-bit identical while
            # the per-message method-call overhead goes away.
            rng = latency._rng
            z = rng.gauss_next
            rng.gauss_next = None
            if z is None:
                x2pi = rng.random() * _TWOPI
                g2rad = _sqrt(-2.0 * _log(1.0 - rng.random()))
                z = _cos(x2pi) * g2rad
                rng.gauss_next = _sin(x2pi) * g2rad
            half *= _exp(z * sigma)
        delay = half + latency.processing_overhead
        if self._link_policies:
            policy = self._link_policies.get(frozenset((src.dc, dst.dc)))
            if policy is not None:
                if policy.drop_rate > 0 and self._link_rng.random() < policy.drop_rate:
                    stats.note_dropped("link-policy")
                    return
                extra = policy.extra_latency_ms
                if policy.jitter_sigma > 0:
                    extra *= math.exp(self._link_rng.gauss(0.0, policy.jitter_sigma))
                delay += extra
        self.sim.post(delay, self._deliver, (dst_id, message, src_id))

    def broadcast(self, src_id: str, dst_ids: Iterable[str], message: object) -> int:
        """Send the same message to several destinations; returns the count."""
        count = 0
        for dst_id in dst_ids:
            self.send(src_id, dst_id, message)
            count += 1
        return count

    def _deliver(self, dst_id: str, message: object, src_id: str) -> None:
        try:
            dst = self._nodes[dst_id]
        except KeyError:
            self.stats.note_dropped("unknown-destination")
            return
        if not self._fault_free:
            # A DC or node that failed while the message was in flight
            # loses it.  (_fault_free is False whenever either set is
            # non-empty, so the fast path cannot skip a real failure.)
            if dst.dc in self._failed_dcs:
                self.stats.note_dropped("dc-failure")
                return
            if dst_id in self._failed_nodes:
                self.stats.note_dropped("node-failure")
                return
        self.stats.messages_delivered += 1
        dst.on_message(message, src_id)

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def subscribe(
        self, listener: Callable[[float, str, Dict[str, object]], None]
    ) -> None:
        """Register ``listener(now_ms, event, details)`` for every fault
        transition.  No-op transitions (failing an already-failed DC) do
        not fire — the hook reports effective state changes only."""
        self._listeners.append(listener)

    def _notify(self, event: str, **details: object) -> None:
        for listener in self._listeners:
            listener(self.sim.now, event, dict(details))

    def fail_datacenter(self, dc: str) -> None:
        """Drop all traffic to and from ``dc`` until recovery (§5.3.4).

        Idempotent: a second failure of an already-dark DC — a scheduled
        fault racing an in-flight timer that already fired — changes
        nothing and notifies nobody."""
        if dc in self._failed_dcs:
            return
        self._failed_dcs.add(dc)
        self._fault_free = False
        self._notify("dc-failed", dc=dc)

    def recover_datacenter(self, dc: str) -> None:
        if dc not in self._failed_dcs:
            return
        self._failed_dcs.discard(dc)
        self._refresh_fault_flag()
        self._notify("dc-recovered", dc=dc)

    def fail_node(self, node_id: str) -> None:
        """Crash one node: all its traffic drops until :meth:`recover_node`.

        Finer-grained than a DC outage — e.g. a master crash that leaves
        the rest of its data center serving."""
        if node_id in self._failed_nodes:
            return
        self._failed_nodes.add(node_id)
        self._fault_free = False
        self._notify("node-failed", node_id=node_id)

    def recover_node(self, node_id: str) -> None:
        if node_id not in self._failed_nodes:
            return
        self._failed_nodes.discard(node_id)
        self._refresh_fault_flag()
        self._notify("node-recovered", node_id=node_id)

    def partition(self, dc_a: str, dc_b: str) -> None:
        """Sever the link between two data centers (both directions)."""
        pair = frozenset((dc_a, dc_b))
        if pair in self._partitions:
            return
        self._partitions.add(pair)
        self._fault_free = False
        self._notify("partitioned", pair=tuple(sorted(pair)))

    def heal_partition(self, dc_a: str, dc_b: str) -> None:
        pair = frozenset((dc_a, dc_b))
        if pair not in self._partitions:
            return
        self._partitions.discard(pair)
        self._refresh_fault_flag()
        self._notify("partition-healed", pair=tuple(sorted(pair)))

    def partition_groups(self, groups: Sequence[Sequence[str]]) -> None:
        """Split the fabric N ways: traffic flows only within a group.

        DCs not named in any group form one implicit remainder group (they
        can still talk to each other, but to no listed DC).  Replaces any
        previous group split; pairwise :meth:`partition` cuts compose on
        top."""
        assignment: Dict[str, int] = {}
        for index, group in enumerate(groups):
            for dc in group:
                if dc in assignment:
                    raise SimulationError(f"DC {dc!r} appears in two groups")
                assignment[dc] = index
        self._groups = assignment
        self._fault_free = False
        self._notify(
            "partition-groups",
            groups=tuple(tuple(sorted(g)) for g in groups),
        )

    def clear_partition_groups(self) -> None:
        if self._groups is None:
            return
        self._groups = None
        self._refresh_fault_flag()
        self._notify("partition-groups-cleared")

    def set_link_policy(self, dc_a: str, dc_b: str, policy: LinkPolicy) -> None:
        """Degrade the ``dc_a <-> dc_b`` link (both directions)."""
        self._link_policies[frozenset((dc_a, dc_b))] = policy
        self._notify(
            "link-degraded",
            pair=tuple(sorted((dc_a, dc_b))),
            extra_latency_ms=policy.extra_latency_ms,
            jitter_sigma=policy.jitter_sigma,
            drop_rate=policy.drop_rate,
        )

    def clear_link_policy(self, dc_a: str, dc_b: str) -> None:
        if self._link_policies.pop(frozenset((dc_a, dc_b)), None) is not None:
            self._notify("link-restored", pair=tuple(sorted((dc_a, dc_b))))

    def link_policy(self, dc_a: str, dc_b: str) -> Optional[LinkPolicy]:
        return self._link_policies.get(frozenset((dc_a, dc_b)))

    def set_drop_rate(self, rate: float) -> None:
        """Uniform random loss probability applied to every message."""
        if not 0.0 <= rate <= 1.0:
            raise SimulationError(f"drop rate out of range: {rate}")
        self.drop_rate = rate

    def is_failed(self, dc: str) -> bool:
        return dc in self._failed_dcs

    def is_node_failed(self, node_id: str) -> bool:
        return node_id in self._failed_nodes

    def active_faults(self) -> Dict[str, object]:
        """A JSON-friendly snapshot of every fault currently in force."""
        return {
            "failed_dcs": sorted(self._failed_dcs),
            "failed_nodes": sorted(self._failed_nodes),
            "partitions": sorted(tuple(sorted(p)) for p in self._partitions),
            "groups": None
            if self._groups is None
            else dict(sorted(self._groups.items())),
            "degraded_links": sorted(
                tuple(sorted(pair)) for pair in self._link_policies
            ),
            "drop_rate": self.drop_rate,
        }

    def heal_all(self) -> None:
        """Lift every standing fault (the post-scenario cleanup)."""
        for dc in sorted(self._failed_dcs):
            self.recover_datacenter(dc)
        for node_id in sorted(self._failed_nodes):
            self.recover_node(node_id)
        for pair in sorted(self._partitions, key=sorted):
            self.heal_partition(*pair)
        self.clear_partition_groups()
        for pair in sorted(self._link_policies, key=sorted):
            self.clear_link_policy(*pair)
        self.drop_rate = 0.0

    def _blocked_reason(
        self, src_id: str, src_dc: str, dst_id: str, dst_dc: str
    ) -> Optional[str]:
        if src_dc in self._failed_dcs or dst_dc in self._failed_dcs:
            return "dc-failure"
        if src_id in self._failed_nodes or dst_id in self._failed_nodes:
            return "node-failure"
        if src_dc != dst_dc:
            if frozenset((src_dc, dst_dc)) in self._partitions:
                return "partition"
            if self._groups is not None and self._groups.get(
                src_dc, -1
            ) != self._groups.get(dst_dc, -1):
                return "partition"
        return None


class NodeLike:
    """Structural interface the network expects (see :mod:`repro.sim.node`)."""

    node_id: str
    dc: str

    def on_message(self, message: object, src_id: str) -> None:  # pragma: no cover
        raise NotImplementedError
