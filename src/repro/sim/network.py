"""Wide-area network model: the five-data-center fabric of the paper.

The MDCC evaluation ran across five Amazon EC2 regions: US-West
(N. California), US-East (Virginia), EU (Ireland), Asia-Pacific (Singapore)
and Asia-Pacific (Tokyo).  :data:`DEFAULT_RTT_MATRIX` encodes round-trip
times representative of those links circa the paper's measurements; the
protocol-visible property is the *ordering and rough magnitude* of the
inter-DC distances — e.g. the 4th-closest data center being meaningfully
farther than the 3rd is what separates QW-4/MDCC from QW-3 in Figure 3.

Failure injection mirrors §5.3.4: failing a data center silently drops every
message to or from its nodes ("we simulated the failed data center by
preventing the data center from receiving any messages").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from repro.sim.core import SimulationError, Simulator
from repro.sim.rng import RngRegistry

__all__ = [
    "DEFAULT_RTT_MATRIX",
    "EC2_REGIONS",
    "LatencyModel",
    "Network",
    "NetworkStats",
]

#: The five regions of the paper's deployment, in the order introduced.
EC2_REGIONS: Tuple[str, ...] = (
    "us-west",
    "us-east",
    "eu-west",
    "ap-southeast",
    "ap-northeast",
)

#: Representative inter-region round-trip times in milliseconds.
#: Keyed by unordered region pair.
DEFAULT_RTT_MATRIX: Dict[FrozenSet[str], float] = {
    frozenset(("us-west", "us-east")): 80.0,
    frozenset(("us-west", "eu-west")): 170.0,
    frozenset(("us-west", "ap-southeast")): 210.0,
    frozenset(("us-west", "ap-northeast")): 120.0,
    frozenset(("us-east", "eu-west")): 90.0,
    frozenset(("us-east", "ap-southeast")): 260.0,
    frozenset(("us-east", "ap-northeast")): 170.0,
    frozenset(("eu-west", "ap-southeast")): 250.0,
    frozenset(("eu-west", "ap-northeast")): 270.0,
    frozenset(("ap-southeast", "ap-northeast")): 75.0,
}


class LatencyModel:
    """Samples one-way message latencies between data centers.

    One-way latency is half the configured RTT, multiplied by a lognormal
    jitter factor (geo links "vary significantly ... over time", §1) plus a
    fixed per-message processing overhead.  Intra-DC messages use a small
    constant RTT — the paper ignores intra-DC latency as negligible, but a
    nonzero value keeps event ordering realistic.
    """

    def __init__(
        self,
        rtt_matrix: Optional[Dict[FrozenSet[str], float]] = None,
        intra_dc_rtt: float = 1.0,
        jitter_sigma: float = 0.06,
        processing_overhead: float = 0.5,
        rng_registry: Optional[RngRegistry] = None,
    ) -> None:
        self.rtt_matrix = dict(DEFAULT_RTT_MATRIX if rtt_matrix is None else rtt_matrix)
        self.intra_dc_rtt = intra_dc_rtt
        self.jitter_sigma = jitter_sigma
        self.processing_overhead = processing_overhead
        registry = rng_registry or RngRegistry(seed=0)
        self._rng = registry.stream("network.latency")
        # Directional (src, dst) -> RTT table so the per-message hot path
        # avoids building a frozenset for every send.
        self._directional: Dict[Tuple[str, str], float] = {}
        for pair, rtt in self.rtt_matrix.items():
            names = tuple(pair)
            if len(names) == 2:
                self._directional[(names[0], names[1])] = rtt
                self._directional[(names[1], names[0])] = rtt

    def base_rtt(self, dc_a: str, dc_b: str) -> float:
        """Deterministic round-trip time between two data centers."""
        if dc_a == dc_b:
            return self.intra_dc_rtt
        rtt = self._directional.get((dc_a, dc_b))
        if rtt is None:
            raise SimulationError(f"no RTT configured for {dc_a!r} <-> {dc_b!r}")
        return rtt

    def one_way(self, src_dc: str, dst_dc: str) -> float:
        """Sample a one-way latency in milliseconds."""
        base = self.base_rtt(src_dc, dst_dc) / 2.0
        if self.jitter_sigma > 0:
            base *= math.exp(self._rng.gauss(0.0, self.jitter_sigma))
        return base + self.processing_overhead

    def datacenters(self) -> Tuple[str, ...]:
        """All data centers mentioned in the matrix."""
        names: set[str] = set()
        for pair in self.rtt_matrix:
            names.update(pair)
        return tuple(sorted(names))

    def sorted_rtts_from(self, dc: str) -> list[Tuple[str, float]]:
        """(other_dc, rtt) pairs sorted by distance — used by tests/benches."""
        out = [(other, self.base_rtt(dc, other)) for other in self.datacenters() if other != dc]
        out.sort(key=lambda item: item[1])
        return out


@dataclass
class NetworkStats:
    """Aggregate network counters, exposed for benchmarks and tests."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    per_type: Dict[str, int] = field(default_factory=dict)

    def note_sent(self, message: object) -> None:
        self.messages_sent += 1
        name = type(message).__name__
        self.per_type[name] = self.per_type.get(name, 0) + 1

    def snapshot(self) -> Dict[str, int]:
        return {
            "sent": self.messages_sent,
            "delivered": self.messages_delivered,
            "dropped": self.messages_dropped,
        }


class Network:
    """The message fabric connecting all simulated nodes.

    Nodes register under a unique id; :meth:`send` samples a latency from
    the :class:`LatencyModel` and schedules ``dst.on_message(msg, src_id)``.
    Messages are never reordered on the same (src, dst) pair beyond what
    latency jitter produces — like UDP, not TCP; the Paxos machinery is
    robust to reordering by design, and the paper's protocol tolerates
    "lost, duplicated or re-ordered messages".

    Failure injection:

    * :meth:`fail_datacenter` / :meth:`recover_datacenter` — drop all
      traffic touching a DC (Figure 8's scenario).
    * :meth:`partition` / :meth:`heal_partition` — drop traffic between two
      specific DCs.
    * :meth:`set_drop_rate` — uniform random message loss.
    """

    def __init__(
        self,
        sim: Simulator,
        latency_model: Optional[LatencyModel] = None,
        rng_registry: Optional[RngRegistry] = None,
    ) -> None:
        self.sim = sim
        registry = rng_registry or RngRegistry(seed=0)
        self.latency = latency_model or LatencyModel(rng_registry=registry)
        self._drop_rng = registry.stream("network.drop")
        self._nodes: Dict[str, "NodeLike"] = {}
        self._failed_dcs: set[str] = set()
        self._partitions: set[FrozenSet[str]] = set()
        self.drop_rate = 0.0
        self.stats = NetworkStats()

    # ------------------------------------------------------------------
    # Registration and lookup
    # ------------------------------------------------------------------
    def register(self, node: "NodeLike") -> None:
        """Attach a node; its ``node_id`` must be unique."""
        if node.node_id in self._nodes:
            raise SimulationError(f"duplicate node id {node.node_id!r}")
        self._nodes[node.node_id] = node

    def node(self, node_id: str) -> "NodeLike":
        return self._nodes[node_id]

    def knows(self, node_id: str) -> bool:
        return node_id in self._nodes

    @property
    def node_ids(self) -> Tuple[str, ...]:
        return tuple(self._nodes)

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def send(self, src_id: str, dst_id: str, message: object) -> None:
        """Send ``message`` from ``src_id`` to ``dst_id`` (fire and forget)."""
        self.stats.note_sent(message)
        src = self._nodes[src_id]
        dst = self._nodes.get(dst_id)
        if dst is None:
            self.stats.messages_dropped += 1
            return
        if not self._link_up(src.dc, dst.dc):
            self.stats.messages_dropped += 1
            return
        if self.drop_rate > 0 and self._drop_rng.random() < self.drop_rate:
            self.stats.messages_dropped += 1
            return
        delay = self.latency.one_way(src.dc, dst.dc)
        self.sim.schedule(delay, self._deliver, dst_id, message, src_id)

    def broadcast(self, src_id: str, dst_ids: Iterable[str], message: object) -> int:
        """Send the same message to several destinations; returns the count."""
        count = 0
        for dst_id in dst_ids:
            self.send(src_id, dst_id, message)
            count += 1
        return count

    def _deliver(self, dst_id: str, message: object, src_id: str) -> None:
        dst = self._nodes.get(dst_id)
        if dst is None:
            self.stats.messages_dropped += 1
            return
        # A DC failed while the message was in flight also loses it.
        if dst.dc in self._failed_dcs:
            self.stats.messages_dropped += 1
            return
        self.stats.messages_delivered += 1
        dst.on_message(message, src_id)

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def fail_datacenter(self, dc: str) -> None:
        """Drop all traffic to and from ``dc`` until recovery (§5.3.4)."""
        self._failed_dcs.add(dc)

    def recover_datacenter(self, dc: str) -> None:
        self._failed_dcs.discard(dc)

    def partition(self, dc_a: str, dc_b: str) -> None:
        """Sever the link between two data centers (both directions)."""
        self._partitions.add(frozenset((dc_a, dc_b)))

    def heal_partition(self, dc_a: str, dc_b: str) -> None:
        self._partitions.discard(frozenset((dc_a, dc_b)))

    def set_drop_rate(self, rate: float) -> None:
        """Uniform random loss probability applied to every message."""
        if not 0.0 <= rate <= 1.0:
            raise SimulationError(f"drop rate out of range: {rate}")
        self.drop_rate = rate

    def is_failed(self, dc: str) -> bool:
        return dc in self._failed_dcs

    def _link_up(self, src_dc: str, dst_dc: str) -> bool:
        if src_dc in self._failed_dcs or dst_dc in self._failed_dcs:
            return False
        if frozenset((src_dc, dst_dc)) in self._partitions:
            return False
        return True


class NodeLike:
    """Structural interface the network expects (see :mod:`repro.sim.node`)."""

    node_id: str
    dc: str

    def on_message(self, message: object, src_id: str) -> None:  # pragma: no cover
        raise NotImplementedError
