"""Discrete-event simulation substrate for the MDCC reproduction.

The paper deployed its prototype across five Amazon EC2 data centers.  We do
not have five data centers, so this package provides a deterministic
discrete-event simulator of that environment: a virtual clock, message
delivery over a wide-area latency model, actor-style nodes, and metric
monitors.  All protocol state machines in :mod:`repro.core` and
:mod:`repro.protocols` run *unmodified* above this substrate; only message
transport and time are simulated.

Public surface:

* :class:`repro.sim.core.Simulator` — the event loop and virtual clock.
* :class:`repro.sim.core.Future` — completion tokens used by protocols.
* :class:`repro.sim.network.Network` — WAN message fabric with failure
  injection.
* :class:`repro.sim.network.LatencyModel` — the five-DC RTT matrix.
* :class:`repro.sim.node.Node` — base class for protocol actors.
* :class:`repro.metrics.LatencyRecorder` — percentile/CDF collection
  (re-exported here from :mod:`repro.metrics`).
"""

from repro.metrics import Counter, CounterSet, LatencyRecorder, TimeSeries
from repro.sim.core import Event, Future, SimulationError, Simulator, all_of, any_of
from repro.sim.network import (
    DEFAULT_RTT_MATRIX,
    EC2_REGIONS,
    LatencyModel,
    Network,
    NetworkStats,
)
from repro.sim.node import Node
from repro.sim.rng import RngRegistry

__all__ = [
    "DEFAULT_RTT_MATRIX",
    "EC2_REGIONS",
    "Counter",
    "CounterSet",
    "Event",
    "Future",
    "LatencyModel",
    "LatencyRecorder",
    "Network",
    "NetworkStats",
    "Node",
    "RngRegistry",
    "SimulationError",
    "Simulator",
    "TimeSeries",
    "all_of",
    "any_of",
]
