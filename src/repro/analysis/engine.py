"""The rule engine: descriptors, findings, suppressions, baseline ratchet.

A :class:`Project` parses every source file under ``<root>/src/repro``
once; each :class:`Rule` carries a project-level ``check`` pass (per-file
rules simply loop over ``project.files``, cross-file rules correlate
several modules).  Findings are value objects with a stable sort order so
text and JSON output are deterministic.

Suppression syntax (inline, reason mandatory)::

    for node in self.peers:  # repro: noqa DET-set-iter(peers is a 1-elem set)

Baseline ratchet semantics (``--baseline FILE``):

* a finding matching a baseline entry is *grandfathered* — reported but
  not failing;
* a finding with no baseline entry is *new* — exit 1;
* a baseline entry matching no current finding is *stale* — exit 1 until
  it is removed from the file (fixed findings must leave the baseline,
  so the rule set only ever ratchets down).

Fingerprints hash the rule id, file path and the stripped source line
text (plus an occurrence counter for identical lines), so ordinary line
drift above or below a grandfathered finding does not invalidate it.
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Baseline",
    "Finding",
    "Project",
    "Rule",
    "SourceFile",
    "all_rules",
    "analyze_project",
    "render_json",
    "render_text",
]

#: the sub-tree a Project scans, relative to the repository root.
PACKAGE_DIR = "src/repro"

_NOQA_MARKER = re.compile(r"#\s*repro:\s*noqa\b")
_NOQA_ENTRY = re.compile(r"([A-Z][A-Z0-9]*(?:-[a-z0-9-]+)+)\s*\(([^()]+)\)")


@dataclass(frozen=True, slots=True)
class Rule:
    """A static-analysis rule descriptor.

    ``check`` runs once per analysis over the whole project — per-file
    rules iterate ``project.files`` themselves, cross-file rules build
    whatever index they need.
    """

    id: str
    severity: str  # "error" — reserved for future "warning" tiers
    summary: str
    autofix_hint: str
    check: Callable[["Project"], Iterable["Finding"]] = field(compare=False)


@dataclass(frozen=True, slots=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str  # repo-relative posix path
    line: int
    col: int
    rule: str
    message: str

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


class SourceFile:
    """A parsed source file plus its suppression table."""

    __slots__ = ("path", "source", "lines", "tree", "suppressions", "malformed_noqa")

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        #: line number -> rule ids suppressed on that line.
        self.suppressions: Dict[int, set] = {}
        #: lines whose suppression marker failed to parse.
        self.malformed_noqa: List[int] = []
        for lineno, comment in self._comments():
            marker = _NOQA_MARKER.search(comment)
            if not marker:
                continue
            entries = _NOQA_ENTRY.findall(comment[marker.end():])
            if not entries:
                self.malformed_noqa.append(lineno)
                continue
            self.suppressions[lineno] = {rule_id for rule_id, _reason in entries}

    def _comments(self) -> List[Tuple[int, str]]:
        """(line, text) per comment token — a docstring that *mentions*
        the noqa syntax is not a suppression."""
        out: List[Tuple[int, str]] = []
        try:
            for token in tokenize.generate_tokens(io.StringIO(self.source).readline):
                if token.type == tokenize.COMMENT:
                    out.append((token.start[0], token.string))
        except tokenize.TokenError:  # pragma: no cover - tree already parsed
            pass
        return out

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def suppressed(self, lineno: int, rule_id: str) -> bool:
        return rule_id in self.suppressions.get(lineno, ())


class Project:
    """Every parsed source file under ``<root>/src/repro``."""

    def __init__(self, root: Path, files: Optional[Sequence[SourceFile]] = None) -> None:
        self.root = Path(root)
        if files is not None:
            self.files = sorted(files, key=lambda f: f.path)
            return
        package = self.root / PACKAGE_DIR
        if not package.is_dir():
            raise FileNotFoundError(
                f"{package} does not exist — pass the repository root "
                f"(the directory containing {PACKAGE_DIR}/)"
            )
        self.files = []
        for path in sorted(package.rglob("*.py")):
            rel = path.relative_to(self.root).as_posix()
            self.files.append(SourceFile(rel, path.read_text(encoding="utf-8")))

    def get(self, rel_path: str) -> Optional[SourceFile]:
        for file in self.files:
            if file.path == rel_path:
                return file
        return None

    def in_scope(
        self,
        include: Tuple[str, ...] = (),
        exclude: Tuple[str, ...] = (),
    ) -> List[SourceFile]:
        """Files matching the prefix lists (empty ``include`` = all)."""
        out = []
        for file in self.files:
            if include and not any(file.path.startswith(p) for p in include):
                continue
            if any(file.path.startswith(p) for p in exclude):
                continue
            out.append(file)
        return out


# ----------------------------------------------------------------------
# Rule registry
# ----------------------------------------------------------------------
def all_rules() -> Tuple[Rule, ...]:
    """Every registered rule, id-sorted (import deferred: the rule
    modules import this one for the descriptors)."""
    from repro.analysis import rules_determinism, rules_handlers, rules_isolation, rules_wire

    rules = (
        rules_determinism.DET_SET_ITER,
        rules_determinism.DET_WALLCLOCK,
        rules_wire.WIRE_CODEC,
        rules_isolation.ISO_SIM_FREE,
        rules_handlers.HANDLER_EXHAUSTIVE,
        NOQA_MALFORMED,
    )
    return tuple(sorted(rules, key=lambda r: r.id))


def _check_noqa(project: Project) -> Iterable[Finding]:
    for file in project.files:
        for lineno in file.malformed_noqa:
            yield Finding(
                path=file.path,
                line=lineno,
                col=1,
                rule="NOQA-malformed",
                message=(
                    "unparseable suppression — the syntax is "
                    "'# repro: noqa RULE-ID(reason)' and the reason is mandatory"
                ),
            )


NOQA_MALFORMED = Rule(
    id="NOQA-malformed",
    severity="error",
    summary="a '# repro: noqa' comment that does not parse",
    autofix_hint="write '# repro: noqa RULE-ID(reason)' with a non-empty reason",
    check=_check_noqa,
)


def analyze_project(
    project: Project, rules: Optional[Sequence[Rule]] = None
) -> List[Finding]:
    """Run ``rules`` (default: all) and return sorted, unsuppressed
    findings.  NOQA-malformed findings are never suppressible."""
    if rules is None:
        rules = all_rules()
    findings: List[Finding] = []
    by_path = {file.path: file for file in project.files}
    for rule in rules:
        for finding in rule.check(project):
            file = by_path.get(finding.path)
            if (
                file is not None
                and finding.rule != "NOQA-malformed"
                and file.suppressed(finding.line, finding.rule)
            ):
                continue
            findings.append(finding)
    return sorted(set(findings))


# ----------------------------------------------------------------------
# Baseline ratchet
# ----------------------------------------------------------------------
def _fingerprints(project: Project, findings: Sequence[Finding]) -> List[str]:
    """A stable fingerprint per finding: rule + path + stripped source
    line text + an occurrence counter for identical lines — robust to
    line drift elsewhere in the file."""
    by_path = {file.path: file for file in project.files}
    counts: Dict[str, int] = {}
    out = []
    for finding in findings:
        file = by_path.get(finding.path)
        text = file.line_text(finding.line).strip() if file is not None else ""
        key = f"{finding.rule}|{finding.path}|{text}"
        index = counts.get(key, 0)
        counts[key] = index + 1
        digest = hashlib.sha256(f"{key}|{index}".encode("utf-8")).hexdigest()[:16]
        out.append(digest)
    return out


class Baseline:
    """Grandfathered findings, committed alongside the code."""

    VERSION = 1

    def __init__(self, entries: Optional[Dict[str, Dict[str, object]]] = None) -> None:
        #: fingerprint -> descriptive entry (rule/path/message snapshot).
        self.entries = dict(entries or {})

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        if data.get("version") != cls.VERSION:
            raise ValueError(
                f"baseline {path} has version {data.get('version')!r}, "
                f"expected {cls.VERSION}"
            )
        return cls({entry["fingerprint"]: entry for entry in data.get("findings", [])})

    @classmethod
    def from_findings(cls, project: Project, findings: Sequence[Finding]) -> "Baseline":
        entries = {}
        for finding, fingerprint in zip(findings, _fingerprints(project, findings)):
            entries[fingerprint] = {
                "fingerprint": fingerprint,
                "rule": finding.rule,
                "path": finding.path,
                "line": finding.line,
                "message": finding.message,
            }
        return cls(entries)

    def render(self) -> str:
        payload = {
            "version": self.VERSION,
            "findings": sorted(
                self.entries.values(),
                key=lambda e: (e["path"], e["rule"], e["fingerprint"]),
            ),
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    def apply(
        self, project: Project, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[Dict[str, object]]]:
        """Split findings into (new, grandfathered) and report stale
        baseline entries that no longer match anything."""
        fingerprints = _fingerprints(project, findings)
        new: List[Finding] = []
        grandfathered: List[Finding] = []
        seen = set()
        for finding, fingerprint in zip(findings, fingerprints):
            if fingerprint in self.entries:
                grandfathered.append(finding)
                seen.add(fingerprint)
            else:
                new.append(finding)
        stale = [
            entry
            for fingerprint, entry in sorted(self.entries.items())
            if fingerprint not in seen
        ]
        stale.sort(key=lambda e: (e["path"], e["rule"], e["fingerprint"]))
        return new, grandfathered, stale


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_text(
    findings: Sequence[Finding],
    grandfathered: Sequence[Finding] = (),
    stale: Sequence[Dict[str, object]] = (),
) -> str:
    hints = {rule.id: rule.autofix_hint for rule in all_rules()}
    lines = []
    for finding in findings:
        lines.append(f"{finding.location()}: {finding.rule}: {finding.message}")
        hint = hints.get(finding.rule)
        if hint:
            lines.append(f"    hint: {hint}")
    for finding in grandfathered:
        lines.append(
            f"{finding.location()}: {finding.rule}: {finding.message} [baseline]"
        )
    for entry in stale:
        lines.append(
            f"{entry['path']}: {entry['rule']}: baseline entry "
            f"{entry['fingerprint']} matches no current finding — remove it "
            "from the baseline file"
        )
    summary = (
        f"{len(findings)} new finding(s), {len(grandfathered)} grandfathered, "
        f"{len(stale)} stale baseline entr(y/ies)"
    )
    lines.append(summary)
    return "\n".join(lines) + "\n"


def render_json(
    project: Project,
    findings: Sequence[Finding],
    grandfathered: Sequence[Finding] = (),
    stale: Sequence[Dict[str, object]] = (),
) -> str:
    def finding_dict(finding: Finding, fingerprint: str) -> Dict[str, object]:
        return {
            "rule": finding.rule,
            "path": finding.path,
            "line": finding.line,
            "col": finding.col,
            "message": finding.message,
            "fingerprint": fingerprint,
        }

    payload = {
        "version": 1,
        "rules": [
            {
                "id": rule.id,
                "severity": rule.severity,
                "summary": rule.summary,
                "autofix_hint": rule.autofix_hint,
            }
            for rule in all_rules()
        ],
        "findings": [
            finding_dict(f, fp)
            for f, fp in zip(findings, _fingerprints(project, findings))
        ],
        "grandfathered": [
            finding_dict(f, fp)
            for f, fp in zip(grandfathered, _fingerprints(project, grandfathered))
        ],
        "stale_baseline": list(stale),
        "summary": {
            "new": len(findings),
            "grandfathered": len(grandfathered),
            "stale_baseline": len(stale),
            "files_scanned": len(project.files),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
