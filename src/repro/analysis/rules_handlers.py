"""HANDLER-exhaustive: the send side and the dispatch side agree.

:class:`repro.transport.base.Node` dispatches a delivered message to
``handle_<snake_case(type name)>`` — an unmatched message raises at
delivery time, but only on the trajectory that happens to send it.  This
rule closes the gap statically, in both directions:

* a message dataclass passed to ``send``/``broadcast`` with no
  ``handle_<snake>`` method anywhere is an undeliverable message
  (flagged at the class definition);
* a ``handle_<snake>`` method whose message type does not exist, or is
  never constructed anywhere in the tree, is a dead handler (flagged at
  the method definition).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Tuple

from repro.analysis import astutil
from repro.analysis.engine import Finding, Project, Rule
from repro.transport.base import _snake_case

__all__ = ["HANDLER_EXHAUSTIVE"]


def _handler_defs(project: Project) -> List[Tuple[str, str, int]]:
    """(snake_name, path, line) for every ``handle_*`` method."""
    out: List[Tuple[str, str, int]] = []
    for file in project.files:
        for node in ast.walk(file.tree):
            if isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ) and item.name.startswith("handle_"):
                        out.append(
                            (item.name[len("handle_"):], file.path, item.lineno)
                        )
    return out


def _check_handlers(project: Project) -> Iterable[Finding]:
    findings: List[Finding] = []
    dataclasses = astutil.iter_dataclasses(project.files)
    by_snake: Dict[str, str] = {
        _snake_case(name): name for name in dataclasses
    }
    sent = astutil.sent_class_names(project)
    constructed = astutil.constructed_class_names(project)
    handlers = _handler_defs(project)
    handled_snakes = {snake for snake, _path, _line in handlers}

    for name in sorted(sent):
        info = dataclasses.get(name)
        if info is None:
            continue  # non-dataclass send payloads are WIRE-codec's business
        if _snake_case(name) not in handled_snakes:
            findings.append(
                Finding(
                    path=info.path,
                    line=info.line,
                    col=1,
                    rule="HANDLER-exhaustive",
                    message=(
                        f"{name} is sent but no class defines "
                        f"handle_{_snake_case(name)} — delivery would raise "
                        "at runtime"
                    ),
                )
            )

    for snake, path, line in handlers:
        name = by_snake.get(snake)
        if name is None:
            findings.append(
                Finding(
                    path=path,
                    line=line,
                    col=1,
                    rule="HANDLER-exhaustive",
                    message=(
                        f"handle_{snake} matches no message dataclass in the "
                        "tree — dead handler"
                    ),
                )
            )
        elif name not in constructed:
            findings.append(
                Finding(
                    path=path,
                    line=line,
                    col=1,
                    rule="HANDLER-exhaustive",
                    message=(
                        f"handle_{snake} targets {name}, which is never "
                        "constructed anywhere — dead handler"
                    ),
                )
            )
    return findings


HANDLER_EXHAUSTIVE = Rule(
    id="HANDLER-exhaustive",
    severity="error",
    summary="sent message without a handler, or a dead handler",
    autofix_hint=(
        "add handle_<snake_case> on the receiving role class, or delete the "
        "handler and its message type together"
    ),
    check=_check_handlers,
)
