"""``repro analyze`` — the CLI surface of the static analyzer.

Exit status: 0 when there are no *new* findings and no stale baseline
entries; 1 otherwise.  Grandfathered (baselined) findings are reported
but do not fail — they can only be removed, never added, so the rule
set ratchets.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional

from repro.analysis.engine import (
    PACKAGE_DIR,
    Baseline,
    Project,
    analyze_project,
    render_json,
    render_text,
)

__all__ = ["add_analyze_parser", "discover_root", "run_analyze"]

DEFAULT_BASELINE = "analysis-baseline.json"


def discover_root(start: Optional[Path] = None) -> Path:
    """Walk up from ``start`` (default: cwd) to the directory containing
    ``src/repro`` — the repository root the analyzer scans."""
    here = (start or Path.cwd()).resolve()
    for candidate in (here, *here.parents):
        if (candidate / PACKAGE_DIR).is_dir():
            return candidate
    raise SystemExit(
        f"repro analyze: no {PACKAGE_DIR}/ found in {here} or any parent — "
        "run from inside the repository or pass --root"
    )


def add_analyze_parser(sub: argparse._SubParsersAction) -> None:
    analyze = sub.add_parser(
        "analyze",
        help="run the determinism & wire-hygiene static analyzer",
    )
    analyze.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (json is deterministic and sorted)",
    )
    analyze.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=(
            "baseline file of grandfathered findings "
            f"(default: <root>/{DEFAULT_BASELINE} when it exists)"
        ),
    )
    analyze.add_argument(
        "--write-baseline",
        action="store_true",
        help="snapshot the current findings into the baseline file and exit 0",
    )
    analyze.add_argument(
        "--root",
        default=None,
        metavar="DIR",
        help="repository root (default: discovered from the cwd upward)",
    )


def run_analyze(args: argparse.Namespace) -> int:
    root = Path(args.root).resolve() if args.root else discover_root()
    project = Project(root)
    findings = analyze_project(project)

    baseline_path = (
        Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE
    )
    if args.write_baseline:
        baseline_path.write_text(
            Baseline.from_findings(project, findings).render(), encoding="utf-8"
        )
        print(
            f"wrote {len(findings)} finding(s) to {baseline_path}",
            file=sys.stderr,
        )
        return 0

    if baseline_path.is_file():
        baseline = Baseline.load(baseline_path)
    elif args.baseline:
        raise SystemExit(f"repro analyze: baseline {baseline_path} not found")
    else:
        baseline = Baseline()
    new, grandfathered, stale = baseline.apply(project, findings)

    if args.format == "json":
        sys.stdout.write(render_json(project, new, grandfathered, stale))
    else:
        sys.stdout.write(render_text(new, grandfathered, stale))
    return 1 if (new or stale) else 0
