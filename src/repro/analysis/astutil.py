"""Shared AST helpers for the analysis rules.

Everything here is heuristic *static* analysis: no imports of the
analyzed modules, just source trees.  The helpers over-approximate
(a name ever assigned a set anywhere in a module counts as set-typed
everywhere in it) — the suppression syntax and the baseline ratchet
absorb the rare false positive, while under-approximation would miss
exactly the latent defects the rules exist to catch.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.engine import Project, SourceFile

__all__ = [
    "dataclass_info",
    "DataclassInfo",
    "dotted_name",
    "import_aliases",
    "iter_dataclasses",
    "sent_class_names",
    "set_typed_attrs",
    "set_typed_names",
]

#: annotations that make a target set-typed.
_SET_ANNOTATION = re.compile(
    r"^(typing\.)?(Optional\[)?\s*(typing\.)?(Set|FrozenSet|set|frozenset)\b"
)

#: set methods returning sets (receiver set-typed).
_SET_RETURNING = ("union", "intersection", "difference", "symmetric_difference", "copy")

_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name -> imported qualified name (modules and members).

    ``import time as t`` maps ``t -> time``; ``from datetime import
    datetime`` maps ``datetime -> datetime.datetime``.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


# ----------------------------------------------------------------------
# Set-typed inference
# ----------------------------------------------------------------------
def is_set_expr(
    node: ast.AST, names: Set[str], attrs: Set[str], *, keys_as_sets: bool = False
) -> bool:
    """Is this expression (heuristically) a set/frozenset?

    ``keys_as_sets`` treats ``.keys()`` views as sets — used only inside
    set-algebra BinOps, where views behave as sets; plain iteration over
    ``.keys()`` follows insertion order and is not flagged.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in names
    if isinstance(node, ast.Attribute):
        return node.attr in attrs
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
        return is_set_expr(
            node.left, names, attrs, keys_as_sets=True
        ) or is_set_expr(node.right, names, attrs, keys_as_sets=True)
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute):
            if func.attr in _SET_RETURNING:
                return is_set_expr(func.value, names, attrs)
            if keys_as_sets and func.attr == "keys":
                return True
            # dict.pop(key, set()) / dict.get(key, set()) / setdefault
            if (
                func.attr in ("pop", "get", "setdefault")
                and len(node.args) > 1
                and is_set_expr(node.args[1], names, attrs)
            ):
                return True
    return False


def _assignment_targets(node: ast.AST) -> Tuple[List[ast.expr], Optional[ast.expr], Optional[ast.expr]]:
    """(targets, value, annotation) for Assign/AnnAssign, else ([], None, None)."""
    if isinstance(node, ast.Assign):
        return node.targets, node.value, None
    if isinstance(node, ast.AnnAssign):
        return [node.target], node.value, node.annotation
    return [], None, None


def _is_set_annotation(annotation: Optional[ast.expr]) -> bool:
    return annotation is not None and bool(
        _SET_ANNOTATION.match(ast.unparse(annotation))
    )


def set_typed_attrs(project: Project, files: Iterable[SourceFile]) -> Set[str]:
    """Attribute names assigned a set anywhere in ``files`` (cross-module:
    ``state.record.applied_ids`` in core/ is set-typed because
    storage/record.py assigns ``self.applied_ids = set()``).

    Runs to a fixpoint so chained assignments (``self.a = self.b`` where
    ``b`` is set-typed) converge.
    """
    files = list(files)
    attrs: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for file in files:
            for node in ast.walk(file.tree):
                targets, value, annotation = _assignment_targets(node)
                if not targets:
                    continue
                set_typed = _is_set_annotation(annotation) or (
                    value is not None and is_set_expr(value, set(), attrs)
                )
                if not set_typed:
                    continue
                for target in targets:
                    if isinstance(target, ast.Attribute) and target.attr not in attrs:
                        attrs.add(target.attr)
                        changed = True
    return attrs


def set_typed_names(file: SourceFile, attrs: Set[str]) -> Set[str]:
    """Plain names assigned a set anywhere in the module (module-wide
    pool: scoping is deliberately coarse — see module docstring)."""
    names: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for node in ast.walk(file.tree):
            targets, value, annotation = _assignment_targets(node)
            if targets:
                set_typed = _is_set_annotation(annotation) or (
                    value is not None and is_set_expr(value, names, attrs)
                )
                if set_typed:
                    for target in targets:
                        if isinstance(target, ast.Name) and target.id not in names:
                            names.add(target.id)
                            changed = True
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for arg in [
                    *node.args.posonlyargs,
                    *node.args.args,
                    *node.args.kwonlyargs,
                ]:
                    if _is_set_annotation(arg.annotation) and arg.arg not in names:
                        names.add(arg.arg)
                        changed = True
    return names


# ----------------------------------------------------------------------
# Dataclass index
# ----------------------------------------------------------------------
class DataclassInfo:
    """Static facts about one dataclass definition."""

    __slots__ = ("name", "path", "line", "frozen", "slots")

    def __init__(self, name: str, path: str, line: int, frozen: bool, slots: bool):
        self.name = name
        self.path = path
        self.line = line
        self.frozen = frozen
        self.slots = slots


def dataclass_info(node: ast.ClassDef, path: str) -> Optional[DataclassInfo]:
    """DataclassInfo if ``node`` is decorated with @dataclass, else None."""
    for decorator in node.decorator_list:
        call = decorator if isinstance(decorator, ast.Call) else None
        target = call.func if call is not None else decorator
        name = dotted_name(target)
        if name not in ("dataclass", "dataclasses.dataclass"):
            continue
        frozen = slots = False
        if call is not None:
            for keyword in call.keywords:
                if isinstance(keyword.value, ast.Constant) and keyword.value.value is True:
                    if keyword.arg == "frozen":
                        frozen = True
                    elif keyword.arg == "slots":
                        slots = True
        if not slots:
            for item in node.body:
                targets, _value, _ann = _assignment_targets(item)
                for target in targets:
                    if isinstance(target, ast.Name) and target.id == "__slots__":
                        slots = True
        return DataclassInfo(node.name, path, node.lineno, frozen, slots)
    return None


def iter_dataclasses(files: Iterable[SourceFile]) -> Dict[str, DataclassInfo]:
    """name -> DataclassInfo for every dataclass defined in ``files``.
    (Message class names are globally unique in this codebase; the wire
    codec itself relies on that.)"""
    out: Dict[str, DataclassInfo] = {}
    for file in files:
        for node in ast.walk(file.tree):
            if isinstance(node, ast.ClassDef):
                info = dataclass_info(node, file.path)
                if info is not None:
                    out[info.name] = info
    return out


# ----------------------------------------------------------------------
# Sent-message analysis
# ----------------------------------------------------------------------
_CLASS_NAME = re.compile(r"^[A-Z]")


def _constructed_class(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and _CLASS_NAME.match(node.func.id)
    ):
        return node.func.id
    return None


def sent_class_names(project: Project) -> Set[str]:
    """Class names provably passed to a ``send``/``broadcast`` call.

    Resolution is module-local: a direct construction in the call
    (``self.send(dst, Visibility(...))``) or a plain name assigned a
    construction anywhere in the same module (``msg = Visibility(...);
    self.send(dst, msg)``).  Relays of received messages resolve at the
    original construction site in the sender's module.
    """
    sent: Set[str] = set()
    for file in project.files:
        assigned: Dict[str, str] = {}
        for node in ast.walk(file.tree):
            targets, value, _ann = _assignment_targets(node)
            if value is not None:
                cls = _constructed_class(value)
                if cls is not None:
                    for target in targets:
                        if isinstance(target, ast.Name):
                            assigned[target.id] = cls
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in ("send", "broadcast")
            ):
                continue
            for arg in node.args:
                cls = _constructed_class(arg)
                if cls is not None:
                    sent.add(cls)
                elif isinstance(arg, ast.Name) and arg.id in assigned:
                    sent.add(assigned[arg.id])
    return sent


def constructed_class_names(project: Project) -> Set[str]:
    """Every class name constructed anywhere in the project."""
    out: Set[str] = set()
    for file in project.files:
        for node in ast.walk(file.tree):
            cls = _constructed_class(node)
            if cls is not None:
                out.add(cls)
    return out
