"""WIRE-codec: every message that can cross the wire is codec-clean.

Cross-file pass.  The codec registry in ``repro.transport.codec`` is
explicit by design — a message type the TCP backend has never heard of
must fail at registration diff time, not as a mid-benchmark encode
error.  This rule is the static half of that contract:

* every dataclass in ``core/messages.py`` or ``protocols/*.py`` that is
  *reachable from the wire* (passed to a ``send``/``broadcast`` call, or
  matched by a ``handle_<snake>`` method) must be ``frozen=True``,
  carry ``__slots__`` (``slots=True``), and appear in
  ``MESSAGE_TYPES``/``VALUE_TYPES``;
* every name in the registry must correspond to a dataclass that still
  exists (stale entries flagged at their registry line).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List

from repro.analysis import astutil
from repro.analysis.engine import Finding, Project, Rule
from repro.transport.base import _snake_case

__all__ = ["WIRE_CODEC"]

CODEC_PATH = "src/repro/transport/codec.py"
_REGISTRY_NAMES = ("MESSAGE_TYPES", "VALUE_TYPES")

#: where wire-visible message dataclasses live.
_MESSAGE_SCOPE = ("src/repro/core/messages.py", "src/repro/protocols/")


def _registered_entries(project: Project) -> Dict[str, int]:
    """Class name -> line number of its MESSAGE_TYPES/VALUE_TYPES entry."""
    codec = project.get(CODEC_PATH)
    entries: Dict[str, int] = {}
    if codec is None:
        return entries
    for node in ast.walk(codec.tree):
        targets, value, _ann = (
            (node.targets, node.value, None)
            if isinstance(node, ast.Assign)
            else ((node.target,), node.value, node.annotation)
            if isinstance(node, ast.AnnAssign)
            else ((), None, None)
        )
        if value is None or not isinstance(value, ast.Tuple):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id in _REGISTRY_NAMES for t in targets
        ):
            continue
        for elt in value.elts:
            dotted = astutil.dotted_name(elt)
            if dotted is not None:
                entries[dotted.rsplit(".", 1)[-1]] = elt.lineno
    return entries


def _handler_snake_names(project: Project) -> Iterable[str]:
    for file in project.files:
        for node in ast.walk(file.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name.startswith("handle_"):
                    yield node.name[len("handle_"):]


def _check_wire(project: Project) -> Iterable[Finding]:
    findings: List[Finding] = []
    registered = _registered_entries(project)
    message_files = project.in_scope(include=_MESSAGE_SCOPE)
    message_classes = astutil.iter_dataclasses(message_files)
    all_classes = astutil.iter_dataclasses(project.files)
    sent = astutil.sent_class_names(project)
    handled_snakes = set(_handler_snake_names(project))

    for name in sorted(message_classes):
        info = message_classes[name]
        if name.startswith("_"):
            continue
        reachable = name in sent or _snake_case(name) in handled_snakes
        if not reachable:
            continue
        missing: List[str] = []
        if not info.frozen:
            missing.append("not frozen (frozen=True)")
        if not info.slots:
            missing.append("no __slots__ (slots=True)")
        if name not in registered:
            missing.append(
                "not registered in repro.transport.codec "
                "(MESSAGE_TYPES/VALUE_TYPES)"
            )
        if missing:
            findings.append(
                Finding(
                    path=info.path,
                    line=info.line,
                    col=1,
                    rule="WIRE-codec",
                    message=(
                        f"message dataclass {name} is wire-reachable but "
                        + "; ".join(missing)
                    ),
                )
            )

    for name, lineno in sorted(registered.items()):
        info = all_classes.get(name)
        if info is None:
            findings.append(
                Finding(
                    path=CODEC_PATH,
                    line=lineno,
                    col=1,
                    rule="WIRE-codec",
                    message=(
                        f"registry entry {name} matches no dataclass in the "
                        "tree — remove the stale codec entry"
                    ),
                )
            )
        elif not (info.frozen and info.slots):
            findings.append(
                Finding(
                    path=info.path,
                    line=info.line,
                    col=1,
                    rule="WIRE-codec",
                    message=(
                        f"codec-registered dataclass {name} must be "
                        "frozen=True with __slots__"
                    ),
                )
            )
    return findings


WIRE_CODEC = Rule(
    id="WIRE-codec",
    severity="error",
    summary="wire-reachable message without frozen/__slots__/codec entry",
    autofix_hint=(
        "declare @dataclass(frozen=True, slots=True) and add the class to "
        "MESSAGE_TYPES in repro/transport/codec.py (plus a worst-case "
        "sample in tests/test_codec.py)"
    ),
    check=_check_wire,
)
