"""DET-set-iter and DET-wallclock: the nondeterminism defect classes.

Both PR 3 post-merge bugs were hash-salted set iteration reordering
draws from the shared RNG — a class that is statically detectable.
These rules run over everything that feeds the deterministic simulated
trajectory; only the wall-clock TCP runtime (``transport/tcp.py``,
``transport/runner.py``) and the wall-clock half of the bench harness
are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set, Tuple

from repro.analysis import astutil
from repro.analysis.engine import Finding, Project, Rule

__all__ = ["DET_SET_ITER", "DET_WALLCLOCK"]

#: the wall-clock runtime: real sockets, real time, real process reaping.
_WALLCLOCK_RUNTIME = (
    "src/repro/transport/tcp.py",
    "src/repro/transport/runner.py",
)

_SET_ITER_EXCLUDE: Tuple[str, ...] = _WALLCLOCK_RUNTIME
_WALLCLOCK_EXCLUDE: Tuple[str, ...] = _WALLCLOCK_RUNTIME + (
    # measures wall-clock throughput by design; the deterministic
    # "results" block is separated from the "wallclock" block in the
    # artifact schema.
    "src/repro/bench/perf.py",
)

#: callables whose result does not depend on iteration order — a
#: comprehension that is the sole argument of one of these may walk a set.
_ORDER_INSENSITIVE = frozenset(
    {"sorted", "set", "frozenset", "len", "sum", "min", "max", "any", "all"}
)

#: consumers that materialize (or expose) iteration order.
_ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "enumerate", "iter", "reversed"})


def _check_set_iter(project: Project) -> Iterable[Finding]:
    files = project.in_scope(exclude=_SET_ITER_EXCLUDE)
    attrs = astutil.set_typed_attrs(project, project.files)
    findings: List[Finding] = []
    for file in files:
        names = astutil.set_typed_names(file, attrs)
        exempt_comprehensions: Set[int] = set()
        for node in ast.walk(file.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _ORDER_INSENSITIVE
            ):
                for arg in node.args:
                    if isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
                        exempt_comprehensions.add(id(arg))
        for node in ast.walk(file.tree):
            sites: List[Tuple[ast.AST, ast.expr]] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                sites.append((node, node.iter))
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                # SetComp output is itself unordered — building a set from
                # a set is order-insensitive.
                if id(node) not in exempt_comprehensions:
                    sites.extend((node, gen.iter) for gen in node.generators)
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in _ORDER_SENSITIVE_CALLS
                    and node.args
                ):
                    sites.append((node, node.args[0]))
                elif (
                    isinstance(func, ast.Attribute)
                    and func.attr == "join"
                    and node.args
                ):
                    sites.append((node, node.args[0]))
            for site, iter_expr in sites:
                if astutil.is_set_expr(iter_expr, names, attrs):
                    findings.append(
                        Finding(
                            path=file.path,
                            line=iter_expr.lineno,
                            col=iter_expr.col_offset + 1,
                            rule="DET-set-iter",
                            message=(
                                f"iteration over set-typed "
                                f"{ast.unparse(iter_expr)!r} follows salted "
                                "hash order — on a path that feeds the shared "
                                "RNG or a wire payload this differs per "
                                "interpreter (PYTHONHASHSEED)"
                            ),
                        )
                    )
    return findings


DET_SET_ITER = Rule(
    id="DET-set-iter",
    severity="error",
    summary="order-sensitive iteration over a set/frozenset",
    autofix_hint="wrap the iterable in sorted(...) (key= for unorderable elements)",
    check=_check_set_iter,
)


# ----------------------------------------------------------------------
# DET-wallclock
# ----------------------------------------------------------------------
#: exact qualified names that read the wall clock or OS entropy.
_BANNED_EXACT = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "time.strftime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "uuid.uuid1",
        "uuid.uuid4",
        "os.urandom",
        "os.getrandom",
    }
)

#: module prefixes banned wholesale (allowlist per prefix): the global
#: ``random`` module draws from interpreter-global state — protocol code
#: must draw from the cluster's seeded ``random.Random`` streams.
_BANNED_PREFIXES = {
    "random.": frozenset({"Random"}),
    "secrets.": frozenset(),
}


def _banned(qualified: str) -> bool:
    if qualified in _BANNED_EXACT:
        return True
    for prefix, allowed in _BANNED_PREFIXES.items():
        if qualified.startswith(prefix):
            member = qualified[len(prefix):].split(".", 1)[0]
            return member not in allowed
    return False


def _check_wallclock(project: Project) -> Iterable[Finding]:
    findings: List[Finding] = []
    for file in project.in_scope(exclude=_WALLCLOCK_EXCLUDE):
        aliases = astutil.import_aliases(file.tree)
        for node in ast.walk(file.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            if not isinstance(getattr(node, "ctx", None), ast.Load):
                continue
            dotted = astutil.dotted_name(node)
            if dotted is None:
                continue
            head, _, rest = dotted.partition(".")
            resolved = aliases.get(head)
            if resolved is None:
                continue
            qualified = resolved + ("." + rest if rest else "")
            if not _banned(qualified):
                continue
            # flag the outermost chain once, not every sub-attribute
            if isinstance(node, ast.Name) and "." in qualified and not rest:
                # a bare module alias reference (e.g. ``import time; time``)
                # only matters once dereferenced — skip.
                if qualified not in _BANNED_EXACT and not any(
                    qualified.startswith(p) for p in _BANNED_PREFIXES
                ):
                    continue
            findings.append(
                Finding(
                    path=file.path,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    rule="DET-wallclock",
                    message=(
                        f"{qualified} reads the wall clock / OS entropy — "
                        "the simulated clock and the cluster's seeded RNG "
                        "streams rule here (transport.now, Node.now, "
                        "RngRegistry)"
                    ),
                )
            )
    # the outermost-chain dedup: an Attribute chain like
    # ``datetime.datetime.now`` visits nested Attribute/Name nodes too;
    # keep only the longest match per (line, col) prefix family.
    deduped = {}
    for finding in findings:
        key = (finding.path, finding.line, finding.col)
        current = deduped.get(key)
        if current is None or len(finding.message) > len(current.message):
            deduped[key] = finding
    return list(deduped.values())


DET_WALLCLOCK = Rule(
    id="DET-wallclock",
    severity="error",
    summary="wall-clock/entropy primitive where the simulated clock rules",
    autofix_hint=(
        "use transport.now / Node.now for time and the cluster's seeded "
        "RngRegistry streams for randomness"
    ),
    check=_check_wallclock,
)
