"""Protocol-aware static analysis: determinism & wire-hygiene checks.

Every figure, chaos cell and trace artifact in this repo is gated on
bit-for-bit deterministic simulated runs, and the TCP backend is gated
on a complete, explicit wire codec.  The invariants that keep those
gates honest — no hash-salted set iteration feeding the shared RNG, no
wall clock where the simulated clock rules, codec completeness,
``__slots__`` messages, sim-free role code, exhaustive message handlers
— used to live in scattered one-off tests.  This package makes them one
first-class subsystem: an AST rule engine (:mod:`repro.analysis.engine`)
with per-file and cross-file passes, inline ``# repro: noqa
RULE-ID(reason)`` suppressions and a committed baseline file so the rule
set can ratchet, surfaced as ``repro analyze``.

Rules
-----

``DET-set-iter``
    Order-sensitive iteration over a ``set``/``frozenset`` (the exact
    defect class behind the PR 3 chaos nondeterminism: hash-salted set
    walks silently reordering draws from the shared RNG).
``DET-wallclock``
    Wall-clock/entropy primitives (``time.time``, ``datetime.now``,
    ``uuid.uuid4``, module-level ``random.*``, ...) anywhere the
    simulated clock rules.
``WIRE-codec``
    Every message dataclass reachable from a ``send``/``broadcast``
    must be frozen, ``__slots__``, and registered in
    ``repro.transport.codec``.
``ISO-sim-free``
    Transport-neutral packages must not import ``repro.sim`` (the
    generalized ``tests/test_transport_isolation.py`` walk, with
    per-package allowlists).
``HANDLER-exhaustive``
    Every sent message type has a ``handle_<snake_case>`` method on some
    role class, and no handler is dead.
``NOQA-malformed``
    A ``# repro: noqa`` comment that does not parse (suppressions
    require a rule id and a reason).
"""

from repro.analysis.engine import (
    Baseline,
    Finding,
    Project,
    Rule,
    all_rules,
    analyze_project,
    render_json,
    render_text,
)

__all__ = [
    "Baseline",
    "Finding",
    "Project",
    "Rule",
    "all_rules",
    "analyze_project",
    "render_json",
    "render_text",
]
