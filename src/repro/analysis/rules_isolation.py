"""ISO-sim-free: transport-neutral code must not touch the simulator.

Role classes speak only to :class:`repro.transport.base.Transport`, so
the same protocol code runs under the deterministic simulator and over
asyncio TCP.  This generalizes the original
``tests/test_transport_isolation.py`` AST walk into per-package
allowlists: everything transport-neutral forbids ``repro.sim``; the sim
backend, the fault controller (which drives the simulated network), the
cluster builders and the CLI are exempt by construction.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Tuple

from repro.analysis.engine import Finding, Project, Rule

__all__ = ["ISO_SIM_FREE"]

#: path prefix -> module prefixes its files must not import.  A file is
#: governed by the longest matching prefix, so transport/base.py and
#: transport/codec.py are restricted while the rest of transport/ (the
#: sim backend lives there) is not.
FORBIDDEN_IMPORTS: Dict[str, Tuple[str, ...]] = {
    "src/repro/core/": ("repro.sim",),
    "src/repro/protocols/": ("repro.sim",),
    "src/repro/placement/": ("repro.sim",),
    "src/repro/reconfig/": ("repro.sim",),
    "src/repro/analysis/": ("repro.sim",),
    "src/repro/transport/base.py": ("repro.sim",),
    "src/repro/transport/codec.py": ("repro.sim",),
    "src/repro/transport/": (),
    "src/repro/faults/": (),  # drives SimulationError/LinkPolicy by design
}

#: packages where even a ``.sim`` attribute access is forbidden (role
#: classes must use Node.now/set_timer/future(), not a simulator handle).
_NO_SIM_ATTRIBUTE = ("src/repro/core/",)


def _forbidden_for(path: str) -> Tuple[str, ...]:
    best: Tuple[int, Tuple[str, ...]] = (-1, ())
    for prefix, banned in FORBIDDEN_IMPORTS.items():
        if path.startswith(prefix) and len(prefix) > best[0]:
            best = (len(prefix), banned)
    return best[1]


def _module_matches(module: str, banned: Tuple[str, ...]) -> bool:
    return any(module == b or module.startswith(b + ".") for b in banned)


def _check_isolation(project: Project) -> Iterable[Finding]:
    findings: List[Finding] = []
    for file in project.files:
        banned = _forbidden_for(file.path)
        if banned:
            for node in ast.walk(file.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        if _module_matches(alias.name, banned):
                            findings.append(
                                Finding(
                                    path=file.path,
                                    line=node.lineno,
                                    col=node.col_offset + 1,
                                    rule="ISO-sim-free",
                                    message=(
                                        f"import {alias.name} — this package is "
                                        "transport-neutral; route everything "
                                        "through repro.transport"
                                    ),
                                )
                            )
                elif isinstance(node, ast.ImportFrom):
                    module = node.module or ""
                    if node.level:
                        # relative imports cannot reach repro.sim from a
                        # sibling package without an absolute name; the
                        # banned prefixes are absolute.
                        continue
                    if _module_matches(module, banned):
                        findings.append(
                            Finding(
                                path=file.path,
                                line=node.lineno,
                                col=node.col_offset + 1,
                                rule="ISO-sim-free",
                                message=(
                                    f"from {module} import ... — this package "
                                    "is transport-neutral; route everything "
                                    "through repro.transport"
                                ),
                            )
                        )
        if any(file.path.startswith(p) for p in _NO_SIM_ATTRIBUTE):
            for node in ast.walk(file.tree):
                if isinstance(node, ast.Attribute) and node.attr == "sim":
                    findings.append(
                        Finding(
                            path=file.path,
                            line=node.lineno,
                            col=node.col_offset + 1,
                            rule="ISO-sim-free",
                            message=(
                                ".sim attribute access — role classes use "
                                "Node.now/set_timer/future(), never a "
                                "simulator handle"
                            ),
                        )
                    )
    return findings


ISO_SIM_FREE = Rule(
    id="ISO-sim-free",
    severity="error",
    summary="simulator import/handle in transport-neutral code",
    autofix_hint=(
        "move the dependency behind the repro.transport.base.Transport "
        "interface (Node.now, set_timer, future, send)"
    ),
    check=_check_isolation,
)
