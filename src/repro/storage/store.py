"""The per-node record store: tables of versioned records.

One :class:`RecordStore` instance backs each simulated storage node.  It is
deliberately dumb — versioned reads and committed writes only.  Validation
(read-version checks, constraint demarcation, option bookkeeping) is the
protocol's job; keeping it out of the store means every protocol baseline
(2PC, quorum writes, Megastore*) shares the same substrate, as in the
paper's evaluation ("using the same distributed store", §5.2).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.storage.record import Record, Snapshot
from repro.storage.schema import TableSchema

__all__ = ["RecordStore", "StorageError"]


class StorageError(RuntimeError):
    """Raised for schema violations and unknown tables."""


class RecordStore:
    """All records hosted by one storage node, grouped by table."""

    def __init__(self) -> None:
        self._schemas: Dict[str, TableSchema] = {}
        self._tables: Dict[str, Dict[str, Record]] = {}

    # ------------------------------------------------------------------
    # Schema management
    # ------------------------------------------------------------------
    def register_table(self, schema: TableSchema) -> None:
        if schema.name in self._schemas:
            raise StorageError(f"table {schema.name!r} already registered")
        self._schemas[schema.name] = schema
        self._tables[schema.name] = {}

    def schema(self, table: str) -> TableSchema:
        try:
            return self._schemas[table]
        except KeyError:
            raise StorageError(f"unknown table {table!r}") from None

    @property
    def tables(self) -> Tuple[str, ...]:
        return tuple(self._schemas)

    # ------------------------------------------------------------------
    # Record access
    # ------------------------------------------------------------------
    def record(self, table: str, key: str) -> Record:
        """The record object for (table, key), created lazily."""
        if table not in self._tables:
            raise StorageError(f"unknown table {table!r}")
        records = self._tables[table]
        if key not in records:
            records[key] = Record(table, key)
        return records[key]

    def peek(self, table: str, key: str) -> Optional[Record]:
        """The record if it has ever been touched, else None (no creation)."""
        if table not in self._tables:
            raise StorageError(f"unknown table {table!r}")
        return self._tables[table].get(key)

    def read(self, table: str, key: str) -> Snapshot:
        """Committed snapshot of (table, key); absent records read cleanly."""
        record = self.peek(table, key)
        if record is None:
            return Snapshot(exists=False, value=None, version=0)
        return record.snapshot()

    def scan(self, table: str) -> Iterator[Tuple[str, Snapshot]]:
        """(key, snapshot) for every live record of ``table``, sorted by key."""
        if table not in self._tables:
            raise StorageError(f"unknown table {table!r}")
        for key in sorted(self._tables[table]):
            record = self._tables[table][key]
            if record.exists:
                yield key, record.snapshot()

    def count(self, table: str) -> int:
        """Number of live records in ``table``."""
        return sum(1 for _ in self.scan(table))

    def snapshot(
        self,
    ) -> Iterator[Tuple[str, str, Snapshot, Tuple[str, ...]]]:
        """Deterministic full-store dump for replica bootstrap.

        Yields ``(table, key, snapshot, applied_ids)`` with tables and
        keys in sorted order, so two dumps of equal stores are equal
        element-for-element regardless of insertion order.  Unlike
        :meth:`scan`, tombstoned records ARE included (``exists=False``
        with their version) — a joining replica must learn deletes, or a
        resurrected stale version could pass its validRead check.  Records
        that never committed anything (version 0) are skipped: they carry
        no adoptable state.  ``applied_ids`` is sorted for the same
        determinism guarantee.
        """
        for table in sorted(self._tables):
            records = self._tables[table]
            for key in sorted(records):
                record = records[key]
                if record.current_version == 0:
                    continue
                yield table, key, record.snapshot(), tuple(
                    sorted(record.applied_ids)
                )
