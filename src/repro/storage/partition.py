"""Key partitioning.

"Within a data center, each table is range partitioned by key, and
distributed across several storage nodes" (§5.1).  The cluster builder
uses a :class:`RangePartitioner` so that contiguous key ranges co-locate,
exactly as the evaluation describes; a :class:`HashPartitioner` is provided
for workloads without meaningful key order.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import List, Sequence

__all__ = ["HashPartitioner", "RangePartitioner", "stable_hash"]


#: memoized digests — placement hashes the same record keys on every
#: message, and the key population is bounded by the workload's table size.
_HASH_CACHE: dict = {}


def stable_hash(key: str) -> int:
    """A process-independent 64-bit hash (``hash()`` is salted per run)."""
    cached = _HASH_CACHE.get(key)
    if cached is None:
        cached = int.from_bytes(hashlib.sha256(key.encode()).digest()[:8], "big")
        _HASH_CACHE[key] = cached
    return cached


class RangePartitioner:
    """Maps keys to partitions by lexicographic boundary keys.

    ``boundaries`` are the *exclusive lower bounds* of partitions 1..n-1;
    keys below the first boundary go to partition 0.

    >>> p = RangePartitioner(["item:3333", "item:6666"])
    >>> p.partition_of("item:0001"), p.partition_of("item:5000"), p.partition_of("item:9999")
    (0, 1, 2)
    """

    def __init__(self, boundaries: Sequence[str]) -> None:
        self.boundaries: List[str] = list(boundaries)
        if self.boundaries != sorted(self.boundaries):
            raise ValueError("range boundaries must be sorted")
        if len(set(self.boundaries)) != len(self.boundaries):
            raise ValueError("range boundaries must be distinct")

    @property
    def num_partitions(self) -> int:
        return len(self.boundaries) + 1

    def partition_of(self, key: str) -> int:
        return bisect.bisect_right(self.boundaries, key)

    @classmethod
    def even_over_keys(cls, sorted_keys: Sequence[str], num_partitions: int) -> "RangePartitioner":
        """Build boundaries that split ``sorted_keys`` into even ranges."""
        if num_partitions < 1:
            raise ValueError("need at least one partition")
        if num_partitions == 1 or not sorted_keys:
            return cls([])
        step = len(sorted_keys) / num_partitions
        boundaries = []
        for index in range(1, num_partitions):
            boundaries.append(sorted_keys[int(index * step)])
        # Collapse duplicates (tiny key spaces): keep strictly increasing.
        unique: List[str] = []
        for boundary in boundaries:
            if not unique or boundary > unique[-1]:
                unique.append(boundary)
        return cls(unique)


class HashPartitioner:
    """Maps keys to partitions by stable hash modulo partition count."""

    def __init__(self, num_partitions: int) -> None:
        if num_partitions < 1:
            raise ValueError("need at least one partition")
        self.num_partitions = num_partitions

    def partition_of(self, key: str) -> int:
        return stable_hash(key) % self.num_partitions
