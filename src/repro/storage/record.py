"""Versioned records.

Every update in MDCC "creates a new version, and [is] represented in the
form v_read -> v_write" (§3.2.1); write-write conflict detection compares
the current committed version with the transaction's read version.  A
:class:`Record` therefore keeps an explicit chain of committed
:class:`RecordVersion` entries.  Deletes are tombstones: "Deletes work by
marking the item as deleted and are handled as normal updates."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["Record", "RecordVersion", "Snapshot", "TOMBSTONE"]


class _Tombstone:
    """Sentinel marking a deleted record version."""

    _instance: Optional["_Tombstone"] = None

    def __new__(cls) -> "_Tombstone":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<TOMBSTONE>"


TOMBSTONE = _Tombstone()


@dataclass(frozen=True, slots=True)
class RecordVersion:
    """One committed version of a record.

    ``value`` is either an attribute dict or :data:`TOMBSTONE`.
    Version numbers start at 1 for the first insert; 0 means "never
    existed" and is the read-version carried by inserts.
    """

    version: int
    value: object  # Dict[str, object] | _Tombstone

    @property
    def is_tombstone(self) -> bool:
        return self.value is TOMBSTONE


@dataclass(frozen=True, slots=True)
class Snapshot:
    """What a read returns: existence, a value copy, and the version read.

    ``version`` feeds v_read of subsequent updates; reading an absent
    record yields ``version == 0`` so that a later insert is validated as
    "only succeed if the record doesn't already exist" (§3.2.1).
    """

    exists: bool
    value: Optional[Dict[str, object]]
    version: int

    def attribute(self, name: str, default: object = None) -> object:
        if not self.exists or self.value is None:
            return default
        return self.value.get(name, default)


class Record:
    """A single record's committed version chain.

    The chain only holds *committed* state; pending options are protocol
    state kept by the MDCC acceptor (:mod:`repro.core.acceptor`).  The
    chain is append-only — version N+1 may only be appended after version N
    ("a new record version can only be chosen if the previous version was
    successfully determined", §3.2.1).
    """

    __slots__ = ("table", "key", "_versions", "applied_ids")

    def __init__(self, table: str, key: str) -> None:
        self.table = table
        self.key = key
        self._versions: List[RecordVersion] = []
        #: option ids whose effects are folded into the committed value.
        #: Carried by repair/catch-up payloads so a replica adopting this
        #: state wholesale knows which in-flight visibilities it must NOT
        #: re-apply (commutative deltas are blind — without this set a
        #: CatchUp followed by the original Visibility double-applies).
        self.applied_ids: set = set()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def current_version(self) -> int:
        """Version number of the latest committed state (0 if none)."""
        versions = self._versions
        return versions[-1].version if versions else 0

    @property
    def exists(self) -> bool:
        """True if the latest committed version is live (not a tombstone)."""
        versions = self._versions
        return bool(versions) and versions[-1].value is not TOMBSTONE

    def snapshot(self) -> Snapshot:
        """A copy-safe view of the committed state."""
        versions = self._versions
        if not versions:
            return Snapshot(exists=False, value=None, version=0)
        latest = versions[-1]
        if latest.value is TOMBSTONE:
            return Snapshot(exists=False, value=None, version=latest.version)
        return Snapshot(exists=True, value=dict(latest.value), version=latest.version)

    def peek(self, attribute: str, default: object = None) -> object:
        """Read one attribute of the committed value without the snapshot
        copy — for decision paths that never hand the value onward."""
        versions = self._versions
        if not versions:
            return default
        latest = versions[-1]
        if latest.value is TOMBSTONE:
            return default
        return latest.value.get(attribute, default)

    def version_chain(self) -> List[RecordVersion]:
        """The full committed history (copies of the dataclass entries)."""
        return list(self._versions)

    def value_at(self, version: int) -> Optional[RecordVersion]:
        """The chain entry with exactly ``version``, or None."""
        for entry in self._versions:
            if entry.version == version:
                return entry
        return None

    # ------------------------------------------------------------------
    # Mutation (called by protocol executors only)
    # ------------------------------------------------------------------
    def commit_value(self, value: Dict[str, object], option_id: Optional[str] = None) -> int:
        """Append a new committed version holding a copy of ``value``."""
        next_version = self.current_version + 1
        self._versions.append(RecordVersion(next_version, dict(value)))
        if option_id is not None:
            self.applied_ids.add(option_id)
        return next_version

    def commit_delete(self, option_id: Optional[str] = None) -> int:
        """Append a tombstone version."""
        next_version = self.current_version + 1
        self._versions.append(RecordVersion(next_version, TOMBSTONE))
        if option_id is not None:
            self.applied_ids.add(option_id)
        return next_version

    def commit_delta(
        self, attribute: str, delta: float, option_id: Optional[str] = None
    ) -> int:
        """Append a version with ``attribute`` adjusted by ``delta``.

        Commutative updates apply to the latest committed value; the record
        must exist.
        """
        versions = self._versions
        if not versions or versions[-1].value is TOMBSTONE:
            raise ValueError(
                f"commutative update on non-existent record {self.table}/{self.key}"
            )
        last = versions[-1]
        latest = dict(last.value)
        current = latest.get(attribute, 0)
        if not isinstance(current, (int, float)):
            raise ValueError(
                f"attribute {attribute!r} of {self.table}/{self.key} is not numeric"
            )
        latest[attribute] = current + delta
        # ``latest`` is already a private copy; append it without the
        # second copy commit_value would make.
        next_version = last.version + 1
        versions.append(RecordVersion(next_version, latest))
        if option_id is not None:
            self.applied_ids.add(option_id)
        return next_version

    def catch_up(
        self,
        version: int,
        value: Optional[Dict[str, object]],
        applied_ids: tuple = (),
    ) -> bool:
        """Jump directly to ``version`` with ``value`` (None = tombstone).

        Used by replica catch-up: a lagging node that missed intermediate
        commits adopts the authoritative committed state wholesale.
        ``applied_ids`` are the option ids folded into the adopted value;
        when the jump happens they join this record's applied set so their
        (possibly still in-flight) visibilities are not re-applied here.
        Returns False (no-op) if we already know ``version`` or newer —
        then the ids are NOT merged either: a replica that is not behind
        may hold a different applied subset (commutative orders diverge),
        and marking a foreign id applied would drop its pending delta.
        """
        if version <= self.current_version:
            return False
        payload: object = TOMBSTONE if value is None else dict(value)
        self._versions.append(RecordVersion(version, payload))
        self.applied_ids.update(applied_ids)
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Record {self.table}/{self.key} v{self.current_version}"
            f"{'' if self.exists else ' (absent)'}>"
        )
