"""Table schemas and attribute value constraints.

MDCC's commutative-update machinery needs declared integrity constraints —
"e.g., that the stock of an item must be greater than zero" (§3.4.2).  A
:class:`Constraint` bounds one numeric attribute; the quorum demarcation
limits of :mod:`repro.core.demarcation` are derived from these bounds.

Each table also carries a default master data center: "the default
configuration assigns a single master per table to coordinate inserts of
new records" (§3.1.2), and per-record masters default to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["Constraint", "TableSchema"]


@dataclass(frozen=True)
class Constraint:
    """Inclusive numeric bounds on an attribute value.

    ``minimum=0`` expresses the paper's running example, stock >= 0.
    Either bound may be ``None`` (unbounded on that side).
    """

    minimum: Optional[float] = None
    maximum: Optional[float] = None

    def __post_init__(self) -> None:
        if (
            self.minimum is not None
            and self.maximum is not None
            and self.minimum > self.maximum
        ):
            raise ValueError(
                f"constraint minimum {self.minimum} exceeds maximum {self.maximum}"
            )

    def allows(self, value: float) -> bool:
        """Whether ``value`` satisfies the bounds."""
        if self.minimum is not None and value < self.minimum:
            return False
        if self.maximum is not None and value > self.maximum:
            return False
        return True

    @property
    def bounded_below(self) -> bool:
        return self.minimum is not None

    @property
    def bounded_above(self) -> bool:
        return self.maximum is not None


@dataclass
class TableSchema:
    """Metadata for one table: name, constraints and default mastership.

    Attributes:
        name: table name, unique within a cluster.
        constraints: attribute name -> :class:`Constraint`.  Attributes
            without an entry are unconstrained.
        default_master_dc: data center whose storage node is the default
            (Multi-Paxos) master for records of this table; ``None`` lets
            the cluster builder pick.
    """

    name: str
    constraints: Dict[str, Constraint] = field(default_factory=dict)
    default_master_dc: Optional[str] = None

    def constraint(self, attribute: str) -> Optional[Constraint]:
        """The constraint for ``attribute``, or None if unconstrained."""
        return self.constraints.get(attribute)

    def check_value(self, value: Dict[str, object]) -> bool:
        """Whether every constrained attribute present satisfies its bounds."""
        for attribute, constraint in self.constraints.items():
            if attribute in value:
                attr_value = value[attribute]
                if not isinstance(attr_value, (int, float)):
                    return False
                if not constraint.allows(attr_value):
                    return False
        return True
