"""Storage substrate: versioned records, schemas, partitioning, WAL.

The paper's storage nodes are "significantly simplified" key/value servers
(§2): they hold horizontally partitioned, versioned records plus the Paxos
metadata the protocol needs.  This package supplies the data layer —
protocol state machines live in :mod:`repro.core` and use these stores.
"""

from repro.storage.record import Record, RecordVersion, Snapshot, TOMBSTONE
from repro.storage.schema import Constraint, TableSchema
from repro.storage.store import RecordStore, StorageError
from repro.storage.partition import HashPartitioner, RangePartitioner
from repro.storage.wal import LogEntry, WriteAheadLog

__all__ = [
    "Constraint",
    "HashPartitioner",
    "LogEntry",
    "RangePartitioner",
    "Record",
    "RecordStore",
    "RecordVersion",
    "Snapshot",
    "StorageError",
    "TOMBSTONE",
    "TableSchema",
    "WriteAheadLog",
]
