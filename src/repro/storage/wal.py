"""Write-ahead log of learned options.

The paper's failure-recovery story depends on durable option logs: storage
nodes keep "a log of all learned options" so that "every option includes
all necessary information to reconstruct the state of the corresponding
transactions" (§3.2.3).  This module provides that log as an append-only
in-memory structure with monotonically increasing LSNs; the simulated
environment treats an appended entry as durable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = ["LogEntry", "WriteAheadLog"]


@dataclass(frozen=True, slots=True)
class LogEntry:
    """One durable log record.

    ``kind`` is a short tag ("option-learned", "visibility", ...);
    ``payload`` is whatever the protocol needs to replay — for MDCC, the
    option with its transaction id and write-set keys.
    """

    lsn: int
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)


class WriteAheadLog:
    """Append-only log with LSN-ordered iteration, checkpoints and replay."""

    def __init__(self) -> None:
        self._entries: List[LogEntry] = []
        self._next_lsn = 1
        self._checkpoints: List[int] = []

    def append(self, kind: str, **payload: Any) -> LogEntry:
        """Durably record an entry; returns it with its assigned LSN."""
        # ``payload`` is already a fresh dict built for this call — adopting
        # it directly avoids a copy on a per-learned-option hot path.
        # Hand-rolled frozen-dataclass construction: one WAL entry per
        # learned option makes the generated __init__ measurable.
        entry = object.__new__(LogEntry)
        _set = object.__setattr__
        _set(entry, "lsn", self._next_lsn)
        _set(entry, "kind", kind)
        _set(entry, "payload", payload)
        self._next_lsn += 1
        self._entries.append(entry)
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[LogEntry]:
        return iter(self._entries)

    @property
    def last_lsn(self) -> int:
        return self._entries[-1].lsn if self._entries else 0

    def entries_since(self, lsn: int) -> List[LogEntry]:
        """Entries with LSN strictly greater than ``lsn``."""
        return [entry for entry in self._entries if entry.lsn > lsn]

    def entries_of_kind(self, kind: str) -> List[LogEntry]:
        return [entry for entry in self._entries if entry.kind == kind]

    def replay(
        self,
        apply: Callable[[LogEntry], None],
        from_lsn: int = 0,
        kind: Optional[str] = None,
    ) -> int:
        """Apply entries after ``from_lsn`` (optionally one kind); count them."""
        count = 0
        for entry in self.entries_since(from_lsn):
            if kind is not None and entry.kind != kind:
                continue
            apply(entry)
            count += 1
        return count

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------
    def checkpoint(self) -> int:
        """Record a checkpoint cut at the current tail; returns the cut LSN.

        The cut is a *consistency marker*: everything at or below it is
        covered by whatever state accompanies the checkpoint (a store
        snapshot, for the elastic-membership bootstrap), and
        :meth:`entries_since` of the cut is exactly the suffix a consumer
        of that state still has to obtain.  Checkpointing an empty log
        returns 0.  The cut is stable: later appends do not move it.
        """
        cut = self.last_lsn
        self._checkpoints.append(cut)
        return cut

    @property
    def checkpoints(self) -> List[int]:
        """Every recorded cut, oldest first (copies; callers may mutate)."""
        return list(self._checkpoints)

    @property
    def last_checkpoint(self) -> int:
        """The most recent cut LSN (0 if no checkpoint was ever taken)."""
        return self._checkpoints[-1] if self._checkpoints else 0

    def truncate_through(self, lsn: int) -> int:
        """Discard entries with LSN <= ``lsn`` (checkpointing); count removed.

        LSNs are never reused: the next append still gets a strictly
        higher LSN than anything ever written.  Checkpoint cuts at or
        below the truncation point remain valid markers (their
        ``entries_since`` suffix is unaffected by dropping the prefix).
        """
        before = len(self._entries)
        self._entries = [entry for entry in self._entries if entry.lsn > lsn]
        return before - len(self._entries)
