"""Replicated Commit: Paxos across data centers over per-DC 2PC.

MDCC layers transactions *over* Paxos: every record update is a Paxos
round across data centers.  Replicated Commit (Patterson et al.,
"Serializability, not Serial: Concurrency Control and Availability in
Multi-Datacenter Datastores", arXiv 1208.0270) inverts the layering —
ROADMAP open item 4 calls it the natural second geo-replication design
to stress the protocol abstraction:

* **inside** each data center, a transaction runs plain two-phase commit
  among that DC's storage nodes (locks + read-version validation, one
  LAN round trip);
* **across** data centers, the client acts as Paxos proposer for a
  single value — "did this transaction commit?" — and each DC's 2PC
  outcome is that DC's accept/reject vote.  A majority of DC votes
  decides; the decision is broadcast back to every DC, which applies
  (or releases) its local locks.

So where MDCC pays one wide-area round per *record* (fast path) plus
asynchronous visibility, Replicated Commit pays one wide-area round per
*transaction* (commit request out, vote back, decision out) regardless
of write-set size — and reads pay the majority price instead:
"reads go to a majority of data centers" because a single DC may have
voted no (or missed the apply) for a transaction that nevertheless
committed globally.

Role mapping onto the shared cluster topology:

* the partition-0 storage node of each DC doubles as that DC's **2PC
  coordinator** (any node could; partition 0 is the deterministic pick);
* every storage node is a 2PC **participant** for the records of its
  partition, reusing the lock/validate vocabulary of
  :mod:`repro.protocols.twopc`;
* the app-server client is the cross-DC **proposer**: it fans the
  commit request to all DC coordinators, tallies DC votes to a classic
  majority, and broadcasts the decision.

Causal trace spans: ``rc-paxos-vote`` (DC coordinator, request to vote
cast), ``rc-local-prepare`` (participant lock/validate verdict), and
``rc-commit-apply`` (participant applying a committed update) — all
stitched under the client's root ``transaction`` span via the ambient
message context.

Convergence under faults: a minority DC that was partitioned during the
decision holds stale locks and misses applies.  Applies are
version-guarded with an out-of-order buffer (a later write may arrive
before the one it supersedes), and replicas answer the shared
``RepairProbe``/``CatchUp`` anti-entropy vocabulary, so background
sweeps converge every replica once the partition heals; adopting a
catch-up releases any lock the lost decision stranded.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from repro.core.config import MDCCConfig
from repro.core.coordinator import TransactionOutcome, WriteSet
from repro.core.demarcation import DemarcationLimits, escrow_accepts
from repro.core.messages import (
    CatchUp,
    RcApply,
    RcCommitRequest,
    RcDecision,
    RcPrepare,
    RcPrepareReply,
    RcVote,
    ReadReply,
    ReadRequest,
    RepairProbe,
    RepairReply,
)
from repro.core.options import (
    CommutativeUpdate,
    OptionStatus,
    PhysicalUpdate,
    ReadValidation,
    RecordId,
    Update,
)
from repro.core.topology import ReplicaMap
from repro.metrics import CounterSet
from repro.trace import runtime as trace_runtime
from repro.transport.base import Future, Node, Transport
from repro.storage.store import RecordStore
from repro.storage.wal import WriteAheadLog

__all__ = ["ReplicatedCommitClient", "ReplicatedCommitStorageNode"]


@dataclass
class _DcRound:
    """One transaction's 2PC round inside this data center (coordinator)."""

    txid: str
    reply_to: str
    updates: Tuple[Tuple[RecordId, Update], ...]
    votes: Dict[RecordId, bool] = field(default_factory=dict)
    span: Optional[object] = None


class ReplicatedCommitStorageNode(Node):
    """A Replicated Commit replica: 2PC participant, and (on the DC's
    partition-0 node) the DC's 2PC coordinator."""

    def __init__(
        self,
        transport: Transport,
        node_id: str,
        dc: str,
        placement: ReplicaMap,
        config: MDCCConfig,
        counters: Optional[CounterSet] = None,
    ) -> None:
        super().__init__(transport, node_id, dc)
        self.placement = placement
        self.config = config
        self.counters = trace_runtime.scoped_counters(
            node_id, counters if counters is not None else CounterSet()
        )
        self.tracer = trace_runtime.current_tracer()
        self.store = RecordStore()
        self.wal = WriteAheadLog()
        #: record -> (txid, update) currently prepared (locked).
        self._locks: Dict[RecordId, Tuple[str, Update]] = {}
        #: decisions already applied, for idempotence.
        self._decided: Set[Tuple[str, str]] = set()
        #: committed physical updates that arrived ahead of the version
        #: they build on: record -> {vread: update}, drained as applies
        #: (or catch-ups) advance the record version.
        self._apply_buffer: Dict[RecordId, Dict[int, PhysicalUpdate]] = {}
        #: 2PC rounds this node is coordinating for its DC, by txid.
        self._rounds: Dict[str, _DcRound] = {}

    # ------------------------------------------------------------------
    # DC coordinator: run the local 2PC round, cast the DC's Paxos vote
    # ------------------------------------------------------------------
    def handle_rc_commit_request(self, message: RcCommitRequest, src_id: str) -> None:
        round = _DcRound(
            txid=message.txid, reply_to=message.reply_to, updates=message.updates
        )
        self._rounds[message.txid] = round
        self.counters.increment("repcommit.dc_rounds")
        if self.tracer.enabled:
            round.span = self.tracer.start_span(
                "rc-paxos-vote",
                self.node_id,
                self.now,
                parent=trace_runtime.current_context(),
                txid=message.txid,
                dc=self.dc,
                records=len(message.updates),
            )
            previous = trace_runtime.set_context(round.span.ctx)
            try:
                self._fan_prepares(round)
            finally:
                trace_runtime.reset_context(previous)
        else:
            self._fan_prepares(round)

    def _fan_prepares(self, round: _DcRound) -> None:
        for record, update in round.updates:
            participant = self.placement.replica_in(record, self.dc)
            self.send(
                participant,
                RcPrepare(
                    txid=round.txid,
                    record=record,
                    update=update,
                    reply_to=self.node_id,
                ),
            )

    def handle_rc_prepare_reply(self, message: RcPrepareReply, src_id: str) -> None:
        round = self._rounds.get(message.txid)
        if round is None:
            return  # decision (or abort) already superseded this round
        round.votes[message.record] = message.vote
        if len(round.votes) < len(round.updates):
            return
        accept = all(round.votes.values())
        del self._rounds[message.txid]
        if round.span is not None:
            round.span.finish(self.now, "yes" if accept else "no")
            previous = trace_runtime.set_context(round.span.ctx)
            try:
                self._cast_vote(round, accept)
            finally:
                trace_runtime.reset_context(previous)
        else:
            self._cast_vote(round, accept)

    def _cast_vote(self, round: _DcRound, accept: bool) -> None:
        self.wal.append("rc-vote", txid=round.txid, dc=self.dc, accept=accept)
        self.counters.increment(
            "repcommit.dc_votes_yes" if accept else "repcommit.dc_votes_no"
        )
        self.send(
            round.reply_to,
            RcVote(txid=round.txid, dc=self.dc, accept=accept, voter=self.node_id),
        )

    def handle_rc_decision(self, message: RcDecision, src_id: str) -> None:
        round = self._rounds.pop(message.txid, None)
        if round is not None and round.span is not None:
            # The global decision overtook this DC's own vote (it was not
            # needed for the majority, or the client timed out on us).
            round.span.finish(self.now, "superseded")
        for record, update in message.updates:
            participant = self.placement.replica_in(record, self.dc)
            self.send(
                participant,
                RcApply(
                    txid=message.txid,
                    record=record,
                    update=update,
                    commit=message.commit,
                ),
            )

    # ------------------------------------------------------------------
    # Participant: prepare (lock + validate), apply the decision
    # ------------------------------------------------------------------
    def handle_rc_prepare(self, message: RcPrepare, src_id: str) -> None:
        ok, reason = self._try_prepare(message.txid, message.record, message.update)
        if self.tracer.enabled:
            span = self.tracer.start_span(
                "rc-local-prepare",
                self.node_id,
                self.now,
                parent=trace_runtime.current_context(),
                txid=message.txid,
                record=f"{message.record.table}/{message.record.key}",
            )
            span.finish(self.now, reason)
        self.wal.append("rc-prepare", txid=message.txid, ok=ok)
        self.counters.increment("repcommit.prepares")
        self.send(
            message.reply_to,
            RcPrepareReply(
                txid=message.txid, record=message.record, vote=ok, reason=reason
            ),
        )

    def _try_prepare(
        self, txid: str, record: RecordId, update: Update
    ) -> Tuple[bool, str]:
        if (txid, str(record)) in self._decided:
            # The decision overtook this prepare in flight; locking now
            # would strand the lock — nothing is coming to release it.
            return False, "decided"
        held = self._locks.get(record)
        if held is not None and held[0] != txid:
            return False, "lock-conflict"
        snapshot = self.store.read(record.table, record.key)
        if isinstance(update, ReadValidation):
            if update.vread != snapshot.version:
                return False, "stale-read"
        elif isinstance(update, PhysicalUpdate):
            if update.vread != snapshot.version:
                return False, "stale-read"
            if not update.is_delete:
                schema = self.store.schema(record.table)
                if not schema.check_value(update.new_value):
                    return False, "constraint"
        else:
            assert isinstance(update, CommutativeUpdate)
            if not snapshot.exists:
                return False, "stale-read"
            schema = self.store.schema(record.table)
            for attribute, delta in update.deltas:
                constraint = schema.constraint(attribute)
                if constraint is None:
                    continue
                current = snapshot.attribute(attribute, 0)
                if not isinstance(current, (int, float)):
                    return False, "constraint"
                limits = DemarcationLimits(
                    lower=constraint.minimum, upper=constraint.maximum
                )
                # Every replica of the DC prepares, so plain escrow works.
                if not escrow_accepts(float(current), [], delta, limits):
                    return False, "escrow-limit"
        self._locks[record] = (txid, update)
        return True, "prepared"

    def handle_rc_apply(self, message: RcApply, src_id: str) -> None:
        key = (message.txid, str(message.record))
        if key in self._decided:
            return
        self._decided.add(key)
        held = self._locks.get(message.record)
        if held is not None and held[0] == message.txid:
            del self._locks[message.record]
        self.wal.append("rc-apply", txid=message.txid, commit=message.commit)
        self.counters.increment(
            "repcommit.applies" if message.commit else "repcommit.releases"
        )
        if not message.commit:
            return
        if self.tracer.enabled:
            span = self.tracer.start_span(
                "rc-commit-apply",
                self.node_id,
                self.now,
                parent=trace_runtime.current_context(),
                txid=message.txid,
                record=f"{message.record.table}/{message.record.key}",
            )
            span.finish(self.now, self._apply(message.record, message.update))
        else:
            self._apply(message.record, message.update)

    def _apply(self, record: RecordId, update: Update) -> str:
        stored = self.store.record(record.table, record.key)
        if isinstance(update, ReadValidation):
            return "noop"  # asserted state; nothing to apply
        if isinstance(update, CommutativeUpdate):
            for attribute, delta in update.deltas:
                stored.commit_delta(attribute, delta)
            return "delta"
        assert isinstance(update, PhysicalUpdate)
        if update.vread == stored.current_version:
            self._apply_physical(stored, update)
            self._drain_buffer(record)
            return "applied"
        if update.vread > stored.current_version:
            # Committed, but builds on a version this replica has not
            # applied yet (decisions from different clients race on the
            # WAN): park it until the predecessor lands.
            self._apply_buffer.setdefault(record, {})[update.vread] = update
            self.counters.increment("repcommit.buffered")
            return "buffered"
        return "stale"  # already superseded here (e.g. via catch-up)

    @staticmethod
    def _apply_physical(stored, update: PhysicalUpdate) -> None:
        if update.is_delete:
            stored.commit_delete()
        else:
            stored.commit_value(update.new_value)

    def _drain_buffer(self, record: RecordId) -> None:
        buffered = self._apply_buffer.get(record)
        if not buffered:
            return
        stored = self.store.record(record.table, record.key)
        while True:
            update = buffered.pop(stored.current_version, None)
            if update is None:
                break
            self._apply_physical(stored, update)
            self.counters.increment("repcommit.drained")
        for vread in [v for v in buffered if v < stored.current_version]:
            del buffered[vread]  # superseded; can never apply
        if not buffered:
            del self._apply_buffer[record]

    # ------------------------------------------------------------------
    # Reads (same message vocabulary as MDCC)
    # ------------------------------------------------------------------
    def handle_read_request(self, message: ReadRequest, src_id: str) -> None:
        snapshot = self.store.read(message.table, message.key)
        self.counters.increment("repcommit.reads")
        self.send(
            src_id,
            ReadReply(
                request_id=message.request_id,
                table=message.table,
                key=message.key,
                exists=snapshot.exists,
                value=snapshot.value,
                version=snapshot.version,
                is_fast_era=False,
                master_hint="",
            ),
        )

    # ------------------------------------------------------------------
    # Anti-entropy (shared RepairProbe/CatchUp vocabulary)
    # ------------------------------------------------------------------
    def handle_repair_probe(self, message: RepairProbe, src_id: str) -> None:
        snapshot = self.store.read(message.record.table, message.record.key)
        stored = self.store.record(message.record.table, message.record.key)
        self.send(
            src_id,
            RepairReply(
                request_id=message.request_id,
                record=message.record,
                exists=snapshot.exists,
                value=snapshot.value,
                version=snapshot.version,
                applied_ids=tuple(sorted(stored.applied_ids)),
                pending=(),
            ),
        )

    def handle_catch_up(self, message: CatchUp, src_id: str) -> None:
        stored = self.store.record(message.record.table, message.record.key)
        value = message.value if message.exists else None
        if not stored.catch_up(message.version, value, message.applied_ids):
            return
        self.counters.increment("repcommit.caught_up")
        # The adopted state supersedes whatever decision this replica
        # missed: a lock stranded by a lost RcApply must not block future
        # transactions, and buffered applies below the adopted version
        # can never land.
        self._locks.pop(message.record, None)
        self._drain_buffer(message.record)


@dataclass
class _RcRead:
    """One client read fanned to every data center, resolved at a
    majority of *distinct* replies with the freshest version."""

    table: str
    key: str
    future: Future
    targets: Tuple[str, ...]
    needed: int
    replies: Dict[str, ReadReply] = field(default_factory=dict)
    retries: int = 0


@dataclass
class _RcTx:
    txid: str
    updates: Tuple[Tuple[RecordId, Update], ...]
    future: Future
    started_at: float
    votes: Dict[str, bool] = field(default_factory=dict)
    decision: Optional[bool] = None
    root: Optional[object] = None


class ReplicatedCommitClient(Node):
    """The app-server client: cross-DC Paxos proposer + majority reads."""

    #: read retry budget — bounded so a read issued into a partition that
    #: never fully heals still terminates (with the freshest reply seen).
    MAX_READ_RETRIES = 10

    def __init__(
        self,
        transport: Transport,
        node_id: str,
        dc: str,
        placement: ReplicaMap,
        config: MDCCConfig,
        counters: Optional[CounterSet] = None,
    ) -> None:
        super().__init__(transport, node_id, dc)
        self.placement = placement
        self.config = config
        self.counters = trace_runtime.scoped_counters(
            node_id, counters if counters is not None else CounterSet()
        )
        self.tracer = trace_runtime.current_tracer()
        self._transactions: Dict[str, _RcTx] = {}
        self._txid_seq = itertools.count(1)
        self._read_seq = itertools.count(1)
        self._reads: Dict[int, _RcRead] = {}
        #: one wide-area round out and back, same budget 2PC gives its
        #: all-replica prepare round.
        self.vote_timeout_ms = 4 * config.learn_timeout_ms
        self.read_retry_ms = 2 * config.learn_timeout_ms

    # ------------------------------------------------------------------
    # Reads: majority of data centers (or one pinned replica)
    # ------------------------------------------------------------------
    def read(self, table: str, key: str, dc: Optional[str] = None) -> Future:
        record = RecordId(table, key)
        request_id = next(self._read_seq)
        if dc is not None:
            targets: Tuple[str, ...] = (self.placement.replica_in(record, dc),)
            needed = 1
        else:
            targets = tuple(
                self.placement.replica_in(record, d)
                for d in self.placement.datacenters
            )
            needed = self.placement.quorums().classic_size
        read = _RcRead(
            table=table,
            key=key,
            future=self.future(),
            targets=targets,
            needed=needed,
        )
        self._reads[request_id] = read
        request = ReadRequest(table=table, key=key, request_id=request_id)
        self.broadcast(read.targets, request)
        self.counters.increment("repcommit.majority_reads")
        self.set_timer(self.read_retry_ms, self._read_retry, request_id)
        return read.future

    def handle_read_reply(self, message: ReadReply, src_id: str) -> None:
        read = self._reads.get(message.request_id)
        if read is None:
            return
        read.replies[src_id] = message
        if len(read.replies) < read.needed:
            return
        del self._reads[message.request_id]
        self._settle_read(read)

    def _settle_read(self, read: _RcRead) -> None:
        # "Reading a majority of storage nodes to determine the latest
        # stable version": the freshest reply wins.
        freshest = max(read.replies.values(), key=lambda r: r.version)
        read.future.resolve(freshest)

    def _read_retry(self, request_id: int) -> None:
        read = self._reads.get(request_id)
        if read is None:
            return
        read.retries += 1
        if read.retries > self.MAX_READ_RETRIES:
            del self._reads[request_id]
            if read.replies:
                self._settle_read(read)
            else:
                read.future.resolve(
                    ReadReply(
                        request_id=request_id,
                        table=read.table,
                        key=read.key,
                        exists=False,
                        value=None,
                        version=0,
                        is_fast_era=False,
                        master_hint="",
                    )
                )
            self.counters.increment("repcommit.read_retries_exhausted")
            return
        # Re-ask everyone we have not heard from (drops are silent).
        pending = [t for t in read.targets if t not in read.replies]
        request = ReadRequest(table=read.table, key=read.key, request_id=request_id)
        self.broadcast(pending, request)
        self.counters.increment("repcommit.read_retries")
        self.set_timer(self.read_retry_ms, self._read_retry, request_id)

    # ------------------------------------------------------------------
    # Commit: propose to every DC, tally votes to a classic majority
    # ------------------------------------------------------------------
    def commit(self, writeset: WriteSet, txid: Optional[str] = None) -> Future:
        txid = txid or f"{self.node_id}-tx{next(self._txid_seq)}"
        future = self.future()
        if not writeset:
            future.resolve(
                TransactionOutcome(
                    txid=txid,
                    committed=True,
                    started_at=self.now,
                    decided_at=self.now,
                    statuses={},
                    fast_path=False,
                )
            )
            return future
        tx = _RcTx(
            txid=txid,
            updates=tuple(writeset.updates.items()),
            future=future,
            started_at=self.now,
        )
        self._transactions[txid] = tx
        if self.tracer.enabled:
            tx.root = self.tracer.start_trace(
                txid, self.node_id, self.now, records=len(tx.updates)
            )
            previous = trace_runtime.set_context(tx.root.ctx)
            try:
                self._propose(tx)
            finally:
                trace_runtime.reset_context(previous)
        else:
            self._propose(tx)
        self.set_timer(self.vote_timeout_ms, self._vote_timeout, txid)
        self.counters.increment("coordinator.transactions")
        return future

    def _propose(self, tx: _RcTx) -> None:
        request = RcCommitRequest(
            txid=tx.txid, updates=tx.updates, reply_to=self.node_id
        )
        for dc in self.placement.datacenters:
            self.send(self._dc_coordinator(dc), request)

    def _dc_coordinator(self, dc: str) -> str:
        # The DC's partition-0 storage node doubles as its 2PC coordinator.
        return self.placement.storage_node_id(dc, 0)

    def handle_rc_vote(self, message: RcVote, src_id: str) -> None:
        tx = self._transactions.get(message.txid)
        if tx is None or tx.decision is not None or message.dc in tx.votes:
            return
        tx.votes[message.dc] = message.accept
        majority = self.placement.quorums().classic_size
        total = len(self.placement.datacenters)
        yes = sum(1 for accept in tx.votes.values() if accept)
        outstanding = total - len(tx.votes)
        if yes >= majority:
            self._decide(tx, commit=True, reason="committed")
        elif yes + outstanding < majority:
            self._decide(tx, commit=False, reason="minority")

    def _vote_timeout(self, txid: str) -> None:
        tx = self._transactions.get(txid)
        if tx is not None and tx.decision is None:
            # Unlike 2PC the proposer is not blocked by a straggler DC —
            # but without a majority of votes it can only abort.
            self.counters.increment("coordinator.vote_timeouts")
            self._decide(tx, commit=False, reason="vote-timeout")

    def _decide(self, tx: _RcTx, commit: bool, reason: str) -> None:
        tx.decision = commit
        decision = RcDecision(txid=tx.txid, commit=commit, updates=tx.updates)
        targets = [self._dc_coordinator(dc) for dc in self.placement.datacenters]
        if tx.root is not None:
            previous = trace_runtime.set_context(tx.root.ctx)
            try:
                self.broadcast(targets, decision)
            finally:
                trace_runtime.reset_context(previous)
            tx.root.finish(self.now, "committed" if commit else reason)
        else:
            self.broadcast(targets, decision)
        outcome = TransactionOutcome(
            txid=tx.txid,
            committed=commit,
            started_at=tx.started_at,
            decided_at=self.now,
            statuses={
                str(record): (
                    OptionStatus.ACCEPTED if commit else OptionStatus.REJECTED
                )
                for record, _ in tx.updates
            },
            fast_path=False,
        )
        self.counters.increment(
            "coordinator.commits" if commit else "coordinator.aborts"
        )
        del self._transactions[tx.txid]
        tx.future.resolve(outcome)
