"""Baseline replica-management protocols from the paper's evaluation (§5.2).

* :mod:`repro.protocols.twopc` — two-phase commit: prepare/commit rounds to
  **all** replicas, a blocking coordinator, lock-based conflict detection.
* :mod:`repro.protocols.quorumwrites` — the quorum-writes protocol of
  eventually consistent stores (QW-3 / QW-4): no isolation, no atomicity.
* :mod:`repro.protocols.megastore` — Megastore*: one entity group whose
  commit log is replicated with master-based Multi-Paxos, one transaction
  at a time, improved with Paxos-CP-style combination of non-conflicting
  transactions into one log position.

All three run above the same storage substrate and simulated WAN as MDCC,
and expose the same client API (``read`` / ``commit``), mirroring the
paper's methodology.
"""

__all__ = []
