"""The quorum-writes protocol (§5.2, "QW").

"The quorum writes protocol (QW) is the standard for most eventually
consistent systems and is implemented by simply sending all updates to all
involved storage nodes then waiting for responses from quorum nodes ...
It is important to note that the quorum writes protocol provides no
isolation, atomicity, or transactional guarantees."

Writes are timestamped and resolved last-writer-wins; deltas apply
unconditionally (no constraints — violating the stock invariant is
*expected* for this baseline, and the consistency checkers demonstrate
it).  Reads use a read-quorum of 1: the local replica.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from repro.core.config import MDCCConfig
from repro.core.coordinator import TransactionOutcome, WriteSet
from repro.core.messages import ReadReply, ReadRequest
from repro.core.options import (
    CommutativeUpdate,
    OptionStatus,
    PhysicalUpdate,
    RecordId,
    Update,
)
from repro.core.topology import ReplicaMap
from repro.metrics import CounterSet
from repro.transport.base import Future, Node, Transport
from repro.storage.store import RecordStore

__all__ = ["QuorumWriteClient", "QuorumWriteStorageNode"]


@dataclass(frozen=True, slots=True)
class QWWrite:
    txid: str
    record: RecordId
    update: Update
    timestamp: float
    writer: str


@dataclass(frozen=True, slots=True)
class QWAck:
    txid: str
    record: RecordId


class QuorumWriteStorageNode(Node):
    """An eventually-consistent replica: apply-on-receipt, LWW registers."""

    def __init__(
        self,
        transport: Transport,
        node_id: str,
        dc: str,
        placement: ReplicaMap,
        config: MDCCConfig,
        counters: Optional[CounterSet] = None,
    ) -> None:
        super().__init__(transport, node_id, dc)
        self.placement = placement
        self.config = config
        self.counters = counters if counters is not None else CounterSet()
        self.store = RecordStore()
        #: record -> (timestamp, writer) of the last applied full write.
        self._lww: Dict[RecordId, Tuple[float, str]] = {}
        self._applied: Set[str] = set()

    def handle_qw_write(self, message: QWWrite, src_id: str) -> None:
        apply_key = f"{message.txid}:{message.record}"
        if apply_key not in self._applied:
            self._applied.add(apply_key)
            self._apply(message)
        self.counters.increment("qw.writes")
        self.send(src_id, QWAck(txid=message.txid, record=message.record))

    def _apply(self, message: QWWrite) -> None:
        record = self.store.record(message.record.table, message.record.key)
        update = message.update
        if isinstance(update, PhysicalUpdate):
            stamp = (message.timestamp, message.writer)
            current = self._lww.get(message.record)
            if current is not None and current >= stamp:
                return  # an older write loses (last-writer-wins)
            self._lww[message.record] = stamp
            if update.is_delete:
                record.commit_delete()
            else:
                record.commit_value(update.new_value)
        else:
            assert isinstance(update, CommutativeUpdate)
            if not record.exists:
                record.commit_value({})
            for attribute, delta in update.deltas:
                record.commit_delta(attribute, delta)

    def handle_read_request(self, message: ReadRequest, src_id: str) -> None:
        snapshot = self.store.read(message.table, message.key)
        self.counters.increment("qw.reads")
        self.send(
            src_id,
            ReadReply(
                request_id=message.request_id,
                table=message.table,
                key=message.key,
                exists=snapshot.exists,
                value=snapshot.value,
                version=snapshot.version,
                is_fast_era=True,
                master_hint="",
            ),
        )


@dataclass
class _QWTx:
    txid: str
    future: Future
    started_at: float
    needed: Dict[RecordId, int] = field(default_factory=dict)
    acks: Dict[RecordId, Set[str]] = field(default_factory=dict)
    finished: bool = False


class QuorumWriteClient(Node):
    """The QW-k client: broadcast writes, wait for k acks per record."""

    def __init__(
        self,
        transport: Transport,
        node_id: str,
        dc: str,
        placement: ReplicaMap,
        config: MDCCConfig,
        counters: Optional[CounterSet] = None,
        write_quorum: int = 3,
    ) -> None:
        super().__init__(transport, node_id, dc)
        if not 1 <= write_quorum <= placement.replication:
            raise ValueError(f"write quorum {write_quorum} out of range")
        self.placement = placement
        self.config = config
        self.counters = counters if counters is not None else CounterSet()
        self.write_quorum = write_quorum
        self._transactions: Dict[str, _QWTx] = {}
        self._txid_seq = itertools.count(1)
        self._read_seq = itertools.count(1)
        self._pending_reads: Dict[int, Future] = {}

    # ------------------------------------------------------------------
    # Reads: read-quorum of 1 (local replica)
    # ------------------------------------------------------------------
    def read(self, table: str, key: str, dc: Optional[str] = None) -> Future:
        request_id = next(self._read_seq)
        future = self.future()
        self._pending_reads[request_id] = future
        record = RecordId(table, key)
        replica = self.placement.replica_in(record, dc or self.dc)
        self.send(replica, ReadRequest(table=table, key=key, request_id=request_id))
        return future

    def handle_read_reply(self, message: ReadReply, src_id: str) -> None:
        future = self._pending_reads.pop(message.request_id, None)
        if future is not None:
            future.try_resolve(message)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def commit(self, writeset: WriteSet, txid: Optional[str] = None) -> Future:
        txid = txid or f"{self.node_id}-tx{next(self._txid_seq)}"
        future = self.future()
        if not writeset:
            future.resolve(
                TransactionOutcome(
                    txid=txid,
                    committed=True,
                    started_at=self.now,
                    decided_at=self.now,
                    statuses={},
                    fast_path=True,
                )
            )
            return future
        tx = _QWTx(txid=txid, future=future, started_at=self.now)
        self._transactions[txid] = tx
        for record, update in writeset.updates.items():
            tx.needed[record] = self.write_quorum
            tx.acks[record] = set()
            message = QWWrite(
                txid=txid,
                record=record,
                update=update,
                timestamp=self.now,
                writer=self.node_id,
            )
            self.broadcast(self.placement.replicas(record), message)
        self.counters.increment("coordinator.transactions")
        return future

    def handle_qw_ack(self, message: QWAck, src_id: str) -> None:
        tx = self._transactions.get(message.txid)
        if tx is None or tx.finished:
            return
        tx.acks.setdefault(message.record, set()).add(src_id)
        if all(
            len(tx.acks.get(record, ())) >= needed
            for record, needed in tx.needed.items()
        ):
            tx.finished = True
            outcome = TransactionOutcome(
                txid=tx.txid,
                committed=True,  # QW never aborts: no guarantees to violate
                started_at=tx.started_at,
                decided_at=self.now,
                statuses={
                    str(record): OptionStatus.ACCEPTED for record in tx.needed
                },
                fast_path=True,
            )
            self.counters.increment("coordinator.commits")
            del self._transactions[tx.txid]
            tx.future.resolve(outcome)
