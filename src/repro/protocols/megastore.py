"""Megastore* — the paper's simulation of Megastore's replication (§5.2).

The paper could not run Megastore itself and instead simulated its
protocol "as a special configuration of our system":

* all data lives in **one entity group** whose commit log is replicated
  across the five data centers;
* a single **master** orders transactions: every commit occupies a log
  position agreed via master-based (Multi-)Paxos, one position at a time —
  "Megastore only allows that one write transaction is executed at any
  time (all other competing transactions will abort)";
* improved with Paxos-CP [20]: non-conflicting transactions may share /
  immediately follow a log position instead of aborting — we batch
  compatible queued transactions into one position;
* read consistency relaxed to read-committed, and — "playing in favor of
  Megastore*" — all clients and the master are placed in one data center
  (US-West), so every transaction commits with a single round trip from
  the master.

The serialization through one log is what produces the paper's queueing
collapse (17.8 s median at 100 clients, Figure 3): each position costs a
master-to-quorum round trip, and positions are strictly sequential.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.config import MDCCConfig
from repro.core.coordinator import TransactionOutcome, WriteSet
from repro.core.messages import ReadReply, ReadRequest
from repro.core.options import (
    CommutativeUpdate,
    OptionStatus,
    PhysicalUpdate,
    RecordId,
    Update,
)
from repro.core.topology import ReplicaMap
from repro.metrics import CounterSet
from repro.transport.base import Future, Node, Transport
from repro.storage.store import RecordStore

__all__ = ["MegastoreClient", "MegastoreStorageNode", "MASTER_DC"]

#: The paper places all Megastore* masters (and clients) in US-West.
MASTER_DC = "us-west"

#: How many non-conflicting transactions may share one log position
#: (the Paxos-CP improvement).  1 = unmodified Megastore serialization.
DEFAULT_BATCH = 4


# ----------------------------------------------------------------------
# Messages
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class MsCommitRequest:
    txid: str
    updates: Tuple[Tuple[RecordId, Update], ...]
    reply_to: str


@dataclass(frozen=True, slots=True)
class MsCommitResult:
    txid: str
    committed: bool


@dataclass(frozen=True, slots=True)
class MsLogAppend:
    position: int
    entries: Tuple[Tuple[str, Tuple[Tuple[RecordId, Update], ...]], ...]


@dataclass(frozen=True, slots=True)
class MsLogAck:
    position: int


@dataclass
class _PendingTx:
    txid: str
    updates: Tuple[Tuple[RecordId, Update], ...]
    reply_to: str


class MegastoreStorageNode(Node):
    """A Megastore* replica: applies the entity group's log in order.

    The replica in :data:`MASTER_DC` additionally runs the master role:
    it owns the log-position counter, validates transactions against the
    committed state, batches compatible ones (Paxos-CP), and replicates
    each position to a classic quorum before acknowledging commits.
    """

    def __init__(
        self,
        transport: Transport,
        node_id: str,
        dc: str,
        placement: ReplicaMap,
        config: MDCCConfig,
        counters: Optional[CounterSet] = None,
        batch_size: int = DEFAULT_BATCH,
    ) -> None:
        super().__init__(transport, node_id, dc)
        self.placement = placement
        self.config = config
        self.counters = counters if counters is not None else CounterSet()
        self.store = RecordStore()
        self.batch_size = batch_size
        # Replica state: the log and the next position to apply.
        self._log: Dict[int, MsLogAppend] = {}
        self._applied_through = -1
        # Master state (only used on the MASTER_DC replica).
        self._queue: List[_PendingTx] = []
        self._next_position = 0
        self._inflight: Optional[Tuple[int, List[_PendingTx]]] = None
        self._acks: Set[str] = set()

    # ------------------------------------------------------------------
    # Master: enqueue, validate, batch, replicate
    # ------------------------------------------------------------------
    @property
    def is_master(self) -> bool:
        return self.dc == MASTER_DC

    def handle_ms_commit_request(self, message: MsCommitRequest, src_id: str) -> None:
        if not self.is_master:
            # Forward to the master replica of the entity group.
            master = self.placement.storage_node_id(MASTER_DC, 0)
            self.send(master, message)
            return
        self._queue.append(
            _PendingTx(
                txid=message.txid, updates=message.updates, reply_to=message.reply_to
            )
        )
        self._pump()

    def _pump(self) -> None:
        if self._inflight is not None or not self._queue:
            return
        batch: List[_PendingTx] = []
        touched: Set[RecordId] = set()
        remaining: List[_PendingTx] = []
        for pending in self._queue:
            if len(batch) >= self.batch_size:
                remaining.append(pending)
                continue
            records = {record for record, _ in pending.updates}
            if records & touched:
                # Conflicts with the batch: waits for a subsequent position
                # (the Paxos-CP improvement; plain Megastore would abort it).
                remaining.append(pending)
                continue
            if not self._validate(pending):
                self.send(
                    pending.reply_to,
                    MsCommitResult(txid=pending.txid, committed=False),
                )
                self.counters.increment("megastore.validation_aborts")
                continue
            batch.append(pending)
            touched |= records
        self._queue = remaining
        if not batch:
            if self._queue:
                # Everything left conflicted or aborted; try again.
                self.set_timer(0.0, self._pump)
            return
        position = self._next_position
        self._next_position += 1
        self._inflight = (position, batch)
        self._acks = set()
        message = MsLogAppend(
            position=position,
            entries=tuple((tx.txid, tx.updates) for tx in batch),
        )
        self.broadcast(
            [
                self.placement.storage_node_id(dc, 0)
                for dc in self.placement.datacenters
            ],
            message,
        )
        self.counters.increment("megastore.positions")

    def _validate(self, pending: _PendingTx) -> bool:
        """Write-write conflict check against the master's committed state."""
        for record, update in pending.updates:
            if isinstance(update, PhysicalUpdate):
                snapshot = self.store.read(record.table, record.key)
                if update.vread != snapshot.version:
                    return False
                if not update.is_delete and not self.store.schema(
                    record.table
                ).check_value(update.new_value):
                    return False
            else:
                assert isinstance(update, CommutativeUpdate)
                snapshot = self.store.read(record.table, record.key)
                if not snapshot.exists:
                    return False
                schema = self.store.schema(record.table)
                for attribute, delta in update.deltas:
                    constraint = schema.constraint(attribute)
                    if constraint is None:
                        continue
                    current = snapshot.attribute(attribute, 0)
                    if not isinstance(current, (int, float)) or not constraint.allows(
                        current + delta
                    ):
                        return False
        return True

    def handle_ms_log_ack(self, message: MsLogAck, src_id: str) -> None:
        if self._inflight is None or self._inflight[0] != message.position:
            return
        self._acks.add(src_id)
        quorum = self.placement.quorums().classic_size
        if len(self._acks) >= quorum:
            position, batch = self._inflight
            self._inflight = None
            for tx in batch:
                self.send(tx.reply_to, MsCommitResult(txid=tx.txid, committed=True))
            self.counters.increment("megastore.committed_batches")
            self._pump()

    # ------------------------------------------------------------------
    # Replica: ordered log application
    # ------------------------------------------------------------------
    def handle_ms_log_append(self, message: MsLogAppend, src_id: str) -> None:
        self._log[message.position] = message
        self._drain_log()
        self.send(src_id, MsLogAck(position=message.position))

    def _drain_log(self) -> None:
        while self._applied_through + 1 in self._log:
            entry = self._log[self._applied_through + 1]
            for _txid, updates in entry.entries:
                for record, update in updates:
                    self._apply(record, update)
            self._applied_through += 1

    def _apply(self, record: RecordId, update: Update) -> None:
        stored = self.store.record(record.table, record.key)
        if isinstance(update, PhysicalUpdate):
            if update.is_delete:
                stored.commit_delete()
            else:
                stored.commit_value(update.new_value)
        else:
            for attribute, delta in update.deltas:
                stored.commit_delta(attribute, delta)

    # ------------------------------------------------------------------
    # Reads (read-committed, local replica — relaxed as in the paper)
    # ------------------------------------------------------------------
    def handle_read_request(self, message: ReadRequest, src_id: str) -> None:
        snapshot = self.store.read(message.table, message.key)
        self.counters.increment("megastore.reads")
        self.send(
            src_id,
            ReadReply(
                request_id=message.request_id,
                table=message.table,
                key=message.key,
                exists=snapshot.exists,
                value=snapshot.value,
                version=snapshot.version,
                is_fast_era=False,
                master_hint=self.placement.storage_node_id(MASTER_DC, 0),
            ),
        )


class MegastoreClient(Node):
    """A Megastore* app server (placed in US-West by the evaluation)."""

    def __init__(
        self,
        transport: Transport,
        node_id: str,
        dc: str,
        placement: ReplicaMap,
        config: MDCCConfig,
        counters: Optional[CounterSet] = None,
    ) -> None:
        super().__init__(transport, node_id, dc)
        self.placement = placement
        self.config = config
        self.counters = counters if counters is not None else CounterSet()
        self._txid_seq = itertools.count(1)
        self._read_seq = itertools.count(1)
        self._pending_reads: Dict[int, Future] = {}
        self._pending_commits: Dict[str, Tuple[Future, float, Tuple[RecordId, ...]]] = {}

    def read(self, table: str, key: str, dc: Optional[str] = None) -> Future:
        request_id = next(self._read_seq)
        future = self.future()
        self._pending_reads[request_id] = future
        record = RecordId(table, key)
        replica = self.placement.replica_in(record, dc or self.dc)
        self.send(replica, ReadRequest(table=table, key=key, request_id=request_id))
        return future

    def handle_read_reply(self, message: ReadReply, src_id: str) -> None:
        future = self._pending_reads.pop(message.request_id, None)
        if future is not None:
            future.try_resolve(message)

    def commit(self, writeset: WriteSet, txid: Optional[str] = None) -> Future:
        txid = txid or f"{self.node_id}-tx{next(self._txid_seq)}"
        future = self.future()
        if not writeset:
            future.resolve(
                TransactionOutcome(
                    txid=txid,
                    committed=True,
                    started_at=self.now,
                    decided_at=self.now,
                    statuses={},
                    fast_path=False,
                )
            )
            return future
        updates = tuple(sorted(writeset.updates.items()))
        self._pending_commits[txid] = (future, self.now, tuple(writeset.records()))
        master = self.placement.storage_node_id(MASTER_DC, 0)
        self.send(
            master,
            MsCommitRequest(txid=txid, updates=updates, reply_to=self.node_id),
        )
        self.counters.increment("coordinator.transactions")
        return future

    def handle_ms_commit_result(self, message: MsCommitResult, src_id: str) -> None:
        entry = self._pending_commits.pop(message.txid, None)
        if entry is None:
            return
        future, started_at, records = entry
        status = OptionStatus.ACCEPTED if message.committed else OptionStatus.REJECTED
        outcome = TransactionOutcome(
            txid=message.txid,
            committed=message.committed,
            started_at=started_at,
            decided_at=self.now,
            statuses={str(record): status for record in sorted(records)},
            fast_path=False,
        )
        self.counters.increment(
            "coordinator.commits" if message.committed else "coordinator.aborts"
        )
        future.resolve(outcome)
