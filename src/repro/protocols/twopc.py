"""Two-phase commit over replicated storage (§5.2, "2PC").

"2PC operates in two phases.  In the first phase, a transaction manager
tries to prepare all involved storage nodes to commit the updates.  If all
relevant nodes prepare successfully, then in the second phase the
transaction manager sends a commit to all storage nodes involved;
otherwise it sends an abort.  Note, that 2PC requires all involved storage
nodes to respond and is not resilient to single node failures."

Concretely: prepare acquires a per-record lock and validates the read
version at **every** replica; the decision round releases locks and applies
the update.  The coordinator waits for *all* replicas in both rounds — two
full wide-area round trips to the farthest data center, which is exactly
the latency disadvantage Figure 3/5 shows.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from repro.core.config import MDCCConfig
from repro.core.coordinator import TransactionOutcome, WriteSet
from repro.core.demarcation import DemarcationLimits, escrow_accepts
from repro.core.messages import ReadReply, ReadRequest
from repro.core.options import (
    CommutativeUpdate,
    OptionStatus,
    PhysicalUpdate,
    ReadValidation,
    RecordId,
    Update,
)
from repro.core.topology import ReplicaMap
from repro.metrics import CounterSet
from repro.transport.base import Future, Node, Transport
from repro.storage.store import RecordStore
from repro.storage.wal import WriteAheadLog

__all__ = ["TwoPCCoordinator", "TwoPCStorageNode"]


# ----------------------------------------------------------------------
# Messages
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class PrepareRequest:
    txid: str
    record: RecordId
    update: Update


@dataclass(frozen=True, slots=True)
class PrepareReply:
    txid: str
    record: RecordId
    ok: bool


@dataclass(frozen=True, slots=True)
class DecisionMessage:
    txid: str
    record: RecordId
    update: Update
    commit: bool


@dataclass(frozen=True, slots=True)
class DecisionAck:
    txid: str
    record: RecordId


class TwoPCStorageNode(Node):
    """A 2PC participant replica: lock table + versioned store."""

    def __init__(
        self,
        transport: Transport,
        node_id: str,
        dc: str,
        placement: ReplicaMap,
        config: MDCCConfig,
        counters: Optional[CounterSet] = None,
    ) -> None:
        super().__init__(transport, node_id, dc)
        self.placement = placement
        self.config = config
        self.counters = counters if counters is not None else CounterSet()
        self.store = RecordStore()
        self.wal = WriteAheadLog()
        #: record -> (txid, update) currently prepared (locked).
        self._locks: Dict[RecordId, Tuple[str, Update]] = {}
        #: decisions already applied, for idempotence.
        self._decided: Set[Tuple[str, str]] = set()

    # ------------------------------------------------------------------
    # Phase 1: prepare (lock + validate)
    # ------------------------------------------------------------------
    def handle_prepare_request(self, message: PrepareRequest, src_id: str) -> None:
        ok = self._try_prepare(message.txid, message.record, message.update)
        self.wal.append("2pc-prepare", txid=message.txid, ok=ok)
        self.counters.increment("twopc.prepares")
        self.send(src_id, PrepareReply(txid=message.txid, record=message.record, ok=ok))

    def _try_prepare(self, txid: str, record: RecordId, update: Update) -> bool:
        if (txid, str(record)) in self._decided:
            # The decision overtook this prepare in flight (links reorder).
            # Locking now would leak the lock forever: nothing is coming to
            # release it.
            return False
        held = self._locks.get(record)
        if held is not None and held[0] != txid:
            return False  # lock conflict
        snapshot = self.store.read(record.table, record.key)
        if isinstance(update, ReadValidation):
            # OCC read-set check (§4.4): version still current.  Takes the
            # lock like any prepare — a read lock held until the decision.
            if update.vread != snapshot.version:
                return False
        elif isinstance(update, PhysicalUpdate):
            if update.vread != snapshot.version:
                return False
            if not update.is_delete:
                schema = self.store.schema(record.table)
                if not schema.check_value(update.new_value):
                    return False
        else:
            assert isinstance(update, CommutativeUpdate)
            if not snapshot.exists:
                return False
            schema = self.store.schema(record.table)
            for attribute, delta in update.deltas:
                constraint = schema.constraint(attribute)
                if constraint is None:
                    continue
                current = snapshot.attribute(attribute, 0)
                if not isinstance(current, (int, float)):
                    return False
                limits = DemarcationLimits(
                    lower=constraint.minimum, upper=constraint.maximum
                )
                # All replicas must prepare, so plain escrow suffices.
                if not escrow_accepts(float(current), [], delta, limits):
                    return False
        self._locks[record] = (txid, update)
        return True

    # ------------------------------------------------------------------
    # Phase 2: decision
    # ------------------------------------------------------------------
    def handle_decision_message(self, message: DecisionMessage, src_id: str) -> None:
        key = (message.txid, str(message.record))
        if key not in self._decided:
            self._decided.add(key)
            held = self._locks.get(message.record)
            if held is not None and held[0] == message.txid:
                del self._locks[message.record]
            if message.commit:
                self._apply(message.record, message.update)
            self.wal.append(
                "2pc-decision", txid=message.txid, commit=message.commit
            )
            self.counters.increment(
                "twopc.commits" if message.commit else "twopc.aborts"
            )
        self.send(src_id, DecisionAck(txid=message.txid, record=message.record))

    def _apply(self, record: RecordId, update: Update) -> None:
        stored = self.store.record(record.table, record.key)
        if isinstance(update, ReadValidation):
            return  # asserted state; nothing to apply
        if isinstance(update, PhysicalUpdate):
            if update.is_delete:
                stored.commit_delete()
            elif stored.current_version == update.vread:
                stored.commit_value(update.new_value)
            # A stale apply (already superseded) is dropped silently: the
            # coordinator serialized decisions through the locks.
        else:
            for attribute, delta in update.deltas:
                stored.commit_delta(attribute, delta)

    # ------------------------------------------------------------------
    # Reads (same message vocabulary as MDCC)
    # ------------------------------------------------------------------
    def handle_read_request(self, message: ReadRequest, src_id: str) -> None:
        snapshot = self.store.read(message.table, message.key)
        self.counters.increment("twopc.reads")
        self.send(
            src_id,
            ReadReply(
                request_id=message.request_id,
                table=message.table,
                key=message.key,
                exists=snapshot.exists,
                value=snapshot.value,
                version=snapshot.version,
                is_fast_era=False,
                master_hint="",
            ),
        )


@dataclass
class _TwoPCTx:
    txid: str
    updates: Dict[RecordId, Update]
    future: Future
    started_at: float
    prepare_replies: Dict[Tuple[RecordId, str], bool] = field(default_factory=dict)
    decision: Optional[bool] = None
    acks: Set[Tuple[RecordId, str]] = field(default_factory=set)
    finished: bool = False


class TwoPCCoordinator(Node):
    """The client-side transaction manager for 2PC."""

    def __init__(
        self,
        transport: Transport,
        node_id: str,
        dc: str,
        placement: ReplicaMap,
        config: MDCCConfig,
        counters: Optional[CounterSet] = None,
    ) -> None:
        super().__init__(transport, node_id, dc)
        self.placement = placement
        self.config = config
        self.counters = counters if counters is not None else CounterSet()
        self._transactions: Dict[str, _TwoPCTx] = {}
        self._txid_seq = itertools.count(1)
        self._read_seq = itertools.count(1)
        self._pending_reads: Dict[int, Future] = {}
        self.prepare_timeout_ms = 4 * config.learn_timeout_ms

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def read(self, table: str, key: str, dc: Optional[str] = None) -> Future:
        request_id = next(self._read_seq)
        future = self.future()
        self._pending_reads[request_id] = future
        record = RecordId(table, key)
        replica = self.placement.replica_in(record, dc or self.dc)
        self.send(replica, ReadRequest(table=table, key=key, request_id=request_id))
        return future

    def handle_read_reply(self, message: ReadReply, src_id: str) -> None:
        future = self._pending_reads.pop(message.request_id, None)
        if future is not None:
            future.try_resolve(message)

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------
    def commit(self, writeset: WriteSet, txid: Optional[str] = None) -> Future:
        txid = txid or f"{self.node_id}-tx{next(self._txid_seq)}"
        future = self.future()
        if not writeset:
            future.resolve(
                TransactionOutcome(
                    txid=txid,
                    committed=True,
                    started_at=self.now,
                    decided_at=self.now,
                    statuses={},
                    fast_path=False,
                )
            )
            return future
        tx = _TwoPCTx(
            txid=txid,
            updates=writeset.updates,
            future=future,
            started_at=self.now,
        )
        self._transactions[txid] = tx
        for record, update in tx.updates.items():
            request = PrepareRequest(txid=txid, record=record, update=update)
            self.broadcast(self.placement.replicas(record), request)
        self.set_timer(self.prepare_timeout_ms, self._prepare_timeout, txid)
        self.counters.increment("coordinator.transactions")
        return future

    def handle_prepare_reply(self, message: PrepareReply, src_id: str) -> None:
        tx = self._transactions.get(message.txid)
        if tx is None or tx.decision is not None:
            return
        tx.prepare_replies[(message.record, src_id)] = message.ok
        if not message.ok:
            self._decide(tx, commit=False)
            return
        expected = len(tx.updates) * self.placement.replication
        if len(tx.prepare_replies) == expected and all(tx.prepare_replies.values()):
            self._decide(tx, commit=True)

    def _prepare_timeout(self, txid: str) -> None:
        tx = self._transactions.get(txid)
        if tx is not None and tx.decision is None:
            # A participant is unreachable: 2PC can only abort (and even
            # that needs the participant back to release its lock — the
            # protocol's well-known blocking weakness).
            self._decide(tx, commit=False)
            self.counters.increment("coordinator.prepare_timeouts")

    def _decide(self, tx: _TwoPCTx, commit: bool) -> None:
        tx.decision = commit
        for record, update in tx.updates.items():
            message = DecisionMessage(
                txid=tx.txid, record=record, update=update, commit=commit
            )
            self.broadcast(self.placement.replicas(record), message)
        if not commit:
            # Aborts resolve immediately: the client's answer is final and
            # lock release needs no acknowledgment round.
            self._finish(tx)

    def handle_decision_ack(self, message: DecisionAck, src_id: str) -> None:
        tx = self._transactions.get(message.txid)
        if tx is None or tx.finished:
            return
        tx.acks.add((message.record, src_id))
        expected = len(tx.updates) * self.placement.replication
        if len(tx.acks) == expected:
            self._finish(tx)

    def _finish(self, tx: _TwoPCTx) -> None:
        tx.finished = True
        outcome = TransactionOutcome(
            txid=tx.txid,
            committed=bool(tx.decision),
            started_at=tx.started_at,
            decided_at=self.now,
            statuses={
                str(record): (
                    OptionStatus.ACCEPTED if tx.decision else OptionStatus.REJECTED
                )
                for record in tx.updates
            },
            fast_path=False,
        )
        self.counters.increment(
            "coordinator.commits" if tx.decision else "coordinator.aborts"
        )
        del self._transactions[tx.txid]
        tx.future.resolve(outcome)
