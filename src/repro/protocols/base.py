"""The protocol abstraction layer: one contract for every protocol.

The paper's evaluation (§5.2) compares five replica-management designs —
the MDCC engine in three configurations, and the 2PC / quorum-writes /
Megastore* baselines — "implemented ... using the same distributed store,
and accessed by the same clients".  This module is that comparison
surface as code: a :class:`Protocol` descriptor names each protocol's

* **role factories** — how to build its app-server client and its
  storage-node replica over any :class:`~repro.transport.base.Transport`;
* **capability flags** — which cluster features it can run (adaptive
  placement, elastic membership, causal tracing, serializable reads,
  commutative updates, §3.2.3 recovery, the TCP backend, anti-entropy
  repair);
* **vocabulary** — its conflict/abort reasons and causal trace span
  kinds, and which named chaos schedules its guarantees are gated on.

Everything that used to special-case protocol names — cluster wiring,
spec validation, the bench harness, the chaos controller, CLI choices —
asks the registry instead.  Adding a protocol means registering one
descriptor here; no other layer grows an ``if protocol ==`` branch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Tuple

from repro.core.config import MDCCConfig, ProtocolVariant

if TYPE_CHECKING:  # typing only: the registry must stay import-cheap
    from repro.core.topology import ReplicaMap
    from repro.metrics import CounterSet
    from repro.transport.base import Transport

__all__ = [
    "PROTOCOLS",
    "Protocol",
    "get_protocol",
    "protocols_supporting",
    "register_protocol",
]

#: Capability-flag names :func:`protocols_supporting` accepts (also the
#: columns of the README capability matrix).
CAPABILITY_FLAGS = (
    "supports_placement",
    "supports_elastic",
    "supports_tracing",
    "supports_serializable",
    "supports_commutative",
    "supports_recovery",
    "supports_tcp",
    "supports_antientropy",
)

#: Factory signature shared by both roles: positional (transport,
#: node_id, dc), keyword placement/config/counters.
RoleFactory = Callable[..., object]


@dataclass(frozen=True)
class Protocol:
    """One replica-management protocol as a first-class descriptor.

    Attributes:
        name: the CLI/spec identifier (``"mdcc"``, ``"2pc"``, ...).
        summary: one line for ``repro compare`` output and docs.
        variant: the :class:`ProtocolVariant` configuring the MDCC engine,
            or ``None`` for protocols with their own state machines.
        client_factory / storage_factory: build the app-server and
            storage-node roles (lazy imports keep the registry cheap).
        supports_placement: adaptive mastership migration can run.
        supports_elastic: runtime DC join/leave (epoch-fenced quorums).
        supports_tracing: the roles emit causal trace spans.
        supports_serializable: §4.4 read-set validation at commit.
        supports_commutative: commutative (delta) updates with escrow.
        supports_recovery: §3.2.3 recovery agents can finish its dangling
            transactions (gates the coordinator-crash chaos fault).
        supports_tcp: the roles run over ``AsyncioTcpTransport``.
        supports_antientropy: replicas answer ``RepairProbe``/``CatchUp``
            so background sweeps converge them after a fault.
        single_entity_group: all data shares one partition (Megastore*).
        preferred_client_dc: pin clients to one DC when unset (the paper
            places Megastore* clients with its master in US-West).
        chaos_schedules: named fault schedules this protocol's guarantees
            are gated on in the chaos matrix.
        trace_span_kinds: the span vocabulary its roles emit.
        abort_reasons: the conflict/abort vocabulary its commit path can
            decide (empty for protocols that never abort).
    """

    name: str
    summary: str
    variant: Optional[ProtocolVariant] = None
    client_factory: Optional[RoleFactory] = field(default=None, repr=False)
    storage_factory: Optional[RoleFactory] = field(default=None, repr=False)
    supports_placement: bool = False
    supports_elastic: bool = False
    supports_tracing: bool = False
    supports_serializable: bool = False
    supports_commutative: bool = False
    supports_recovery: bool = False
    supports_tcp: bool = False
    supports_antientropy: bool = False
    single_entity_group: bool = False
    preferred_client_dc: Optional[str] = None
    chaos_schedules: Tuple[str, ...] = ()
    trace_span_kinds: Tuple[str, ...] = ()
    abort_reasons: Tuple[str, ...] = ()

    # ------------------------------------------------------------------
    # Role construction (the commit-lifecycle entry points)
    # ------------------------------------------------------------------
    def make_client(
        self,
        transport: Transport,
        node_id: str,
        dc: str,
        *,
        placement: ReplicaMap,
        config: MDCCConfig,
        counters: CounterSet,
    ) -> object:
        """Build this protocol's app-server node (``read``/``commit``)."""
        if self.client_factory is None:
            raise ValueError(f"protocol {self.name!r} has no client factory")
        return self.client_factory(
            transport, node_id, dc,
            placement=placement, config=config, counters=counters,
        )

    def make_storage_node(
        self,
        transport: Transport,
        node_id: str,
        dc: str,
        *,
        placement: ReplicaMap,
        config: MDCCConfig,
        counters: CounterSet,
    ) -> object:
        """Build this protocol's storage-node replica."""
        if self.storage_factory is None:
            raise ValueError(f"protocol {self.name!r} has no storage factory")
        return self.storage_factory(
            transport, node_id, dc,
            placement=placement, config=config, counters=counters,
        )

    # ------------------------------------------------------------------
    # Quorum/engine configuration
    # ------------------------------------------------------------------
    def make_config(self, replication: int, **tunables: Any) -> Optional[MDCCConfig]:
        """The :class:`MDCCConfig` a spec's tunables describe.

        ``None`` for protocols that do not parameterize the MDCC engine —
        their clusters run on :meth:`default_config` and the γ/batching
        knobs have nothing to configure.
        """
        if self.variant is None:
            return None
        return MDCCConfig(replication=replication, variant=self.variant, **tunables)

    def default_config(self, replication: int) -> MDCCConfig:
        """The config a cluster of this protocol runs when none is given.

        Protocols outside the MDCC engine still share its timeout/quorum
        parameters (``learn_timeout_ms``, :attr:`MDCCConfig.quorums`), so
        they get a neutral default-variant config.
        """
        return MDCCConfig(
            replication=replication,
            variant=self.variant if self.variant is not None else ProtocolVariant.MDCC,
        )


# ----------------------------------------------------------------------
# Role factories (lazy imports: the registry must not pull every
# protocol module — or the trace/placement machinery — at import time)
# ----------------------------------------------------------------------
def _mdcc_client(
    transport: Transport,
    node_id: str,
    dc: str,
    *,
    placement: ReplicaMap,
    config: MDCCConfig,
    counters: CounterSet,
) -> object:
    from repro.core.coordinator import MDCCCoordinator

    return MDCCCoordinator(
        transport, node_id, dc,
        placement=placement, config=config, counters=counters,
    )


def _mdcc_storage(
    transport: Transport,
    node_id: str,
    dc: str,
    *,
    placement: ReplicaMap,
    config: MDCCConfig,
    counters: CounterSet,
) -> object:
    from repro.core.storage_node import MDCCStorageNode

    return MDCCStorageNode(
        transport, node_id, dc,
        placement=placement, config=config, counters=counters,
    )


def _twopc_client(
    transport: Transport,
    node_id: str,
    dc: str,
    *,
    placement: ReplicaMap,
    config: MDCCConfig,
    counters: CounterSet,
) -> object:
    from repro.protocols.twopc import TwoPCCoordinator

    return TwoPCCoordinator(
        transport, node_id, dc,
        placement=placement, config=config, counters=counters,
    )


def _twopc_storage(
    transport: Transport,
    node_id: str,
    dc: str,
    *,
    placement: ReplicaMap,
    config: MDCCConfig,
    counters: CounterSet,
) -> object:
    from repro.protocols.twopc import TwoPCStorageNode

    return TwoPCStorageNode(
        transport, node_id, dc,
        placement=placement, config=config, counters=counters,
    )


def _qw_client(write_quorum: int) -> RoleFactory:
    def make(
        transport: Transport,
        node_id: str,
        dc: str,
        *,
        placement: ReplicaMap,
        config: MDCCConfig,
        counters: CounterSet,
    ) -> object:
        from repro.protocols.quorumwrites import QuorumWriteClient

        return QuorumWriteClient(
            transport, node_id, dc,
            placement=placement, config=config, counters=counters,
            write_quorum=write_quorum,
        )

    return make


def _qw_storage(
    transport: Transport,
    node_id: str,
    dc: str,
    *,
    placement: ReplicaMap,
    config: MDCCConfig,
    counters: CounterSet,
) -> object:
    from repro.protocols.quorumwrites import QuorumWriteStorageNode

    return QuorumWriteStorageNode(
        transport, node_id, dc,
        placement=placement, config=config, counters=counters,
    )


def _megastore_client(
    transport: Transport,
    node_id: str,
    dc: str,
    *,
    placement: ReplicaMap,
    config: MDCCConfig,
    counters: CounterSet,
) -> object:
    from repro.protocols.megastore import MegastoreClient

    return MegastoreClient(
        transport, node_id, dc,
        placement=placement, config=config, counters=counters,
    )


def _megastore_storage(
    transport: Transport,
    node_id: str,
    dc: str,
    *,
    placement: ReplicaMap,
    config: MDCCConfig,
    counters: CounterSet,
) -> object:
    from repro.protocols.megastore import MegastoreStorageNode

    return MegastoreStorageNode(
        transport, node_id, dc,
        placement=placement, config=config, counters=counters,
    )


def _repcommit_client(
    transport: Transport,
    node_id: str,
    dc: str,
    *,
    placement: ReplicaMap,
    config: MDCCConfig,
    counters: CounterSet,
) -> object:
    from repro.protocols.replicatedcommit import ReplicatedCommitClient

    return ReplicatedCommitClient(
        transport, node_id, dc,
        placement=placement, config=config, counters=counters,
    )


def _repcommit_storage(
    transport: Transport,
    node_id: str,
    dc: str,
    *,
    placement: ReplicaMap,
    config: MDCCConfig,
    counters: CounterSet,
) -> object:
    from repro.protocols.replicatedcommit import ReplicatedCommitStorageNode

    return ReplicatedCommitStorageNode(
        transport, node_id, dc,
        placement=placement, config=config, counters=counters,
    )


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Protocol] = {}


def register_protocol(protocol: Protocol) -> Protocol:
    """Add one descriptor to the registry (rejects duplicate names)."""
    if protocol.name in _REGISTRY:
        raise ValueError(f"protocol {protocol.name!r} already registered")
    _REGISTRY[protocol.name] = protocol
    return protocol


def get_protocol(name: str) -> Protocol:
    """The descriptor for ``name``; raises the canonical unknown error."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown protocol {name!r}; choose from {PROTOCOLS}"
        ) from None


def protocols_supporting(flag: str) -> Tuple[str, ...]:
    """Protocol names with capability ``flag``, in registry order."""
    if flag not in CAPABILITY_FLAGS:
        raise ValueError(
            f"unknown capability flag {flag!r}; choose from {CAPABILITY_FLAGS}"
        )
    return tuple(
        name for name, proto in _REGISTRY.items() if getattr(proto, flag)
    )


_ALL_SCHEDULES = (
    "dc-outage",
    "rolling-partitions",
    "flaky-wan",
    "coordinator-crash",
    "follow-the-sun-outage",
    "dc-replace",
)

#: Network-level fault schedules: no protocol-specific recovery or
#: membership machinery required to survive them.
_NETWORK_SCHEDULES = ("dc-outage", "rolling-partitions", "flaky-wan")

_MDCC_SPANS = (
    "fast-accept",
    "phase1-takeover",
    "phase2-drive",
    "visibility-fanout",
    "recovery-escalation",
    "demarcation-check",
)

_MDCC_ABORTS = ("option-rejected", "demarcation-limit", "collision-recovery")


def _register_mdcc(name: str, variant: ProtocolVariant, summary: str) -> None:
    register_protocol(
        Protocol(
            name=name,
            summary=summary,
            variant=variant,
            client_factory=_mdcc_client,
            storage_factory=_mdcc_storage,
            supports_placement=True,
            supports_elastic=True,
            supports_tracing=True,
            supports_serializable=True,
            supports_commutative=True,
            supports_recovery=True,
            supports_tcp=True,
            supports_antientropy=True,
            chaos_schedules=_ALL_SCHEDULES,
            trace_span_kinds=_MDCC_SPANS,
            abort_reasons=_MDCC_ABORTS,
        )
    )


_register_mdcc(
    "mdcc",
    ProtocolVariant.MDCC,
    "the full protocol: fast ballots + commutative options (§3)",
)
_register_mdcc(
    "fast",
    ProtocolVariant.FAST,
    "fast ballots, physical (non-commutative) updates only (§5.3.1)",
)
_register_mdcc(
    "multi",
    ProtocolVariant.MULTI,
    "classic master-routed ballots, Multi-Paxos-style (§5.3.1)",
)

register_protocol(
    Protocol(
        name="repcommit",
        summary="Replicated Commit: Paxos across DCs over per-DC 2PC "
        "(Patterson et al.), majority reads",
        client_factory=_repcommit_client,
        storage_factory=_repcommit_storage,
        supports_tracing=True,
        supports_serializable=True,
        supports_tcp=True,
        supports_antientropy=True,
        chaos_schedules=_NETWORK_SCHEDULES,
        trace_span_kinds=("rc-local-prepare", "rc-paxos-vote", "rc-commit-apply"),
        abort_reasons=(
            "lock-conflict",
            "stale-read",
            "constraint",
            "escrow-limit",
            "decided",
            "minority",
            "vote-timeout",
        ),
    )
)

register_protocol(
    Protocol(
        name="2pc",
        summary="two-phase commit: two rounds to ALL replicas, blocking "
        "coordinator (§5.2)",
        client_factory=_twopc_client,
        storage_factory=_twopc_storage,
        supports_serializable=True,
        abort_reasons=(
            "lock-conflict",
            "stale-read",
            "constraint",
            "escrow-limit",
            "decided",
            "prepare-timeout",
        ),
    )
)

for _qw_name, _quorum in (("qw3", 3), ("qw4", 4)):
    register_protocol(
        Protocol(
            name=_qw_name,
            summary=f"quorum writes (W={_quorum}): eventually consistent "
            "LWW, never aborts (§5.2)",
            client_factory=_qw_client(_quorum),
            storage_factory=_qw_storage,
        )
    )

register_protocol(
    Protocol(
        name="megastore",
        summary="Megastore*: one entity group, master-serialized log "
        "positions, Paxos-CP batching (§5.2)",
        client_factory=_megastore_client,
        storage_factory=_megastore_storage,
        single_entity_group=True,
        preferred_client_dc="us-west",
        abort_reasons=("log-position-conflict",),
    )
)

#: Registry order: the MDCC engine variants, then Replicated Commit, then
#: the §5.2 baselines — the order CLI choices and docs present them in.
PROTOCOLS: Tuple[str, ...] = tuple(_REGISTRY)
