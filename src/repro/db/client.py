"""The DB library's transaction API.

"All higher-level functionality (such as query processing and transaction
management) is provided through a stateless DB library, which can be
deployed at the application server" (§2).  :class:`Transaction` is that
library's programming model: buffered reads and writes against one
app-server node, committed through whatever protocol the node implements.

The same API drives every protocol in the evaluation; only the hosting
node's ``read``/``commit`` implementations differ.  This mirrors the
paper's methodology — all baselines are "implemented ... using the same
distributed store, and accessed by the same clients" (§5.2).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.coordinator import WriteSet
from repro.core.options import RecordId
from repro.transport.base import Future

__all__ = ["Transaction"]


class Transaction:
    """One transaction: read-version tracking + buffered write-set.

    Reads record the version they saw; writes are guarded by it (v_read →
    v_write, §3.2.1).  ``decrement``/``increment`` become commutative
    updates when the protocol supports them, else version-guarded physical
    read-modify-writes — this is exactly the difference between the
    evaluation's MDCC and Fast configurations (§5.3.1).
    """

    def __init__(self, client, commutative: bool, serializable: bool = False) -> None:
        self._client = client
        self._commutative = commutative
        #: whether deltas are proposed commutatively (read-only, public).
        self.commutative = commutative
        #: whether commit validates the read-set (§4.4 serializability).
        self.serializable = serializable
        self._writeset = WriteSet()
        self._read_versions: Dict[RecordId, int] = {}
        self._read_values: Dict[RecordId, Optional[Dict[str, object]]] = {}
        self._committed: Optional[Future] = None

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def read(self, table: str, key: str) -> Future:
        """Read committed state; resolves with the reply (value/version).

        The observed version is cached to guard subsequent writes.
        """
        future = self._client.read(table, key)
        record = RecordId(table, key)

        def remember(fut: Future) -> None:
            reply = fut.result()
            self._read_versions[record] = reply.version
            self._read_values[record] = dict(reply.value) if reply.value else None

        future.add_done_callback(remember)
        return future

    def observed_version(self, table: str, key: str) -> int:
        """The version this transaction read for (table, key); 0 if unread."""
        return self._read_versions.get(RecordId(table, key), 0)

    def observed_value(self, table: str, key: str) -> Optional[Dict[str, object]]:
        return self._read_values.get(RecordId(table, key))

    # ------------------------------------------------------------------
    # Writes (buffered)
    # ------------------------------------------------------------------
    def write(self, table: str, key: str, value: Dict[str, object]) -> None:
        """Full-record write, guarded by the read version (insert if unread
        and the record was observed absent)."""
        self._writeset.put(table, key, self.observed_version(table, key), value)

    def insert(self, table: str, key: str, value: Dict[str, object]) -> None:
        """Blind insert: succeeds only if the record does not exist."""
        self._writeset.put(table, key, 0, value)

    def delete(self, table: str, key: str) -> None:
        self._writeset.delete(table, key, self.observed_version(table, key))

    def update_attr(self, table: str, key: str, attribute: str, delta: float) -> None:
        """Add ``delta`` to a numeric attribute.

        Commutative protocols propose the delta itself; others fall back to
        a version-guarded physical read-modify-write using the transaction's
        cached read (which must exist in that case).
        """
        if self._commutative:
            self._writeset.add_delta(table, key, **{attribute: delta})
            return
        record = RecordId(table, key)
        if record not in self._read_values:
            raise ValueError(
                f"non-commutative update of {record} requires a prior read"
            )
        value = dict(self._read_values[record] or {})
        current = value.get(attribute, 0)
        if not isinstance(current, (int, float)):
            raise ValueError(f"attribute {attribute!r} is not numeric")
        value[attribute] = current + delta
        self._writeset.put(table, key, self._read_versions[record], value)

    def decrement(self, table: str, key: str, attribute: str, amount: float) -> None:
        self.update_attr(table, key, attribute, -amount)

    def increment(self, table: str, key: str, attribute: str, amount: float) -> None:
        self.update_attr(table, key, attribute, amount)

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------
    @property
    def writeset(self) -> WriteSet:
        return self._writeset

    def commit(self, txid: Optional[str] = None) -> Future:
        """Run the host protocol's commit; resolves with a
        :class:`~repro.core.coordinator.TransactionOutcome`.

        In serializable mode every record this transaction read — and did
        not write — is added to the proposal as a read validation: the
        commit succeeds only if those reads are still current (§4.4).
        Commutative deltas are blind writes and are not read-validated;
        use a physical write where the read value must still hold.
        """
        if self._committed is not None:
            raise RuntimeError("transaction already committed")
        if self.serializable:
            written = set(self._writeset.updates)
            for record, vread in self._read_versions.items():
                if record not in written:
                    self._writeset.validate_read(record.table, record.key, vread)
        self._committed = self._client.commit(self._writeset, txid)
        return self._committed
