"""Read strategies (§4.2, "Staleness & Monotonicity").

"Reads can be done from any storage node and are guaranteed to return only
committed data.  However, by just reading from a single node, the read
might be stale. ... Reading the latest value requires reading a majority
of storage nodes to determine the latest stable version, making it an
expensive operation."

Three point strategies:

* **local** — one round trip inside the client's data center; may be stale.
  This is the default everywhere (what the evaluation uses).
* **quorum** — fan a read to a classic quorum of data centers and return
  the highest-versioned reply: up-to-date, at wide-area cost.
* **pseudo-master** — read the replica in the record's master data center,
  which observes every classic round for the record (§4.2's
  pseudo-master scheme, simplified to a single designated node).

Plus the session guarantees §4.2 sketches ("the same strategy can
guarantee monotonic reads such as repeatable reads or read your writes"):
:class:`ReadSession` remembers the highest version it has returned (and
the versions the session's own commits produced) per record, answers from
the cheap local replica when that is fresh enough, and escalates to a
quorum read only when the local replica would violate the guarantee.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.messages import ReadReply
from repro.core.options import RecordId
from repro.transport.base import Future

__all__ = ["ReadSession", "local_read", "pseudo_master_read", "quorum_read"]


def local_read(client, table: str, key: str) -> Future:
    """Default strategy: the replica in the client's own data center."""
    return client.read(table, key)


def quorum_read(client, table: str, key: str) -> Future:
    """Read a classic quorum of data centers; resolve with the freshest.

    The resolved value is the reply with the highest committed version —
    "reading a majority of storage nodes to determine the latest stable
    version".
    """
    placement = client.placement
    spec = placement.quorums()
    datacenters = _nearest_first(client, placement.datacenters)
    targets = datacenters[: spec.classic_size]
    replies: List[ReadReply] = []
    result = client.future()

    def on_reply(fut: Future) -> None:
        if result.done:
            return
        replies.append(fut.result())
        if len(replies) >= spec.classic_size:
            freshest = max(replies, key=lambda r: r.version)
            result.resolve(freshest)

    for dc in targets:
        client.read(table, key, dc=dc).add_done_callback(on_reply)
    return result


def pseudo_master_read(client, table: str, key: str) -> Future:
    """Read the replica in the record's master data center."""
    record = RecordId(table, key)
    master_dc = client.placement.master_dc(record)
    return client.read(table, key, dc=master_dc)


def _nearest_first(client, datacenters) -> List[str]:
    """Order data centers by network distance from the client (self first)."""
    rtt = client.transport.base_rtt
    return sorted(datacenters, key=lambda dc: rtt(client.dc, dc))


class ReadSession:
    """Monotonic-read / read-your-writes session guarantees (§4.2).

    Wraps one app-server client.  Every read remembers the version it
    returned; every commit observed through :meth:`note_commit` remembers
    the versions this session wrote.  A later read first tries the local
    replica; if the local reply is older than the session's floor for that
    record, the session escalates to a quorum read — "requiring only the
    local storage node to always participate" is the cheap case, the
    quorum the fallback.

    Guarantees (per session, per record):

    * **monotonic reads** — a read never returns an older version than a
      previous read;
    * **read your writes** — after ``note_commit`` the session never reads
      a version older than its own write.

    Cross-session ordering is unchanged (that is the protocol's job).
    """

    def __init__(self, client) -> None:
        self._client = client
        self._floor: Dict[RecordId, int] = {}

    def floor(self, table: str, key: str) -> int:
        """The minimum version the session may return for (table, key)."""
        return self._floor.get(RecordId(table, key), 0)

    def observe(self, table: str, key: str, version: int) -> None:
        """Raise the session floor to a version seen out of band (e.g. a
        quorum read done outside the session)."""
        record = RecordId(table, key)
        self._floor[record] = max(self._floor.get(record, 0), version)

    def note_commit(self, outcome, writeset) -> None:
        """Record the session's own committed writes (read-your-writes).

        The exact committed version is not in the outcome (versions are
        assigned at the storage nodes); bumping the floor past the read
        version is enough: any replica that has applied the write reports
        a strictly higher version.
        """
        if not outcome.committed:
            return
        for record, update in writeset.updates.items():
            vread = getattr(update, "vread", None)
            if vread is not None:
                self._floor[record] = max(self._floor.get(record, 0), vread + 1)

    def read(
        self,
        table: str,
        key: str,
        retry_delay_ms: float = 100.0,
        max_retries: int = 50,
    ) -> Future:
        """A session read: local when fresh enough, quorum otherwise.

        Right after a commit even a quorum read can trail the session's
        floor — visibilities are asynchronous — so the escalation retries
        (bounded) until a fresh-enough version appears.  The bound only
        guards against a wedged simulation; in a live system the write's
        visibility always lands.
        """
        record = RecordId(table, key)
        result = self._client.future()
        needed = self._floor.get(record, 0)

        def settle(reply: ReadReply) -> None:
            self._floor[record] = max(self._floor.get(record, 0), reply.version)
            result.resolve(reply)

        def quorum_attempt(attempt: int) -> None:
            def on_quorum(qfut: Future) -> None:
                reply = qfut.result()
                if reply.version >= needed or attempt >= max_retries:
                    settle(reply)
                    return
                self._client.set_timer(
                    retry_delay_ms, quorum_attempt, attempt + 1
                )

            quorum_read(self._client, table, key).add_done_callback(on_quorum)

        def on_local(fut: Future) -> None:
            reply = fut.result()
            if reply.version >= needed:
                settle(reply)
                return
            # Local replica is behind this session: escalate to a quorum.
            quorum_attempt(0)

        local_read(self._client, table, key).add_done_callback(on_local)
        return result
