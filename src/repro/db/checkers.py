"""Post-simulation consistency auditors.

The paper's guarantees (§4) are claims about *observable history*: atomic
durability, no lost updates, read-committed visibility, and value
constraints that hold despite quorum replication.  These checkers verify
them mechanically against a finished simulation:

* :func:`check_replica_convergence` — after the network drains, every
  replica of every record holds the same committed value.
* :func:`check_constraints` — no replica's committed state violates a
  schema constraint (the demarcation guarantee; expected to FAIL for the
  quorum-writes baseline, which promises nothing).
* :class:`UpdateLedger` — records the updates of *committed* transactions
  and checks the final database equals initial-state + committed-effects:
  catches both lost updates and phantom (uncommitted-but-visible) writes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.options import RecordId

__all__ = [
    "ConstraintViolation",
    "Divergence",
    "UpdateLedger",
    "check_constraints",
    "check_replica_convergence",
]


@dataclass(frozen=True)
class Divergence:
    record: RecordId
    values: Dict[str, object]  # node id -> committed value (or None)


@dataclass(frozen=True)
class ConstraintViolation:
    record: RecordId
    node_id: str
    attribute: str
    value: float
    bound: str


def check_replica_convergence(cluster, table: str, keys) -> List[Divergence]:
    """Replicas that disagree on a record's committed value."""
    divergences = []
    for key in keys:
        record = RecordId(table, key)
        snapshots = cluster.committed_snapshots(table, key)
        values = {
            node_id: (tuple(sorted(s.value.items())) if s.exists else None)
            for node_id, s in snapshots.items()
        }
        if len(set(values.values())) > 1:
            divergences.append(
                Divergence(
                    record=record,
                    values={n: snapshots[n].value for n in snapshots},
                )
            )
    return divergences


def check_constraints(cluster, table: str, keys) -> List[ConstraintViolation]:
    """Committed values that violate the table's declared constraints."""
    violations = []
    schema = next(iter(cluster.storage_nodes.values())).store.schema(table)
    for key in keys:
        record = RecordId(table, key)
        for node_id, snapshot in cluster.committed_snapshots(table, key).items():
            if not snapshot.exists:
                continue
            for attribute, constraint in schema.constraints.items():
                value = snapshot.value.get(attribute)
                if not isinstance(value, (int, float)):
                    continue
                if constraint.minimum is not None and value < constraint.minimum:
                    violations.append(
                        ConstraintViolation(record, node_id, attribute, value, "min")
                    )
                if constraint.maximum is not None and value > constraint.maximum:
                    violations.append(
                        ConstraintViolation(record, node_id, attribute, value, "max")
                    )
    return violations


@dataclass
class _LedgerEntry:
    initial: float
    committed_delta: float = 0.0
    last_write: Optional[float] = None  # absolute value set by physical write


class UpdateLedger:
    """Tracks committed effects on numeric attributes to detect lost updates.

    Workloads call :meth:`record_delta` / :meth:`record_write` for each
    transaction the protocol reported as committed; :meth:`audit` then
    compares the implied final value with what the replicas actually hold.
    """

    def __init__(self) -> None:
        self._entries: Dict[Tuple[str, str, str], _LedgerEntry] = {}

    def track(self, table: str, key: str, attribute: str, initial: float) -> None:
        self._entries[(table, key, attribute)] = _LedgerEntry(initial=float(initial))

    def record_delta(self, table: str, key: str, attribute: str, delta: float) -> None:
        entry = self._entries.get((table, key, attribute))
        if entry is None:
            raise KeyError(f"untracked attribute {(table, key, attribute)}")
        entry.committed_delta += delta

    def record_write(self, table: str, key: str, attribute: str, value: float) -> None:
        """An absolute (physical) committed write resets the expectation."""
        entry = self._entries.get((table, key, attribute))
        if entry is None:
            raise KeyError(f"untracked attribute {(table, key, attribute)}")
        entry.last_write = float(value)
        entry.committed_delta = 0.0

    def expected(self, table: str, key: str, attribute: str) -> float:
        entry = self._entries[(table, key, attribute)]
        base = entry.last_write if entry.last_write is not None else entry.initial
        return base + entry.committed_delta

    def audit(self, cluster) -> List[str]:
        """Mismatches between expected and actual committed values."""
        problems = []
        for (table, key, attribute), entry in sorted(self._entries.items()):
            expected = self.expected(table, key, attribute)
            for node_id, snapshot in cluster.committed_snapshots(table, key).items():
                actual = snapshot.attribute(attribute) if snapshot.exists else None
                if actual != expected:
                    problems.append(
                        f"{table}/{key}.{attribute} @ {node_id}: "
                        f"expected {expected}, found {actual}"
                    )
        return problems
