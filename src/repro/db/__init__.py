"""Cluster assembly and the stateless DB library (client side).

* :mod:`repro.db.cluster` — builds a five-data-center deployment of any
  protocol under test (MDCC variants, 2PC, quorum writes, Megastore*).
* :mod:`repro.db.client` — the transaction API used by workloads: read /
  write / delete / delta, then commit.
* :mod:`repro.db.reads` — read strategies of §4.2: local (default), quorum
  (latest), pseudo-master.
* :mod:`repro.db.checkers` — post-simulation consistency auditors.
"""

from repro.db.client import Transaction
from repro.db.cluster import Cluster, build_cluster

__all__ = ["Cluster", "Transaction", "build_cluster"]
