"""Cluster builder: a five-data-center deployment of any protocol.

Builds the simulation substrate (network + storage nodes + app servers)
for the protocol under test and pre-loads tables, mirroring the paper's
setup (§5.1): every data center holds a full replica, tables are
partitioned across storage nodes within a data center, and clients are
app-server nodes in a chosen data center.

Which protocols exist, how their roles are built, and what features they
can run all come from the :mod:`repro.protocols.base` registry — this
module asks the :class:`~repro.protocols.base.Protocol` descriptor and
never branches on a protocol name.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence

from repro.core.config import MDCCConfig
from repro.core.options import RecordId
from repro.core.recovery import RecoveryAgent
from repro.core.topology import ReplicaMap
from repro.db.client import Transaction
from repro.metrics import CounterSet
from repro.protocols.base import PROTOCOLS, get_protocol, protocols_supporting
from repro.sim.core import Simulator
from repro.sim.network import EC2_REGIONS, LatencyModel, Network
from repro.sim.rng import RngRegistry
from repro.trace.runtime import instrument_sim_transport
from repro.transport.base import Transport
from repro.transport.simnet import SimTransport
from repro.storage.schema import TableSchema

__all__ = ["Cluster", "build_cluster", "PROTOCOLS"]


class Cluster:
    """A running deployment: substrate + storage nodes + app servers."""

    def __init__(
        self,
        protocol: str,
        transport: Transport,
        placement: ReplicaMap,
        config: MDCCConfig,
        counters: CounterSet,
        rng: RngRegistry,
    ) -> None:
        self.protocol = protocol
        #: the registry descriptor: role factories + capability flags.
        self.descriptor = get_protocol(protocol)
        self.transport = transport
        # Simulator-backed deployments expose the substrate for drivers
        # (sim.run_until, fault injection); None over other backends.
        self.sim = getattr(transport, "sim", None)
        self.network = getattr(transport, "network", None)
        self.placement = placement
        self.config = config
        self.counters = counters
        self.rng = rng
        self.storage_nodes: Dict[str, object] = {}
        self.clients: List[object] = []
        self._client_seq = itertools.count(1)
        self._schemas: List[TableSchema] = []
        #: the adaptive-placement control plane (None under static policies).
        self.placement_manager = None
        #: elastic-membership state (None unless built with elastic=True).
        self.membership = None
        self.reconfig = None

    # ------------------------------------------------------------------
    # Tables and data
    # ------------------------------------------------------------------
    def register_table(self, schema: TableSchema) -> None:
        """Register ``schema`` on every storage node."""
        self._schemas.append(schema)
        for node in self.storage_nodes.values():
            node.store.register_table(schema)

    def load_record(self, table: str, key: str, value: Dict[str, object]) -> None:
        """Pre-load a committed record (version 1) on all replicas."""
        record = RecordId(table, key)
        for node_id in self.placement.replicas(record):
            node = self.storage_nodes[node_id]
            node.store.record(table, key).commit_value(value)

    def read_committed(self, table: str, key: str, dc: Optional[str] = None):
        """Directly inspect a replica's committed snapshot (no messages)."""
        record = RecordId(table, key)
        dc = dc or self.placement.datacenters[0]
        node = self.storage_nodes[self.placement.replica_in(record, dc)]
        return node.store.read(table, key)

    def committed_snapshots(self, table: str, key: str):
        """The committed snapshot at every replica (for convergence checks)."""
        record = RecordId(table, key)
        return {
            node_id: self.storage_nodes[node_id].store.read(table, key)
            for node_id in self.placement.replicas(record)
        }

    # ------------------------------------------------------------------
    # Clients
    # ------------------------------------------------------------------
    def add_client(self, dc: str, name: Optional[str] = None):
        """Create an app-server node in ``dc`` speaking this protocol."""
        node_id = name or f"app-{dc}-{next(self._client_seq)}"
        client = self._make_client(node_id, dc)
        self.clients.append(client)
        return client

    def _make_client(self, node_id: str, dc: str):
        return self.descriptor.make_client(
            self.transport,
            node_id,
            dc,
            placement=self.placement,
            config=self.config,
            counters=self.counters,
        )

    def add_recovery_agent(self, dc: str, name: Optional[str] = None) -> RecoveryAgent:
        node_id = name or f"recovery-{dc}-{next(self._client_seq)}"
        return RecoveryAgent(
            self.transport,
            node_id,
            dc,
            placement=self.placement,
            config=self.config,
            counters=self.counters,
        )

    def add_anti_entropy_agent(self, dc: str, name: Optional[str] = None):
        """A background replica-repair process (post-outage catch-up)."""
        from repro.core.antientropy import AntiEntropyAgent

        node_id = name or f"antientropy-{dc}-{next(self._client_seq)}"
        return AntiEntropyAgent(
            self.transport,
            node_id,
            dc,
            placement=self.placement,
            config=self.config,
            counters=self.counters,
        )

    def begin(self, client, serializable: bool = False) -> Transaction:
        """Start a transaction on ``client`` (an app-server node).

        ``serializable=True`` enables §4.4 read-set validation on commit —
        available on protocols whose storage nodes validate read versions
        (the ``supports_serializable`` capability); the eventually
        consistent and Megastore* baselines have no machinery for it.
        """
        if serializable and not self.descriptor.supports_serializable:
            raise ValueError(
                f"protocol {self.protocol!r} does not support serializable "
                "transactions"
            )
        commutative = (
            self.descriptor.supports_commutative and self.config.commutative_enabled
        )
        return Transaction(
            client, commutative=commutative, serializable=serializable
        )

    # ------------------------------------------------------------------
    # Elastic membership (storage-node lifecycle)
    # ------------------------------------------------------------------
    def add_datacenter_nodes(self, dc: str) -> List[str]:
        """Build and register ``dc``'s storage nodes at runtime (a join).

        The new nodes carry every registered table schema but no data —
        the reconfig manager's snapshot bootstrap fills them.  Elastic
        clusters only (``supports_elastic`` gates the build).
        """
        node_ids: List[str] = []
        for partition in range(self.placement.partitions_per_table):
            node_id = self.placement.storage_node_id(dc, partition)
            node = self.descriptor.make_storage_node(
                self.transport,
                node_id,
                dc,
                placement=self.placement,
                config=self.config,
                counters=self.counters,
            )
            for schema in self._schemas:
                node.store.register_table(schema)
            self.storage_nodes[node_id] = node
            node_ids.append(node_id)
        return node_ids

    def drop_datacenter_nodes(self, dc: str) -> List[str]:
        """Deregister and forget ``dc``'s storage nodes (a decommission)."""
        dropped: List[str] = []
        for node_id in sorted(self.storage_nodes):
            if self.storage_nodes[node_id].dc == dc:
                self.transport.deregister(node_id)
                del self.storage_nodes[node_id]
                dropped.append(node_id)
        return dropped

    # ------------------------------------------------------------------
    # Failure injection passthroughs
    # ------------------------------------------------------------------
    def fail_datacenter(self, dc: str) -> None:
        self.network.fail_datacenter(dc)

    def recover_datacenter(self, dc: str) -> None:
        self.network.recover_datacenter(dc)


def build_cluster(
    protocol: str = "mdcc",
    datacenters: Sequence[str] = EC2_REGIONS,
    partitions_per_table: int = 1,
    master_policy: str = "hash",
    table_master_dc: Optional[Dict[str, str]] = None,
    seed: int = 0,
    jitter_sigma: float = 0.06,
    config: Optional[MDCCConfig] = None,
    rtt_matrix=None,
    migration_policy=None,
    placement_scan_ms: float = 1_000.0,
    tracker_halflife_ms: float = 10_000.0,
    elastic: bool = False,
) -> Cluster:
    """Assemble a full deployment of ``protocol`` over ``datacenters``.

    ``master_policy="adaptive"`` additionally deploys a
    :class:`~repro.placement.manager.PlacementManager` that migrates
    per-record mastership toward the dominant write-origin data center
    (``migration_policy`` tunes its thresholds, ``placement_scan_ms`` its
    cadence, ``tracker_halflife_ms`` the write-origin decay).  Mastership
    migration runs over the MDCC master machinery, so it is limited to the
    MDCC variants.

    ``elastic=True`` attaches a
    :class:`~repro.reconfig.directory.MembershipDirectory` and deploys a
    :class:`~repro.reconfig.manager.ReconfigManager`
    (``cluster.reconfig``) so data centers can join or leave at runtime
    with epoch-fenced quorum resizing.  Like adaptive placement, elastic
    membership runs over the MDCC master machinery and is limited to the
    MDCC variants.  The reconfig control plane lives in the *first* data
    center — fault scenarios that kill that DC stall membership
    operations themselves (by design: the manager is an ordinary node,
    not an oracle), so schedules should pick their victims elsewhere.
    """
    descriptor = get_protocol(protocol)
    if descriptor.single_entity_group and partitions_per_table != 1:
        # The paper's Megastore* places all data in a single entity group
        # ("we placed all data into a single entity group", §5.2): one log.
        raise ValueError(f"{protocol} uses a single entity group: 1 partition")
    if master_policy == "adaptive" and not descriptor.supports_placement:
        supported = ", ".join(protocols_supporting("supports_placement"))
        raise ValueError(
            "adaptive master placement requires an MDCC variant "
            f"({supported}); got {protocol!r}"
        )
    if elastic and not descriptor.supports_elastic:
        supported = ", ".join(protocols_supporting("supports_elastic"))
        raise ValueError(
            "elastic membership requires an MDCC variant "
            f"({supported}); got {protocol!r}"
        )
    rng = RngRegistry(seed=seed)
    sim = Simulator()
    latency = LatencyModel(
        rtt_matrix=rtt_matrix, jitter_sigma=jitter_sigma, rng_registry=rng
    )
    network = Network(sim, latency_model=latency, rng_registry=rng)
    transport = SimTransport(sim, network)
    # No-op unless a tracer is ambient (repro.trace.runtime.install);
    # untraced runs keep the unwrapped network hot path.
    instrument_sim_transport(transport)
    membership = None
    if elastic:
        from repro.reconfig.directory import MembershipDirectory

        membership = MembershipDirectory(datacenters)
    placement = ReplicaMap(
        datacenters,
        partitions_per_table=partitions_per_table,
        master_policy=master_policy,
        table_master_dc=table_master_dc,
        tracker_halflife_ms=tracker_halflife_ms,
        membership=membership,
    )
    if config is None:
        config = descriptor.default_config(len(placement.datacenters))
    elif config.replication != len(placement.datacenters):
        raise ValueError(
            f"config.replication={config.replication} does not match "
            f"{len(placement.datacenters)} data centers"
        )
    counters = CounterSet()
    cluster = Cluster(
        protocol=protocol,
        transport=transport,
        placement=placement,
        config=config,
        counters=counters,
        rng=rng,
    )
    cluster.storage_nodes = _build_storage_nodes(cluster)
    if membership is not None:
        from repro.reconfig.manager import ReconfigManager

        cluster.membership = membership
        cluster.reconfig = ReconfigManager(
            transport,
            f"reconfig-{membership.active[0]}",
            membership.active[0],
            cluster=cluster,
            membership=membership,
            counters=counters,
        )
    if placement.is_adaptive:
        from repro.placement.manager import PlacementManager

        cluster.placement_manager = PlacementManager(
            transport,
            f"placement-{placement.datacenters[0]}",
            placement.datacenters[0],
            placement=placement,
            config=config,
            counters=counters,
            policy=migration_policy,
            scan_ms=placement_scan_ms,
        )
        cluster.placement_manager.start()
    return cluster


def _build_storage_nodes(cluster: Cluster) -> Dict[str, object]:
    nodes: Dict[str, object] = {}
    for dc in cluster.placement.datacenters:
        for partition in range(cluster.placement.partitions_per_table):
            node_id = cluster.placement.storage_node_id(dc, partition)
            nodes[node_id] = cluster.descriptor.make_storage_node(
                cluster.transport,
                node_id,
                dc,
                placement=cluster.placement,
                config=cluster.config,
                counters=cluster.counters,
            )
    return nodes
