"""The transport abstraction protocol roles are written against.

Every protocol participant — coordinator, storage node, recovery agent,
anti-entropy sweeper — is an actor that sends messages, sets timers and
resolves futures.  None of that is specific to the discrete-event
simulator: the same role code runs unchanged above

* :class:`repro.transport.simnet.SimTransport` — the deterministic
  in-process testbed wrapping :mod:`repro.sim`, and
* :class:`repro.transport.tcp.AsyncioTcpTransport` — one OS process per
  node, length-prefixed frames over real sockets.

This module defines the neutral pieces: :class:`Future` (one-shot
completion tokens), :class:`Transport` (the interface both backends
implement) and :class:`Node` (the actor base class with the
``handle_<TypeName>`` dispatch convention).  It must not import anything
from :mod:`repro.sim` — the simulator depends on this module, not the
other way around.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Optional

__all__ = [
    "Future",
    "Node",
    "Transport",
    "TransportError",
    "all_of",
    "any_of",
]


class TransportError(RuntimeError):
    """Raised for transport/kernel misuse (negative delays, double resolve,
    running a dead loop, ...).  :data:`repro.sim.core.SimulationError` is an
    alias of this class, so existing ``except SimulationError`` sites catch
    transport-layer failures too."""


class Future:
    """A one-shot completion token.

    Protocol components resolve futures when a quorum is reached, a
    transaction commits, etc.  Client processes ``yield`` them to suspend
    until resolution.  A future may also be *failed* with an exception, which
    re-raises inside a waiting process.

    Futures are transport-neutral: callbacks run synchronously on whatever
    thread/loop resolves them (the simulator's event loop or the asyncio
    loop — both single-threaded).
    """

    __slots__ = ("sim", "_value", "_exception", "_done", "_callbacks")

    def __init__(self, owner: object = None):
        #: the owning scheduler, kept for debugging; historically the
        #: Simulator (hence the slot name), now any Transport or None.
        self.sim = owner
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._done = False
        self._callbacks: list[Callable[["Future"], None]] = []

    @property
    def done(self) -> bool:
        return self._done

    def result(self) -> Any:
        """Return the resolved value; raise if failed or not yet done."""
        if not self._done:
            raise TransportError("Future.result() called before resolution")
        if self._exception is not None:
            raise self._exception
        return self._value

    def resolve(self, value: Any = None) -> None:
        """Complete the future successfully.  Resolving twice is an error."""
        if self._done:
            raise TransportError("Future already resolved")
        self._done = True
        self._value = value
        self._fire()

    def fail(self, exc: BaseException) -> None:
        """Complete the future with an exception."""
        if self._done:
            raise TransportError("Future already resolved")
        self._done = True
        self._exception = exc
        self._fire()

    def try_resolve(self, value: Any = None) -> bool:
        """Resolve if not yet done; return whether this call resolved it.

        Used where several code paths race to complete the same token (e.g.
        a quorum response and a timeout).
        """
        if self._done:
            return False
        self.resolve(value)
        return True

    def add_done_callback(self, fn: Callable[["Future"], None]) -> None:
        """Run ``fn(self)`` when resolved (immediately if already done)."""
        if self._done:
            fn(self)
        else:
            self._callbacks.append(fn)

    def _fire(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if not self._done:
            return "<Future pending>"
        if self._exception is not None:
            return f"<Future failed {self._exception!r}>"
        return f"<Future value={self._value!r}>"


def all_of(owner: object, futures: Iterable[Future]) -> Future:
    """Return a future resolving with a list of results once all resolve.

    If any input fails, the aggregate fails with the first exception (in
    resolution order).
    """
    futures = list(futures)
    aggregate = Future(owner)
    if not futures:
        aggregate.resolve([])
        return aggregate
    remaining = [len(futures)]

    def on_done(_fut: Future) -> None:
        if aggregate.done:
            return
        if _fut._exception is not None:
            aggregate.fail(_fut._exception)
            return
        remaining[0] -= 1
        if remaining[0] == 0:
            aggregate.resolve([f.result() for f in futures])

    for fut in futures:
        fut.add_done_callback(on_done)
    return aggregate


def any_of(owner: object, futures: Iterable[Future]) -> Future:
    """Return a future resolving with the first completed input's result."""
    futures = list(futures)
    if not futures:
        raise TransportError("any_of() requires at least one future")
    aggregate = Future(owner)

    def on_done(fut: Future) -> None:
        if aggregate.done:
            return
        if fut._exception is not None:
            aggregate.fail(fut._exception)
        else:
            aggregate.resolve(fut.result())

    for fut in futures:
        fut.add_done_callback(on_done)
    return aggregate


class Transport:
    """What a protocol role may ask of its substrate.

    Implementations provide a clock, cancellable timers, futures, message
    delivery and node lifecycle.  Time is a ``float`` in **milliseconds**
    everywhere — virtual under the simulator, wall-clock (monotonic) under
    TCP — so protocol timeouts keep their meaning across backends.
    """

    @property
    def now(self) -> float:
        """Current time in milliseconds."""
        raise NotImplementedError

    def schedule(self, delay_ms: float, callback: Callable, *args: Any):
        """Run ``callback(*args)`` after ``delay_ms``; returns a handle
        with a ``cancel()`` method."""
        raise NotImplementedError

    def future(self) -> Future:
        """A fresh :class:`Future` bound to this transport."""
        return Future(self)

    def send(self, src_id: str, dst_id: str, message: object) -> None:
        """Deliver ``message`` to ``dst_id``, fire and forget."""
        raise NotImplementedError

    def broadcast(self, src_id: str, dst_ids: Iterable[str], message: object) -> int:
        """Send the same message to several destinations; returns the count."""
        count = 0
        for dst_id in dst_ids:
            self.send(src_id, dst_id, message)
            count += 1
        return count

    def register(self, node: "Node") -> None:
        """Attach a local node; its ``node_id`` must be unique."""
        raise NotImplementedError

    def deregister(self, node_id: str) -> None:
        """Detach a local node (decommission)."""
        raise NotImplementedError

    def base_rtt(self, dc_a: str, dc_b: str) -> float:
        """Advisory round-trip estimate between two data centers (ms).

        Read strategies use it to order replicas nearest-first.  Backends
        without link knowledge may return a constant — ordering then
        degrades gracefully to the caller's input order.
        """
        return 0.0 if dc_a == dc_b else 1.0


class Node:
    """A protocol actor: unique id, home data center, message dispatch.

    Message dispatch convention: ``on_message`` looks up a handler method
    named ``handle_<TypeName>`` (snake-cased message class name) and calls
    it as ``handler(message, src_id)``.  Unhandled messages raise — silence
    hides protocol bugs.

    All interaction with the outside world goes through ``self.transport``;
    subclasses written against this base run identically above the
    simulator and the TCP backend.
    """

    def __init__(self, transport: Transport, node_id: str, dc: str) -> None:
        self.transport = transport
        self.node_id = node_id
        self.dc = dc
        self._handler_cache: Dict[type, Optional[Callable]] = {}
        transport.register(self)

    # ------------------------------------------------------------------
    # Clock and futures
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current transport time in milliseconds."""
        return self.transport.now

    def future(self) -> Future:
        return self.transport.future()

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send(self, dst_id: str, message: object) -> None:
        """Send a message over the transport (latency applies)."""
        self.transport.send(self.node_id, dst_id, message)

    def broadcast(self, dst_ids, message: object) -> int:
        """Send ``message`` to every destination in ``dst_ids``."""
        return self.transport.broadcast(self.node_id, dst_ids, message)

    def on_message(self, message: object, src_id: str) -> None:
        # Single dict probe on the hot path: the cache maps message class
        # to the *bound* handler, resolved once per (node, type).  A miss
        # (None from .get) covers both "never resolved" and "no handler";
        # the slow path tells them apart and raises on the latter.
        try:
            handler = self._handler_cache[message.__class__]
        except KeyError:
            handler = None
        if handler is None:
            handler = self._resolve_handler(type(message))
            if handler is None:
                raise NotImplementedError(
                    f"{type(self).__name__} {self.node_id!r} has no handler for "
                    f"{type(message).__name__}"
                )
        handler(message, src_id)

    def _resolve_handler(self, message_type: type) -> Optional[Callable]:
        if message_type not in self._handler_cache:
            name = "handle_" + _snake_case(message_type.__name__)
            self._handler_cache[message_type] = getattr(self, name, None)
        return self._handler_cache[message_type]

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def set_timer(self, delay: float, callback: Callable, *args: Any):
        """Schedule a local callback; returns a cancellable handle."""
        return self.transport.schedule(delay, callback, *args)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.node_id} @ {self.dc}>"


def _snake_case(name: str) -> str:
    out = []
    for index, char in enumerate(name):
        if char.isupper() and index > 0 and (
            not name[index - 1].isupper()
            or (index + 1 < len(name) and not name[index + 1].isupper())
        ):
            out.append("_")
        out.append(char.lower())
    return "".join(out)
