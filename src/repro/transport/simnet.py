"""Simulator-backed transport: the deterministic testbed.

Adapts the discrete-event :class:`~repro.sim.core.Simulator` and the
latency/fault-injecting :class:`~repro.sim.network.Network` to the
:class:`~repro.transport.base.Transport` interface.  Any number of nodes
share one ``SimTransport`` — delivery order, latency, drops and
partitions are all decided by the wrapped network, so protocol runs
replay exactly under a fixed seed.

Imports are type-checking-only to keep the dependency direction clean:
``repro.sim`` imports :mod:`repro.transport.base` for the neutral Future,
and this adapter only *holds* sim objects handed to it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.transport.base import Future, Node, Transport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.core import Event, Simulator
    from repro.sim.network import Network

__all__ = ["SimTransport"]


class SimTransport(Transport):
    """One shared transport over a (Simulator, Network) pair."""

    def __init__(self, sim: "Simulator", network: "Network") -> None:
        self.sim = sim
        self.network = network
        # Instance attributes shadow the class methods below: send/
        # broadcast/schedule share the Transport signatures with their
        # sim/network counterparts, so aliasing removes one pure-forward
        # frame from every message and timer on the hot path.
        self.send = network.send
        self.broadcast = network.broadcast
        self.schedule = sim.schedule

    @property
    def now(self) -> float:
        return self.sim.now

    def schedule(self, delay_ms: float, callback: Callable, *args: Any) -> "Event":
        return self.sim.schedule(delay_ms, callback, *args)

    def future(self) -> Future:
        # Bind to the simulator (not the adapter) so futures created by
        # roles and by drivers calling sim.future() are indistinguishable.
        return self.sim.future()

    def send(self, src_id: str, dst_id: str, message: object) -> None:
        self.network.send(src_id, dst_id, message)

    def broadcast(self, src_id: str, dst_ids: Iterable[str], message: object) -> int:
        return self.network.broadcast(src_id, dst_ids, message)

    def register(self, node: Node) -> None:
        self.network.register(node)

    def deregister(self, node_id: str) -> None:
        self.network.deregister(node_id)

    def base_rtt(self, dc_a: str, dc_b: str) -> float:
        return self.network.latency.base_rtt(dc_a, dc_b)
