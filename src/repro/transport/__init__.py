"""Pluggable transports for the MDCC protocol stack.

* :mod:`repro.transport.base` — the interface and the actor base class.
* :mod:`repro.transport.simnet` — deterministic discrete-event backend.
* :mod:`repro.transport.tcp` — one OS process per node over asyncio TCP.
* :mod:`repro.transport.codec` — wire codec for the message dataclasses.
* :mod:`repro.transport.topology` — cluster topology files for `repro serve`.
"""

from repro.transport.base import Future, Node, Transport, TransportError, all_of, any_of

__all__ = [
    "Future",
    "Node",
    "Transport",
    "TransportError",
    "all_of",
    "any_of",
]
