"""Asyncio TCP transport: one OS process per node, real sockets, wall clocks.

Frames are ``4-byte big-endian length | codec tag | payload`` (see
:mod:`repro.transport.codec`); an envelope carries ``src``/``src_dc``/
``dst`` plus the encoded message.  Routing, in order:

1. **local** — the destination is hosted by this transport: dispatch on
   the next loop tick;
2. **learned** — a peer we have heard from: reply down the connection its
   frame arrived on (this is how storage nodes answer driver
   coordinators, which have no listening address);
3. **topology** — a configured server address: lazily dial with
   exponential backoff, queueing frames per destination until the
   connection lands.

A framing-layer **nemesis** applies per-(src DC, dst DC) link faults —
drop / extra delay / duplicate — on the outbound path, so the PR 2 chaos
schedules drive real processes the same way they drive the simulator.
Control frames addressed to ``@ctrl`` administer a remote transport:
``shutdown``, ``set_link``, ``heal``, ``ping``.

Time here is wall-clock (``time.monotonic``), still reported in
milliseconds so protocol timeouts keep their configured meaning.
"""

from __future__ import annotations

import asyncio
import itertools
import random
import struct
import sys
import time
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Iterable, Optional, Tuple

from collections import deque

from repro.trace import runtime as trace_runtime
from repro.transport import codec as wire
from repro.transport.base import Node, Transport, TransportError
from repro.transport.topology import Topology

__all__ = ["AsyncioTcpTransport", "LinkFault", "CTRL_DST"]

CTRL_DST = "@ctrl"
_CTRL_REPLY = "@ctrl-reply"

_LEN = struct.Struct(">I")
_MAX_FRAME = 64 * 1024 * 1024

#: dial retry/backoff schedule (seconds): fast first attempts for a
#: cluster that is still starting up, then a steady 1 s cadence.
_BACKOFF_S = (0.05, 0.1, 0.2, 0.4, 0.8)
_BACKOFF_MAX_S = 1.0
_DIAL_GIVE_UP_S = 30.0


@dataclass(frozen=True)
class LinkFault:
    """Outbound fault policy for one (src DC, dst DC) link."""

    drop_rate: float = 0.0
    extra_latency_ms: float = 0.0
    duplicate: bool = False


class AsyncioTcpTransport(Transport):
    """A per-process transport hosting one or more local nodes.

    Must be created (and used) inside a running asyncio event loop; all
    protocol callbacks execute on that loop, preserving the single-threaded
    execution model roles were written under.
    """

    def __init__(
        self,
        topology: Topology,
        *,
        local_dc: str,
        listen: Optional[Tuple[str, int]] = None,
        codec: Optional[str] = None,
        nemesis_seed: Optional[int] = None,
    ) -> None:
        self.topology = topology
        self.local_dc = local_dc
        self._listen = listen
        self._codec, warning = wire.resolve_codec(codec or topology.codec)
        if warning:
            print(f"[transport] {warning}", file=sys.stderr)
        #: the codec actually framing the wire (may differ from the
        #: topology's request when msgpack degraded to JSON)
        self.codec_name = self._codec.name
        self._loop = asyncio.get_event_loop()
        self._t0 = time.monotonic()
        self._nodes: Dict[str, Node] = {}
        #: configured peers we dialed: node_id -> writer
        self._writers: Dict[str, asyncio.StreamWriter] = {}
        #: peers learned from inbound frames: node_id -> (writer, src_dc)
        self._learned: Dict[str, Tuple[asyncio.StreamWriter, str]] = {}
        self._queues: Dict[str, Deque[bytes]] = {}
        self._dial_tasks: Dict[str, asyncio.Task] = {}
        self._reader_tasks: set = set()
        self._server: Optional[asyncio.base_events.Server] = None
        self._faults: Dict[Tuple[str, str], LinkFault] = {}
        self._nemesis_rng = random.Random(
            topology.seed if nemesis_seed is None else nemesis_seed
        )
        self._ctrl_seq = itertools.count(1)
        self._ctrl_waiters: Dict[int, asyncio.Future] = {}
        self._closed = False
        self.shutdown_requested = asyncio.Event()
        self.stats = {"sent": 0, "received": 0, "dropped": 0, "duplicated": 0}

    # ------------------------------------------------------------------
    # Transport interface
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return (time.monotonic() - self._t0) * 1000.0

    def schedule(self, delay_ms: float, callback: Callable, *args: Any):
        if delay_ms < 0:
            raise TransportError(f"negative delay: {delay_ms}")
        return self._loop.call_later(delay_ms / 1000.0, callback, *args)

    def register(self, node: Node) -> None:
        if node.node_id in self._nodes:
            raise TransportError(f"duplicate node id {node.node_id!r}")
        self._nodes[node.node_id] = node

    def deregister(self, node_id: str) -> None:
        self._nodes.pop(node_id, None)

    def base_rtt(self, dc_a: str, dc_b: str) -> float:
        # Advisory only (read-strategy ordering); reuse the evaluation's
        # EC2 distance table when it knows both regions.
        from repro.sim.network import DEFAULT_RTT_MATRIX

        if dc_a == dc_b:
            return 0.0
        return DEFAULT_RTT_MATRIX.get(frozenset((dc_a, dc_b)), 1.0)

    def send(self, src_id: str, dst_id: str, message: object) -> None:
        if self._closed:
            return
        ctx = trace_runtime.current_context()
        if dst_id in self._nodes:
            # Same process: skip framing and nemesis (intra-DC loopback).
            # The ambient trace context is gone by the time call_soon runs
            # the handler, so carry it explicitly.
            if ctx is not None:
                self._loop.call_soon(
                    self._dispatch_traced, dst_id, message, src_id, ctx
                )
            else:
                self._loop.call_soon(self._dispatch, dst_id, message, src_id)
            return
        dst_dc = self.topology.dc_of(dst_id)
        if dst_dc is None and dst_id in self._learned:
            dst_dc = self._learned[dst_id][1]
        src_dc = self._nodes[src_id].dc if src_id in self._nodes else self.local_dc
        envelope = {
            "src": src_id,
            "src_dc": src_dc,
            "dst": dst_id,
            "msg": wire.encode(message),
        }
        if ctx is not None:
            envelope["trace"] = [ctx[0], ctx[1]]
        frame = self._frame(envelope)
        fault = self._faults.get((src_dc, dst_dc)) if dst_dc else None
        if fault is not None:
            if fault.drop_rate and self._nemesis_rng.random() < fault.drop_rate:
                self.stats["dropped"] += 1
                return
            copies = 2 if fault.duplicate else 1
            if fault.duplicate:
                self.stats["duplicated"] += 1
            if fault.extra_latency_ms > 0:
                for _ in range(copies):
                    self._loop.call_later(
                        fault.extra_latency_ms / 1000.0, self._transmit, dst_id, frame
                    )
                return
            for _ in range(copies):
                self._transmit(dst_id, frame)
            return
        self._transmit(dst_id, frame)

    def broadcast(self, src_id: str, dst_ids: Iterable[str], message: object) -> int:
        count = 0
        for dst_id in dst_ids:
            self.send(src_id, dst_id, message)
            count += 1
        return count

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Open the listening socket (server processes only)."""
        if self._listen is not None:
            host, port = self._listen
            self._server = await asyncio.start_server(self._on_connection, host, port)

    async def close(self) -> None:
        """Graceful shutdown: stop dialing, close every stream."""
        self._closed = True
        for task in self._dial_tasks.values():
            task.cancel()
        for task in list(self._reader_tasks):
            task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        writers = list(self._writers.values()) + [w for w, _dc in self._learned.values()]
        for writer in writers:
            if not writer.is_closing():
                writer.close()
        for writer in writers:
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._writers.clear()
        self._learned.clear()
        self._queues.clear()

    # ------------------------------------------------------------------
    # Nemesis
    # ------------------------------------------------------------------
    def set_link_fault(
        self,
        src_dc: str,
        dst_dc: str,
        *,
        drop_rate: float = 0.0,
        extra_latency_ms: float = 0.0,
        duplicate: bool = False,
    ) -> None:
        """Fault every outbound frame from ``src_dc`` to ``dst_dc``.

        Only frames *sent by this process* are affected; the driver pushes
        the same fault to the relevant server processes over ``@ctrl``.
        """
        self._faults[(src_dc, dst_dc)] = LinkFault(
            drop_rate=drop_rate,
            extra_latency_ms=extra_latency_ms,
            duplicate=duplicate,
        )

    def clear_link_fault(self, src_dc: str, dst_dc: str) -> None:
        self._faults.pop((src_dc, dst_dc), None)

    def heal_all(self) -> None:
        self._faults.clear()

    # ------------------------------------------------------------------
    # Control channel
    # ------------------------------------------------------------------
    async def ctrl(self, dst_id: str, op: Dict[str, Any], timeout_s: float = 10.0):
        """Send a control op to ``dst_id``'s transport; await its ack."""
        req_id = next(self._ctrl_seq)
        waiter: asyncio.Future = self._loop.create_future()
        self._ctrl_waiters[req_id] = waiter
        envelope = {
            "src": f"ctrl-{id(self)}",
            "src_dc": self.local_dc,
            "dst": CTRL_DST,
            "msg": {**op, "req_id": req_id},
        }
        try:
            self._transmit(dst_id, self._frame(envelope))
            return await asyncio.wait_for(waiter, timeout_s)
        finally:
            self._ctrl_waiters.pop(req_id, None)

    def _handle_ctrl(self, envelope: Dict[str, Any], writer: asyncio.StreamWriter) -> None:
        op = envelope["msg"]
        kind = op.get("op")
        result: Dict[str, Any] = {"req_id": op.get("req_id"), "ok": True}
        if kind == "shutdown":
            self.shutdown_requested.set()
        elif kind == "set_link":
            self.set_link_fault(
                op["src_dc"],
                op["dst_dc"],
                drop_rate=float(op.get("drop_rate", 0.0)),
                extra_latency_ms=float(op.get("extra_latency_ms", 0.0)),
                duplicate=bool(op.get("duplicate", False)),
            )
        elif kind == "heal":
            self.heal_all()
        elif kind == "ping":
            result["now_ms"] = self.now
            result["stats"] = dict(self.stats)
        else:
            result["ok"] = False
            result["error"] = f"unknown ctrl op {kind!r}"
        reply = {
            "src": envelope["dst"],
            "src_dc": self.local_dc,
            "dst": _CTRL_REPLY,
            "msg": result,
        }
        self._write_frame(writer, self._frame(reply))

    # ------------------------------------------------------------------
    # Framing
    # ------------------------------------------------------------------
    def _frame(self, envelope: Dict[str, Any]) -> bytes:
        payload = wire.encode_frame_payload(envelope, self._codec)
        return _LEN.pack(len(payload)) + payload

    @staticmethod
    def _write_frame(writer: asyncio.StreamWriter, frame: bytes) -> None:
        if not writer.is_closing():
            writer.write(frame)

    def _transmit(self, dst_id: str, frame: bytes) -> None:
        learned = self._learned.get(dst_id)
        if learned is not None and not learned[0].is_closing():
            self._write_frame(learned[0], frame)
            self.stats["sent"] += 1
            return
        writer = self._writers.get(dst_id)
        if writer is not None and not writer.is_closing():
            self._write_frame(writer, frame)
            self.stats["sent"] += 1
            return
        if dst_id in self.topology.nodes:
            self._queues.setdefault(dst_id, deque()).append(frame)
            if dst_id not in self._dial_tasks or self._dial_tasks[dst_id].done():
                self._dial_tasks[dst_id] = self._loop.create_task(self._dial(dst_id))
            return
        # No route at all: a driver that disconnected, or a typo'd id.
        self.stats["dropped"] += 1

    async def _dial(self, dst_id: str) -> None:
        address = self.topology.nodes[dst_id]
        deadline = time.monotonic() + _DIAL_GIVE_UP_S
        attempt = 0
        while not self._closed:
            try:
                reader, writer = await asyncio.open_connection(address.host, address.port)
            except (ConnectionError, OSError):
                if time.monotonic() > deadline:
                    dropped = len(self._queues.pop(dst_id, ()))
                    print(
                        f"[transport] giving up dialing {dst_id} at "
                        f"{address.host}:{address.port} ({dropped} frames dropped)",
                        file=sys.stderr,
                    )
                    return
                backoff = _BACKOFF_S[attempt] if attempt < len(_BACKOFF_S) else _BACKOFF_MAX_S
                attempt += 1
                await asyncio.sleep(backoff)
                continue
            self._writers[dst_id] = writer
            queue = self._queues.pop(dst_id, None)
            if queue:
                for frame in queue:
                    self._write_frame(writer, frame)
                    self.stats["sent"] += 1
            # Replies from the peer come back on this same connection.
            task = self._loop.create_task(self._read_frames(reader, writer))
            self._reader_tasks.add(task)
            task.add_done_callback(self._reader_tasks.discard)
            return

    # ------------------------------------------------------------------
    # Inbound
    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        await self._read_frames(reader, writer)

    async def _read_frames(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                header = await reader.readexactly(_LEN.size)
                (length,) = _LEN.unpack(header)
                if length > _MAX_FRAME:
                    raise TransportError(f"frame of {length} bytes exceeds limit")
                payload = await reader.readexactly(length)
                self._on_frame(payload, writer)
        except (asyncio.IncompleteReadError, ConnectionError, asyncio.CancelledError):
            pass
        finally:
            stale = [
                peer for peer, (w, _dc) in self._learned.items() if w is writer
            ]
            for peer in stale:
                del self._learned[peer]

    def _on_frame(self, payload: bytes, writer: asyncio.StreamWriter) -> None:
        try:
            envelope = wire.decode_frame_payload(payload)
        except wire.CodecError as exc:
            print(f"[transport] undecodable frame: {exc}", file=sys.stderr)
            return
        self.stats["received"] += 1
        src = envelope.get("src", "")
        dst = envelope.get("dst", "")
        if src and not src.startswith("ctrl-"):
            self._learned[src] = (writer, envelope.get("src_dc", ""))
        if dst == CTRL_DST:
            self._handle_ctrl(envelope, writer)
            return
        if dst == _CTRL_REPLY:
            waiter = self._ctrl_waiters.get(envelope["msg"].get("req_id"))
            if waiter is not None and not waiter.done():
                waiter.set_result(envelope["msg"])
            return
        try:
            message = wire.decode(envelope["msg"])
        except wire.CodecError as exc:
            print(f"[transport] undecodable message for {dst}: {exc}", file=sys.stderr)
            return
        trace = envelope.get("trace")
        if trace is not None:
            self._dispatch_traced(dst, message, src, (trace[0], trace[1]))
        else:
            self._dispatch(dst, message, src)

    def _dispatch_traced(
        self, dst_id: str, message: object, src_id: str, ctx: tuple
    ) -> None:
        """Deliver with the sender's trace context as the ambient context,
        so spans opened by the handler stitch across the wire."""
        previous = trace_runtime.set_context(ctx)
        try:
            self._dispatch(dst_id, message, src_id)
        finally:
            trace_runtime.reset_context(previous)

    def _dispatch(self, dst_id: str, message: object, src_id: str) -> None:
        node = self._nodes.get(dst_id)
        if node is None:
            self.stats["dropped"] += 1
            return
        try:
            node.on_message(message, src_id)
        except Exception as exc:  # noqa: BLE001 - a handler bug must not kill the server
            print(
                f"[transport] handler error on {dst_id} for "
                f"{type(message).__name__}: {exc!r}",
                file=sys.stderr,
            )
