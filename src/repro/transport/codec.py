"""Wire codec for the protocol message dataclasses.

The TCP backend ships the same frozen dataclasses the simulator delivers
by reference.  Encoding is a tagged recursive transform to plain
JSON/msgpack-compatible values:

* a registered dataclass ``T(f1=..., f2=...)`` becomes
  ``{"__k": "T", "f": {encoded fields}}``;
* a tuple becomes ``{"__t": [...]}`` (tuple-ness must survive the trip —
  frozen dataclasses hash their tuple fields);
* an :class:`~repro.core.options.OptionStatus` becomes ``{"__e": value}``;
* a :class:`~repro.paxos.cstruct.CStruct` becomes ``{"__c": [commands]}``;
* ``None``/``bool``/``int``/``float``/``str`` pass through; lists map
  element-wise; dicts (string keys only) map value-wise.

**Registration is explicit.**  :data:`MESSAGE_TYPES` must list every
wire-reachable message dataclass — all of :mod:`repro.core.messages`
plus the protocol-local messages under :mod:`repro.protocols`.  The
WIRE-codec rule of :mod:`repro.analysis` statically fails the build when
a message lands without frozen/``__slots__``/codec entry, and the codec
round-trip tests require a worst-case sample per registered type.

Two byte codecs wrap the transform: JSON (always available) and msgpack
(the optional ``repro[transport]`` extra).  Frames on the wire are
``4-byte big-endian length | 1 codec tag byte | payload``.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, Optional, Protocol, Tuple, Type

from repro.core import messages as _messages
from repro.core.options import (
    CommutativeUpdate,
    Option,
    OptionStatus,
    PhysicalUpdate,
    ReadValidation,
    RecordId,
)
from repro.paxos.ballot import Ballot, BallotRange
from repro.paxos.cstruct import CStruct
from repro.protocols.megastore import (
    MsCommitRequest,
    MsCommitResult,
    MsLogAck,
    MsLogAppend,
)
from repro.protocols.quorumwrites import QWAck, QWWrite
from repro.protocols.twopc import (
    DecisionAck,
    DecisionMessage,
    PrepareReply,
    PrepareRequest,
)
from repro.transport.base import TransportError

__all__ = [
    "ByteCodec",
    "CodecError",
    "MESSAGE_TYPES",
    "VALUE_TYPES",
    "decode",
    "decode_frame_payload",
    "encode",
    "encode_frame_payload",
    "resolve_codec",
]


class CodecError(TransportError):
    """An object cannot be encoded, or a payload cannot be decoded."""


#: every message class that may cross the wire (core + protocol-local);
#: the WIRE-codec analyzer rule enforces the pairing.
MESSAGE_TYPES: Tuple[type, ...] = (
    _messages.CatchUp,
    _messages.FastReply,
    _messages.MPhase1a,
    _messages.MPhase1b,
    _messages.MPhase2a,
    _messages.MPhase2b,
    _messages.MastershipTaken,
    _messages.OptionOutcome,
    _messages.ProposeClassic,
    _messages.ProposeFast,
    _messages.RcApply,
    _messages.RcCommitRequest,
    _messages.RcDecision,
    _messages.RcPrepare,
    _messages.RcPrepareReply,
    _messages.RcVote,
    _messages.ReadReply,
    _messages.ReadRequest,
    _messages.RepairProbe,
    _messages.RepairReply,
    _messages.SnapshotAck,
    _messages.SnapshotChunk,
    _messages.SnapshotRequest,
    _messages.StartRecovery,
    _messages.StatusReply,
    _messages.StatusRequest,
    _messages.Visibility,
    _messages.VisibilityBatch,
    # protocol-local messages (baseline protocols from §5.2)
    DecisionAck,
    DecisionMessage,
    MsCommitRequest,
    MsCommitResult,
    MsLogAck,
    MsLogAppend,
    PrepareReply,
    PrepareRequest,
    QWAck,
    QWWrite,
)

#: value dataclasses nested inside messages.
VALUE_TYPES: Tuple[type, ...] = (
    Ballot,
    BallotRange,
    CommutativeUpdate,
    Option,
    PhysicalUpdate,
    ReadValidation,
    RecordId,
)

_REGISTRY: Dict[str, Type[Any]] = {
    cls.__name__: cls for cls in (*MESSAGE_TYPES, *VALUE_TYPES)
}

_TAG_KEYS = frozenset({"__k", "__t", "__e", "__c", "f"})


def encode(obj: Any) -> Any:
    """Transform ``obj`` into JSON/msgpack-compatible values."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, OptionStatus):
        return {"__e": obj.value}
    if isinstance(obj, CStruct):
        return {"__c": [encode(command) for command in obj.commands]}
    if isinstance(obj, tuple):
        return {"__t": [encode(item) for item in obj]}
    if isinstance(obj, list):
        return [encode(item) for item in obj]
    if isinstance(obj, dict):
        out = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                raise CodecError(f"non-string dict key {key!r} is not encodable")
            out[key] = encode(value)
        return out
    name = type(obj).__name__
    cls = _REGISTRY.get(name)
    if cls is None or type(obj) is not cls:
        raise CodecError(
            f"{type(obj).__module__}.{name} has no codec entry; add it to "
            "repro.transport.codec.MESSAGE_TYPES or VALUE_TYPES"
        )
    fields = {
        field.name: encode(getattr(obj, field.name))
        for field in dataclasses.fields(obj)
        if field.init  # non-init fields are derived caches, not payload
    }
    return {"__k": name, "f": fields}


def decode(data: Any) -> Any:
    """Inverse of :func:`encode`."""
    if data is None or isinstance(data, (bool, int, float, str)):
        return data
    if isinstance(data, list):
        return [decode(item) for item in data]
    if isinstance(data, dict):
        if "__e" in data:
            return OptionStatus(data["__e"])
        if "__c" in data:
            return CStruct(tuple(decode(item) for item in data["__c"]))
        if "__t" in data:
            return tuple(decode(item) for item in data["__t"])
        if "__k" in data:
            cls = _REGISTRY.get(data["__k"])
            if cls is None:
                raise CodecError(f"unknown wire type {data['__k']!r}")
            fields = {key: decode(value) for key, value in data["f"].items()}
            return cls(**fields)
        return {key: decode(value) for key, value in data.items()}
    raise CodecError(f"cannot decode {type(data).__name__}: {data!r}")


# ----------------------------------------------------------------------
# Byte codecs
# ----------------------------------------------------------------------
class ByteCodec(Protocol):
    """The structural contract both byte codecs satisfy."""

    name: str
    tag: bytes

    def dumps(self, obj: Any) -> bytes: ...

    def loads(self, payload: bytes) -> Any: ...


class JsonCodec:
    name = "json"
    tag = b"J"

    @staticmethod
    def dumps(obj: Any) -> bytes:
        return json.dumps(obj, separators=(",", ":")).encode("utf-8")

    @staticmethod
    def loads(payload: bytes) -> Any:
        return json.loads(payload.decode("utf-8"))


class MsgpackCodec:
    name = "msgpack"
    tag = b"M"

    def __init__(self) -> None:
        import msgpack  # deferred: the optional [transport] extra

        self._msgpack: Any = msgpack

    def dumps(self, obj: Any) -> bytes:
        return self._msgpack.packb(obj, use_bin_type=True)

    def loads(self, payload: bytes) -> Any:
        return self._msgpack.unpackb(payload, raw=False, strict_map_key=False)


def resolve_codec(preferred: str = "json") -> Tuple[ByteCodec, Optional[str]]:
    """Return ``(codec, warning_or_None)`` for the requested byte codec.

    ``msgpack`` degrades to JSON frames with an explanatory warning when
    the package is absent (install the ``repro[transport]`` extra for the
    binary codec).
    """
    if preferred == "json":
        return JsonCodec(), None
    if preferred == "msgpack":
        try:
            return MsgpackCodec(), None
        except ImportError:
            return JsonCodec(), (
                "msgpack is not installed; falling back to JSON frames. "
                "Install the optional dependency group for binary framing: "
                "pip install 'repro[transport]'"
            )
    raise CodecError(f"unknown codec {preferred!r}; choose json or msgpack")


_CODECS_BY_TAG: Dict[bytes, ByteCodec] = {b"J": JsonCodec()}


def encode_frame_payload(envelope: Dict[str, Any], codec: ByteCodec) -> bytes:
    """``codec tag byte + serialized envelope`` (length prefix added by
    the framing layer)."""
    return codec.tag + codec.dumps(envelope)


def decode_frame_payload(payload: bytes) -> Dict[str, Any]:
    """Inverse of :func:`encode_frame_payload`; the tag byte selects the
    codec so mixed-codec peers fail loudly instead of garbling."""
    if not payload:
        raise CodecError("empty frame")
    tag = payload[:1]
    codec = _CODECS_BY_TAG.get(tag)
    if codec is None:
        if tag == b"M":
            try:
                codec = _CODECS_BY_TAG.setdefault(b"M", MsgpackCodec())
            except ImportError:
                raise CodecError(
                    "received a msgpack frame but msgpack is not installed; "
                    "install 'repro[transport]' or run the cluster with "
                    "--codec json"
                ) from None
        else:
            raise CodecError(f"unknown codec tag {tag!r}")
    return codec.loads(payload[1:])
