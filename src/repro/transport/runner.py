"""Processes for the TCP backend: `repro serve` and the workload driver.

``serve_node`` is the body of one ``repro serve`` process — a single
storage node listening on its topology address until told to shut down
(SIGTERM/SIGINT or a ``@ctrl`` shutdown frame).

``run_tcp_workload`` is the driver behind ``repro run --transport tcp``:
it hosts app-server coordinators over an :class:`AsyncioTcpTransport`
(no listening socket — replies ride the learned routes), optionally
spawns the server processes itself, drives micro-benchmark buy
transactions, and returns a JSON-friendly result.  The driver reuses the
workload's seeded RNG streams, so the transaction *mix* is reproducible
even though wall-clock interleaving is not.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import signal
import subprocess
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.metrics import CounterSet, LatencyRecorder
from repro.sim.rng import RngRegistry
from repro.transport.base import Future
from repro.transport.tcp import AsyncioTcpTransport
from repro.transport.topology import Topology

__all__ = [
    "run_flaky_wan_parity",
    "run_tcp_workload",
    "serve_node",
    "spawn_server_processes",
    "terminate_servers",
]

ITEMS_TABLE = "items"


def _await_future(fut: Future) -> "asyncio.Future":
    """Bridge a transport Future into the running asyncio loop."""
    loop = asyncio.get_event_loop()
    result: asyncio.Future = loop.create_future()

    def on_done(done: Future) -> None:
        if result.done():
            return
        try:
            result.set_result(done.result())
        except BaseException as exc:  # noqa: BLE001 - surface via the await
            result.set_exception(exc)

    fut.add_done_callback(on_done)
    return result


# ----------------------------------------------------------------------
# Server process
# ----------------------------------------------------------------------
async def _serve_async(topology: Topology, node_id: str) -> None:
    from repro.protocols.base import get_protocol
    from repro.workloads.micro import MicroBenchmark

    address = topology.nodes.get(node_id)
    if address is None:
        raise SystemExit(f"node {node_id!r} is not in the topology")
    placement = topology.build_placement()
    config = topology.build_config()
    transport = AsyncioTcpTransport(
        topology, local_dc=address.dc, listen=(address.host, address.port)
    )
    node = get_protocol(topology.protocol).make_storage_node(
        transport,
        node_id,
        address.dc,
        placement=placement,
        config=config,
        counters=CounterSet(),
    )
    node.store.register_table(MicroBenchmark.schema())
    preloaded = 0
    for key, stock in topology.local_records(node_id, placement):
        node.store.record(ITEMS_TABLE, key).commit_value({"stock": stock})
        preloaded += 1
    await transport.start()
    print(
        f"[serve] {node_id} ({address.dc}) listening on "
        f"{address.host}:{address.port}, {preloaded} records preloaded",
        file=sys.stderr,
        flush=True,
    )
    loop = asyncio.get_event_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(sig, transport.shutdown_requested.set)
    await transport.shutdown_requested.wait()
    await transport.close()
    print(f"[serve] {node_id} shut down cleanly", file=sys.stderr, flush=True)


def serve_node(topology_path: str, node_id: str) -> int:
    """Entry point of one `repro serve` process."""
    topology = Topology.load(topology_path)
    asyncio.run(_serve_async(topology, node_id))
    return 0


# ----------------------------------------------------------------------
# Server process management (driver side)
# ----------------------------------------------------------------------
def spawn_server_processes(
    topology_path: str, topology: Topology
) -> Dict[str, subprocess.Popen]:
    """One `repro serve` subprocess per topology node."""
    env = dict(os.environ)
    src_dir = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    processes = {}
    for node_id in sorted(topology.nodes):
        processes[node_id] = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--topology",
                topology_path,
                "--node",
                node_id,
            ],
            env=env,
        )
    return processes


async def _shutdown_servers(
    transport: AsyncioTcpTransport, node_ids: Sequence[str]
) -> None:
    for node_id in node_ids:
        with contextlib.suppress(asyncio.TimeoutError, TransportErrorBase):
            await transport.ctrl(node_id, {"op": "shutdown"}, timeout_s=5.0)


# ctrl() raises nothing transport-specific today, but keep the alias so the
# suppress list reads as intent.
TransportErrorBase = Exception


def terminate_servers(
    processes: Dict[str, subprocess.Popen], grace_s: float = 10.0
) -> List[str]:
    """Wait for clean exits; escalate to SIGKILL.  Returns ids that had
    to be killed (the CI smoke job asserts this list is empty)."""
    killed: List[str] = []
    deadline = time.monotonic() + grace_s
    for node_id, process in processes.items():
        remaining = max(0.1, deadline - time.monotonic())
        try:
            process.wait(timeout=remaining)
        except subprocess.TimeoutExpired:
            process.terminate()
            try:
                process.wait(timeout=3.0)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
                killed.append(node_id)
    return killed


# ----------------------------------------------------------------------
# Workload driver
# ----------------------------------------------------------------------
async def _drive_client(
    coordinator,
    commutative: bool,
    topology: Topology,
    rng,
    transactions: int,
    latencies: LatencyRecorder,
    outcomes: Dict[str, int],
    tx_timeout_s: float,
) -> None:
    from repro.db.client import Transaction

    keys = topology.item_keys()
    items_per_tx = min(3, len(keys))
    for _ in range(transactions):
        chosen: List[str] = []
        while len(chosen) < items_per_tx:
            key = keys[rng.randrange(len(keys))]
            if key not in chosen:
                chosen.append(key)
        amounts = [rng.randint(1, 3) for _ in chosen]
        tx = Transaction(coordinator, commutative=commutative)
        started = time.monotonic()
        try:
            for key in chosen:
                await asyncio.wait_for(
                    _await_future(tx.read(ITEMS_TABLE, key)), tx_timeout_s
                )
            for key, amount in zip(chosen, amounts):
                tx.decrement(ITEMS_TABLE, key, "stock", amount)
            outcome = await asyncio.wait_for(
                _await_future(tx.commit()), tx_timeout_s
            )
        except asyncio.TimeoutError:
            outcomes["timeouts"] += 1
            continue
        latencies.add((time.monotonic() - started) * 1000.0)
        if outcome.committed:
            outcomes["committed"] += 1
            if outcome.fast_path:
                outcomes["fast_path"] += 1
        else:
            outcomes["aborted"] += 1


async def _run_workload_async(
    topology: Topology,
    *,
    clients: int,
    transactions_per_client: int,
    client_dcs: Optional[Sequence[str]],
    tx_timeout_s: float,
    shutdown_servers: bool,
) -> Dict[str, object]:
    from repro.protocols.base import get_protocol

    descriptor = get_protocol(topology.protocol)
    placement = topology.build_placement()
    config = topology.build_config()
    commutative = descriptor.supports_commutative and config.commutative_enabled
    counters = CounterSet()
    dcs = list(client_dcs) if client_dcs else list(topology.datacenters)
    transport = AsyncioTcpTransport(topology, local_dc=dcs[0], listen=None)
    rng_registry = RngRegistry(seed=topology.seed)
    latencies = LatencyRecorder("tcp.commit")
    outcomes = {"committed": 0, "aborted": 0, "fast_path": 0, "timeouts": 0}
    started = time.monotonic()
    tasks = []
    for index in range(clients):
        dc = dcs[index % len(dcs)]
        coordinator = descriptor.make_client(
            transport,
            f"app-{dc}-driver{index + 1}",
            dc,
            placement=placement,
            config=config,
            counters=counters,
        )
        tasks.append(
            _drive_client(
                coordinator,
                commutative,
                topology,
                rng_registry.stream(f"workload.client.{index}"),
                transactions_per_client,
                latencies,
                outcomes,
                tx_timeout_s,
            )
        )
    try:
        await asyncio.gather(*tasks)
    finally:
        if shutdown_servers:
            await _shutdown_servers(transport, sorted(topology.nodes))
        await transport.close()
    elapsed_s = time.monotonic() - started
    total = outcomes["committed"] + outcomes["aborted"]
    return {
        "transport": "tcp",
        "protocol": topology.protocol,
        "codec": transport.codec_name,
        "seed": topology.seed,
        "clients": clients,
        "transactions_per_client": transactions_per_client,
        "transactions": total,
        "committed": outcomes["committed"],
        "aborted": outcomes["aborted"],
        "fast_path_commits": outcomes["fast_path"],
        "timeouts": outcomes["timeouts"],
        "wall_clock_s": round(elapsed_s, 3),
        "throughput_tps": round(total / elapsed_s, 3) if elapsed_s > 0 else 0.0,
        "latency_ms": {
            key: round(value, 3)
            for key, value in sorted(latencies.summary().items())
        },
        "frames": dict(transport.stats),
    }


# ----------------------------------------------------------------------
# Chaos parity: the flaky-wan schedule against the real backend
# ----------------------------------------------------------------------
async def _set_cluster_link(
    transport: AsyncioTcpTransport,
    topology: Topology,
    src_dc: str,
    dst_dc: str,
    **fault,
) -> None:
    """Apply one link fault on the driver and every server process."""
    if fault:
        transport.set_link_fault(src_dc, dst_dc, **fault)
    else:
        transport.clear_link_fault(src_dc, dst_dc)
    op = {"op": "set_link", "src_dc": src_dc, "dst_dc": dst_dc, **fault}
    if not fault:
        op = {"op": "set_link", "src_dc": src_dc, "dst_dc": dst_dc}
    for node_id in sorted(topology.nodes):
        with contextlib.suppress(asyncio.TimeoutError):
            await transport.ctrl(node_id, op, timeout_s=5.0)


async def _heal_cluster(transport: AsyncioTcpTransport, topology: Topology) -> None:
    transport.heal_all()
    for node_id in sorted(topology.nodes):
        with contextlib.suppress(asyncio.TimeoutError):
            await transport.ctrl(node_id, {"op": "heal"}, timeout_s=5.0)


async def _flaky_wan_nemesis(
    transport: AsyncioTcpTransport, topology: Topology, scale_s: float
) -> None:
    """The PR 2 flaky-wan schedule, scaled to ``scale_s`` wall seconds.

    Same shape as :func:`repro.faults.schedule._flaky_wan`: a degraded
    us-west↔us-east link (extra latency + 10% loss), a background 2%
    loss on everything, and a flapping eu-west↔us-east route; all healed
    before the end.
    """
    both = lambda a, b, **f: [(a, b, f), (b, a, f)]  # noqa: E731
    await asyncio.sleep(0.20 * scale_s)
    for src, dst, fault in both(
        "us-west", "us-east", drop_rate=0.10, extra_latency_ms=40.0
    ):
        await _set_cluster_link(transport, topology, src, dst, **fault)
    background = [
        (a, b)
        for a in topology.datacenters
        for b in topology.datacenters
        if a != b and {a, b} != {"us-west", "us-east"}
    ]
    for src, dst in background:
        await _set_cluster_link(transport, topology, src, dst, drop_rate=0.02)
    # Flap eu-west<->us-east: 4 cycles of total blackout / recovery.
    half_period = 0.075 * scale_s / 2.0
    for _cycle in range(4):
        for src, dst, fault in both("eu-west", "us-east", drop_rate=1.0):
            await _set_cluster_link(transport, topology, src, dst, **fault)
        await asyncio.sleep(half_period)
        for src, dst in (("eu-west", "us-east"), ("us-east", "eu-west")):
            await _set_cluster_link(transport, topology, src, dst, drop_rate=0.02)
        await asyncio.sleep(half_period)
    await asyncio.sleep(0.10 * scale_s)
    await _heal_cluster(transport, topology)


async def _chaos_client(
    coordinator, commutative, topology: Topology, rng, stop: asyncio.Event, ledger: Dict
) -> Dict[str, int]:
    """Issue buys until ``stop``; record committed deltas in ``ledger``."""
    from repro.db.client import Transaction

    keys = topology.item_keys()
    items_per_tx = min(3, len(keys))
    outcomes = {"committed": 0, "aborted": 0}
    pending = []
    while not stop.is_set():
        chosen: List[str] = []
        while len(chosen) < items_per_tx:
            key = keys[rng.randrange(len(keys))]
            if key not in chosen:
                chosen.append(key)
        amounts = [rng.randint(1, 3) for _ in chosen]
        tx = Transaction(coordinator, commutative=commutative)
        try:
            for key in chosen:
                await asyncio.wait_for(
                    _await_future(tx.read(ITEMS_TABLE, key)), 20.0
                )
        except asyncio.TimeoutError:
            # Reads under total partition can starve past their failover
            # budget; skip this attempt, the link will heal.
            continue
        for key, amount in zip(chosen, amounts):
            tx.decrement(ITEMS_TABLE, key, "stock", amount)
        pending.append((tx.commit(), chosen, amounts))
        await asyncio.sleep(0.01)
    # Every commit future must settle — the coordinator re-escalates to
    # the (rotating) master until each option is decided, so an unresolved
    # outcome here is a protocol bug, not chaos.
    for future, chosen, amounts in pending:
        outcome = await asyncio.wait_for(_await_future(future), 60.0)
        if outcome.committed:
            outcomes["committed"] += 1
            for key, amount in zip(chosen, amounts):
                ledger[key] = ledger.get(key, 0) - amount
        else:
            outcomes["aborted"] += 1
    return outcomes


async def _flaky_wan_async(
    topology: Topology, *, clients: int, chaos_s: float
) -> Dict[str, object]:
    from repro.core.antientropy import AntiEntropyAgent
    from repro.core.recovery import RecoveryAgent
    from repro.protocols.base import get_protocol

    descriptor = get_protocol(topology.protocol)
    placement = topology.build_placement()
    config = topology.build_config()
    commutative = descriptor.supports_commutative and config.commutative_enabled
    counters = CounterSet()
    dcs = list(topology.datacenters)
    transport = AsyncioTcpTransport(topology, local_dc=dcs[0], listen=None)
    rng_registry = RngRegistry(seed=topology.seed)
    ledger: Dict[str, int] = {}
    stop = asyncio.Event()
    coordinators = []
    workers = []
    for index in range(clients):
        dc = dcs[index % len(dcs)]
        coordinator = descriptor.make_client(
            transport,
            f"app-{dc}-chaos{index + 1}",
            dc,
            placement=placement,
            config=config,
            counters=counters,
        )
        coordinators.append(coordinator)
        workers.append(
            asyncio.create_task(
                _chaos_client(
                    coordinator,
                    commutative,
                    topology,
                    rng_registry.stream(f"workload.client.{index}"),
                    stop,
                    ledger,
                )
            )
        )
    try:
        await _flaky_wan_nemesis(transport, topology, chaos_s)
        stop.set()
        per_client = await asyncio.gather(*workers)
        committed = sum(o["committed"] for o in per_client)
        aborted = sum(o["aborted"] for o in per_client)

        # Post-heal repair: anti-entropy sweeps re-drive lost visibilities
        # (with a recovery agent for options pending everywhere).
        agent = AntiEntropyAgent(
            transport,
            "antientropy-driver",
            dcs[0],
            placement=placement,
            config=config,
            counters=counters,
        )
        if descriptor.supports_recovery:
            agent.attach_recovery(
                RecoveryAgent(
                    transport,
                    "recovery-driver",
                    dcs[0],
                    placement=placement,
                    config=config,
                    counters=counters,
                )
            )
        keys = topology.item_keys()
        for _round in range(4):
            await asyncio.wait_for(_await_future(agent.sweep(ITEMS_TABLE, keys)), 120.0)

        # Invariants: every replica of every item converged to the
        # ledger's expected stock, and no stock went negative.
        initial = dict(topology.preload_plan())
        violations: List[str] = []
        reader = coordinators[0]
        for key in keys:
            expected = initial[key] + ledger.get(key, 0)
            values = {}
            for dc in dcs:
                reply = await asyncio.wait_for(
                    _await_future(reader.read(ITEMS_TABLE, key, dc=dc)), 30.0
                )
                values[dc] = (reply.version, reply.value.get("stock") if reply.value else None)
            stocks = {stock for _version, stock in values.values()}
            if len(stocks) != 1:
                violations.append(f"{key}: replicas diverge {values}")
                continue
            stock = stocks.pop()
            if stock != expected:
                violations.append(f"{key}: stock {stock} != ledger {expected}")
            elif stock < 0:
                violations.append(f"{key}: negative stock {stock}")
        return {
            "schedule": "flaky-wan",
            "transport": "tcp",
            "committed": committed,
            "aborted": aborted,
            "frames": dict(transport.stats),
            "violations": violations,
            "clean": not violations,
        }
    finally:
        stop.set()
        for task in workers:
            if not task.done():
                task.cancel()
        await _shutdown_servers(transport, sorted(topology.nodes))
        await transport.close()


def run_flaky_wan_parity(
    topology_path: str,
    *,
    clients: int = 3,
    chaos_s: float = 4.0,
    spawn_servers: bool = True,
) -> Dict[str, object]:
    """The flaky-wan schedule against the TCP backend, end to end.

    Returns a verdict dict; ``clean`` means zero post-heal invariant
    violations (replica convergence + ledger consistency + the stock
    constraint) — the same bar the simulator scenario sets.
    """
    topology = Topology.load(topology_path)
    processes: Dict[str, subprocess.Popen] = {}
    if spawn_servers:
        processes = spawn_server_processes(topology_path, topology)
    try:
        result = asyncio.run(
            _flaky_wan_async(topology, clients=clients, chaos_s=chaos_s)
        )
    except BaseException:
        for process in processes.values():
            process.kill()
        raise
    if processes:
        result["servers_killed"] = terminate_servers(processes)
    return result


def run_tcp_workload(
    topology_path: str,
    *,
    clients: int = 3,
    transactions_per_client: int = 10,
    client_dcs: Optional[Sequence[str]] = None,
    tx_timeout_s: float = 30.0,
    spawn_servers: bool = False,
    shutdown_servers: Optional[bool] = None,
) -> Dict[str, object]:
    """Drive the micro workload against a live TCP cluster.

    With ``spawn_servers=True`` the driver launches one ``repro serve``
    subprocess per topology node first and shuts them down afterwards
    (asserting clean exits); otherwise it expects the cluster to already
    be listening.
    """
    topology = Topology.load(topology_path)
    if shutdown_servers is None:
        shutdown_servers = spawn_servers
    processes: Dict[str, subprocess.Popen] = {}
    if spawn_servers:
        processes = spawn_server_processes(topology_path, topology)
    try:
        result = asyncio.run(
            _run_workload_async(
                topology,
                clients=clients,
                transactions_per_client=transactions_per_client,
                client_dcs=client_dcs,
                tx_timeout_s=tx_timeout_s,
                shutdown_servers=shutdown_servers,
            )
        )
    except BaseException:
        for process in processes.values():
            process.kill()
        raise
    if processes:
        killed = terminate_servers(processes)
        result["servers"] = len(processes)
        result["servers_killed"] = killed
    return result
