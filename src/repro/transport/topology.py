"""Cluster topology files for the TCP backend.

``repro serve`` and ``repro run --transport tcp`` share one JSON file
describing the deployment, so every process independently derives the
same placement, configuration and preloaded data:

.. code-block:: json

    {
      "datacenters": ["us-west", "us-east", "eu-west"],
      "partitions_per_table": 1,
      "protocol": "mdcc",
      "seed": 1,
      "codec": "json",
      "nodes": {
        "storage-us-west-0": {"dc": "us-west", "host": "127.0.0.1", "port": 7101}
      },
      "workload": {"name": "micro", "items": 200, "min_stock": 100, "max_stock": 200}
    }

``nodes`` lists only the *server* processes (one per storage node);
driver/coordinator processes dial in and are reached over learned reply
routes, so they need no address.  ``seed`` feeds both the data preload
(every replica loads identical stock values) and the framing-layer
nemesis RNG.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import MDCCConfig
from repro.core.options import RecordId
from repro.core.topology import ReplicaMap
from repro.protocols.base import get_protocol, protocols_supporting
from repro.sim.rng import RngRegistry
from repro.transport.base import TransportError

__all__ = ["NodeAddress", "Topology", "make_local_topology"]


@dataclass(frozen=True)
class NodeAddress:
    dc: str
    host: str
    port: int


@dataclass
class Topology:
    """A parsed topology file."""

    datacenters: Tuple[str, ...]
    nodes: Dict[str, NodeAddress]
    protocol: str = "mdcc"
    partitions_per_table: int = 1
    seed: int = 1
    codec: str = "json"
    workload: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        try:
            descriptor = get_protocol(self.protocol)
        except ValueError:
            descriptor = None
        if descriptor is None or not descriptor.supports_tcp:
            supported = protocols_supporting("supports_tcp")
            raise TransportError(
                f"TCP topologies support the MDCC variants and Replicated "
                f"Commit {supported}; got {self.protocol!r}"
            )
        for node_id, address in self.nodes.items():
            if address.dc not in self.datacenters:
                raise TransportError(
                    f"node {node_id!r} lives in unknown DC {address.dc!r}"
                )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, raw: Dict) -> "Topology":
        nodes = {
            node_id: NodeAddress(
                dc=spec["dc"], host=spec.get("host", "127.0.0.1"), port=int(spec["port"])
            )
            for node_id, spec in raw["nodes"].items()
        }
        return cls(
            datacenters=tuple(raw["datacenters"]),
            nodes=nodes,
            protocol=raw.get("protocol", "mdcc"),
            partitions_per_table=int(raw.get("partitions_per_table", 1)),
            seed=int(raw.get("seed", 1)),
            codec=raw.get("codec", "json"),
            workload=dict(raw.get("workload", {})),
        )

    @classmethod
    def load(cls, path: str) -> "Topology":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def as_dict(self) -> Dict:
        return {
            "datacenters": list(self.datacenters),
            "partitions_per_table": self.partitions_per_table,
            "protocol": self.protocol,
            "seed": self.seed,
            "codec": self.codec,
            "nodes": {
                node_id: {"dc": a.dc, "host": a.host, "port": a.port}
                for node_id, a in sorted(self.nodes.items())
            },
            "workload": dict(self.workload),
        }

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    # ------------------------------------------------------------------
    # Derived cluster objects
    # ------------------------------------------------------------------
    def dc_of(self, node_id: str) -> Optional[str]:
        address = self.nodes.get(node_id)
        return address.dc if address else None

    def build_placement(self) -> ReplicaMap:
        return ReplicaMap(
            self.datacenters, partitions_per_table=self.partitions_per_table
        )

    def build_config(self, config: Optional[MDCCConfig] = None) -> MDCCConfig:
        if config is not None:
            return config
        return get_protocol(self.protocol).default_config(len(self.datacenters))

    # ------------------------------------------------------------------
    # Workload preload
    # ------------------------------------------------------------------
    def item_keys(self) -> List[str]:
        count = int(self.workload.get("items", 100))
        return [f"item:{i:06d}" for i in range(count)]

    def preload_plan(self) -> List[Tuple[str, int]]:
        """(key, stock) for every item — identical in every process.

        Mirrors :meth:`repro.workloads.micro.MicroBenchmark.populate`: the
        ``micro.populate`` stream of the topology seed drives the stock
        draw, so servers preloading their replicas and the driver tracking
        its ledger agree byte-for-byte without any data transfer.
        """
        rng = RngRegistry(seed=self.seed).stream("micro.populate")
        min_stock = int(self.workload.get("min_stock", 100))
        max_stock = int(self.workload.get("max_stock", 200))
        return [(key, rng.randint(min_stock, max_stock)) for key in self.item_keys()]

    def local_records(self, node_id: str, placement: Optional[ReplicaMap] = None):
        """(key, stock) pairs whose replica set includes ``node_id``."""
        placement = placement or self.build_placement()
        for key, stock in self.preload_plan():
            if node_id in placement.replicas(RecordId("items", key)):
                yield key, stock


def make_local_topology(
    datacenters=("us-west", "us-east", "eu-west"),
    protocol: str = "mdcc",
    partitions_per_table: int = 1,
    seed: int = 1,
    codec: str = "json",
    base_port: int = 7100,
    host: str = "127.0.0.1",
    ports: Optional[List[int]] = None,
    items: int = 200,
    min_stock: int = 100,
    max_stock: int = 200,
) -> Topology:
    """A loopback topology: every storage node on ``host``, sequential
    ports from ``base_port`` (or explicit ``ports``, e.g. pre-bound free
    ones in tests)."""
    node_ids = [
        ReplicaMap.storage_node_id(dc, partition)
        for dc in datacenters
        for partition in range(partitions_per_table)
    ]
    if ports is None:
        ports = [base_port + index for index in range(len(node_ids))]
    if len(ports) != len(node_ids):
        raise TransportError(
            f"{len(node_ids)} nodes need {len(node_ids)} ports; got {len(ports)}"
        )
    nodes = {}
    index = 0
    for dc in datacenters:
        for partition in range(partitions_per_table):
            nodes[ReplicaMap.storage_node_id(dc, partition)] = NodeAddress(
                dc=dc, host=host, port=ports[index]
            )
            index += 1
    return Topology(
        datacenters=tuple(datacenters),
        nodes=nodes,
        protocol=protocol,
        partitions_per_table=partitions_per_table,
        seed=seed,
        codec=codec,
        workload={
            "name": "micro",
            "items": items,
            "min_stock": min_stock,
            "max_stock": max_stock,
        },
    )
