"""Typed scenario specs: the canonical programmatic entry point.

Every way of running an experiment — the five CLI subcommands, the
benchmark harness, a user script — describes *what to run* with two
frozen dataclasses and hands them to two functions:

* :class:`ClusterSpec` — the deployment: protocol, data centers,
  partitioning, master placement, seed and the MDCC tunables the CLI
  exposes.  :func:`build_cluster` turns one into a running cluster.
* :class:`ScenarioSpec` — the experiment: a :class:`ClusterSpec` plus
  workload, scale, measurement window, workload knobs and (optionally)
  a named fault schedule.  :func:`run_scenario` executes one.

Specs are frozen, validated on construction, and round-trip through
JSON (:meth:`ScenarioSpec.to_json` / :meth:`ScenarioSpec.from_json`),
so an experiment is a reviewable artifact: commit the JSON, re-run it
byte-identically with ``repro run --spec scenario.json``, and find the
same block under ``"spec"`` in every JSON result envelope.

These are the *only* programmatic entry points: the keyword shims that
once accepted a protocol string or a bare
:class:`~repro.faults.schedule.FaultSchedule` are gone.  Knobs with no
spec field (``table_master_dc``, ``migration_policy``, ``rtt_matrix``,
``jitter_sigma``, placement-manager cadences) live on
:func:`repro.db.cluster.build_cluster` directly.

What a protocol can run — adaptive placement, elastic membership, the
single-entity-group partition collapse, whether the γ/batching tunables
configure anything — comes from its
:class:`~repro.protocols.base.Protocol` descriptor; validation here
asks capability flags, never protocol names.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Optional, Tuple, Union

from repro.bench.harness import (
    ExperimentResult,
    ScenarioResult,
    run_geoshift,
    run_micro,
    run_scenario as _harness_run_scenario,
    run_tpcw,
)
from repro.core.config import MDCCConfig
from repro.db.cluster import (
    Cluster,
    build_cluster as _build_cluster,
)
from repro.faults.schedule import NAMED_SCHEDULES, named_schedule
from repro.protocols.base import get_protocol, protocols_supporting
from repro.sim.network import EC2_REGIONS

__all__ = [
    "ClusterSpec",
    "ScenarioSpec",
    "build_cluster",
    "run_scenario",
]

WORKLOADS = ("micro", "tpcw", "geoshift")


@dataclass(frozen=True)
class ClusterSpec:
    """The deployment half of an experiment: what cluster to build.

    Attributes:
        protocol: any of :data:`repro.db.cluster.PROTOCOLS` — the three
            MDCC variants or a baseline.
        datacenters: initial membership; ``None`` means the paper's five
            EC2 regions.
        partitions_per_table: storage nodes per table per data center
            (Megastore* always collapses to 1 — single entity group).
        master_policy: ``"hash"``, ``"adaptive"`` or ``"fixed:<dc>"``;
            ``None`` defers to the context default (``"hash"``, or a
            fault schedule's hint).
        seed: the experiment seed — every RNG stream derives from it.
        gamma_policy / batch_ms / demarcation: the MDCC tunables the CLI
            exposes (γ policy of §3.3.2, visibility batching window,
            §3.4.2 demarcation limit).
        elastic: build the cluster reconfigurable (runtime DC join/leave).
    """

    protocol: str = "mdcc"
    datacenters: Optional[Tuple[str, ...]] = None
    partitions_per_table: int = 2
    master_policy: Optional[str] = None
    seed: int = 1
    gamma_policy: str = "static"
    batch_ms: float = 0.0
    demarcation: bool = True
    elastic: bool = False

    def __post_init__(self) -> None:
        descriptor = get_protocol(self.protocol)  # raises on unknown names
        if self.datacenters is not None:
            object.__setattr__(self, "datacenters", tuple(self.datacenters))
            if len(self.datacenters) < 2:
                raise ValueError("need at least two data centers")
            if len(set(self.datacenters)) != len(self.datacenters):
                raise ValueError("duplicate data center")
        if self.partitions_per_table < 1:
            raise ValueError("partitions_per_table must be positive")
        if self.master_policy == "adaptive" and not descriptor.supports_placement:
            supported = ", ".join(protocols_supporting("supports_placement"))
            raise ValueError(
                "adaptive master placement requires an MDCC variant "
                f"({supported}); got {self.protocol!r}"
            )
        if self.elastic and not descriptor.supports_elastic:
            supported = ", ".join(protocols_supporting("supports_elastic"))
            raise ValueError(
                "elastic membership requires an MDCC variant "
                f"({supported}); got {self.protocol!r}"
            )
        if self.gamma_policy not in ("static", "adaptive"):
            raise ValueError(
                f"unknown gamma_policy {self.gamma_policy!r}; "
                "choose 'static' or 'adaptive'"
            )
        if self.batch_ms < 0:
            raise ValueError("batch_ms must be non-negative")

    @property
    def effective_datacenters(self) -> Tuple[str, ...]:
        return self.datacenters if self.datacenters is not None else EC2_REGIONS

    @property
    def effective_partitions(self) -> int:
        # The paper's Megastore* places all data in a single entity group.
        if get_protocol(self.protocol).single_entity_group:
            return 1
        return self.partitions_per_table

    def config(self) -> Optional[MDCCConfig]:
        """The :class:`MDCCConfig` this spec describes (``None`` for
        protocols the γ/batching/demarcation tunables do not configure)."""
        return get_protocol(self.protocol).make_config(
            len(self.effective_datacenters),
            gamma_policy=self.gamma_policy,
            visibility_batch_ms=self.batch_ms,
            demarcation_enabled=self.demarcation,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol,
            "datacenters": (
                None if self.datacenters is None else list(self.datacenters)
            ),
            "partitions_per_table": self.partitions_per_table,
            "master_policy": self.master_policy,
            "seed": self.seed,
            "gamma_policy": self.gamma_policy,
            "batch_ms": self.batch_ms,
            "demarcation": self.demarcation,
            "elastic": self.elastic,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ClusterSpec":
        return cls(**_checked_fields(cls, data))


@dataclass(frozen=True)
class ScenarioSpec:
    """The experiment half: what to run on a :class:`ClusterSpec`.

    Without ``schedule``, :func:`run_scenario` runs one fault-free
    workload experiment and returns an
    :class:`~repro.bench.harness.ExperimentResult` (``fail_dc`` injects
    the Figure-8 single-outage exception).  With ``schedule`` — one of
    :data:`repro.faults.schedule.NAMED_SCHEDULES` — it replays that
    fault schedule and returns a
    :class:`~repro.bench.harness.ScenarioResult` with the availability
    timeline and post-heal invariant verdicts.  ``victim`` /
    ``replacement`` / ``donor`` parameterize the ``dc-replace``
    elastic-membership schedule only.
    """

    cluster: ClusterSpec = field(default_factory=ClusterSpec)
    workload: Optional[str] = "micro"
    clients: int = 25
    items: int = 1_000
    warmup_s: float = 5.0
    measure_s: float = 30.0
    hotspot: Optional[float] = None
    locality: Optional[float] = None
    phase_s: float = 20.0
    audit: bool = True
    fail_dc: Optional[str] = None
    fail_at_s: Optional[float] = None
    schedule: Optional[str] = None
    bucket_s: float = 5.0
    victim: Optional[str] = None
    replacement: Optional[str] = None
    donor: Optional[str] = None

    def __post_init__(self) -> None:
        if self.workload is None and self.schedule is None:
            raise ValueError("workload is required without a fault schedule")
        if self.workload is not None and self.workload not in WORKLOADS:
            raise ValueError(
                f"unknown workload {self.workload!r}; "
                f"choose from {', '.join(WORKLOADS)}"
            )
        if self.clients < 1 or self.items < 1:
            raise ValueError("clients and items must be positive")
        if self.warmup_s < 0 or self.measure_s <= 0:
            raise ValueError("warmup_s must be >= 0 and measure_s > 0")
        if self.phase_s <= 0 or self.bucket_s <= 0:
            raise ValueError("phase_s and bucket_s must be positive")
        if self.workload != "micro" and (
            self.hotspot is not None or self.locality is not None
        ):
            raise ValueError("hotspot/locality apply to the micro workload")
        if self.schedule is None:
            if self.fail_dc is not None and self.workload != "micro":
                raise ValueError("fail_dc applies to the micro workload")
            if self.fail_at_s is not None and self.fail_dc is None:
                raise ValueError("fail_at_s needs fail_dc")
            for name in ("victim", "replacement", "donor"):
                if getattr(self, name) is not None:
                    raise ValueError(
                        f"{name} parameterizes the dc-replace schedule"
                    )
            return
        if self.schedule not in NAMED_SCHEDULES:
            raise ValueError(
                f"unknown schedule {self.schedule!r}; "
                f"choose from {', '.join(NAMED_SCHEDULES)}"
            )
        if self.fail_dc is not None or self.fail_at_s is not None:
            raise ValueError("fault schedules inject their own failures")
        if self.schedule != "dc-replace":
            for name in ("victim", "replacement", "donor"):
                if getattr(self, name) is not None:
                    raise ValueError(
                        f"{name} parameterizes the dc-replace schedule"
                    )
            return
        datacenters = self.cluster.effective_datacenters
        if self.victim is not None:
            if self.victim not in datacenters:
                raise ValueError(
                    f"victim {self.victim!r} is not in the initial membership"
                )
            if self.victim == datacenters[0]:
                # The reconfig control plane lives in the first DC; failing
                # it stalls the membership operations themselves.
                raise ValueError(
                    f"victim {self.victim!r} hosts the reconfig control "
                    "plane (the first listed data center); pick another "
                    "victim or reorder the data centers"
                )
        if self.donor is not None and (
            self.donor not in datacenters or self.donor == self.victim
        ):
            raise ValueError("donor must be a surviving member of the cluster")
        if self.replacement is not None and self.replacement in datacenters:
            raise ValueError(
                f"replacement {self.replacement!r} is already a member"
            )

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {"cluster": self.cluster.to_dict()}
        for spec_field in fields(self):
            if spec_field.name != "cluster":
                data[spec_field.name] = getattr(self, spec_field.name)
        return data

    def to_json(self) -> str:
        """Canonical byte form: sorted keys, two-space indent, newline."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioSpec":
        checked = _checked_fields(cls, data)
        cluster = checked.get("cluster")
        if isinstance(cluster, dict):
            checked["cluster"] = ClusterSpec.from_dict(cluster)
        return cls(**checked)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError("a scenario spec must be a JSON object")
        return cls.from_dict(data)


def _checked_fields(cls: Any, data: Dict[str, object]) -> Dict[str, Any]:
    """Reject unknown keys loudly — a typo'd spec must not half-apply."""
    known = {spec_field.name for spec_field in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(
            f"unknown {cls.__name__} field(s): {', '.join(unknown)}"
        )
    prepared = dict(data)
    if isinstance(prepared.get("datacenters"), list):
        prepared["datacenters"] = tuple(prepared["datacenters"])
    return prepared


# ----------------------------------------------------------------------
# Canonical entry points
# ----------------------------------------------------------------------
def build_cluster(spec: ClusterSpec = ClusterSpec(), **unexpected: object) -> Cluster:
    """Build the deployment a :class:`ClusterSpec` describes.

    Knobs without spec fields (``table_master_dc``, ``migration_policy``,
    ``rtt_matrix``, ``jitter_sigma``, placement-manager cadences) live on
    :func:`repro.db.cluster.build_cluster` directly.
    """
    if not isinstance(spec, ClusterSpec):
        raise TypeError(
            "build_cluster takes a repro.api.ClusterSpec; the legacy "
            "protocol-string surface was removed "
            "(use repro.db.cluster.build_cluster for raw keywords)"
        )
    if unexpected:
        raise TypeError(
            "a ClusterSpec is self-contained; unexpected keyword(s): "
            + ", ".join(sorted(unexpected))
        )
    kwargs: Dict[str, Any] = dict(
        partitions_per_table=spec.effective_partitions,
        master_policy=spec.master_policy or "hash",
        seed=spec.seed,
        config=spec.config(),
        elastic=spec.elastic,
    )
    if spec.datacenters is not None:
        kwargs["datacenters"] = spec.datacenters
    return _build_cluster(spec.protocol, **kwargs)


def run_scenario(
    spec: ScenarioSpec, **unexpected: object
) -> Union[ExperimentResult, ScenarioResult]:
    """Run the experiment a :class:`ScenarioSpec` describes.

    Returns an :class:`ExperimentResult` (no ``schedule``) or a
    :class:`ScenarioResult` (named fault schedule).
    """
    if not isinstance(spec, ScenarioSpec):
        raise TypeError(
            "run_scenario takes a repro.api.ScenarioSpec; the legacy "
            "FaultSchedule surface was removed "
            "(use repro.bench.harness.run_scenario for raw keywords)"
        )
    if unexpected:
        raise TypeError(
            "a ScenarioSpec is self-contained; unexpected keyword(s): "
            + ", ".join(sorted(unexpected))
        )
    if spec.schedule is not None:
        return _run_scheduled(spec)
    return _run_experiment(spec)


def _run_experiment(spec: ScenarioSpec) -> ExperimentResult:
    cluster = spec.cluster
    if cluster.datacenters is not None:
        raise ValueError(
            "custom data-center sets require a fault schedule scenario; "
            "fault-free experiments run the paper's five-region deployment"
        )
    if cluster.elastic:
        raise ValueError("elastic clusters require a fault schedule scenario")
    kwargs: Dict[str, Any] = dict(
        num_clients=spec.clients,
        num_items=spec.items,
        warmup_ms=spec.warmup_s * 1_000.0,
        measure_ms=spec.measure_s * 1_000.0,
        seed=cluster.seed,
        partitions_per_table=cluster.partitions_per_table,
        audit=spec.audit,
        config=cluster.config(),
        master_policy=cluster.master_policy or "hash",
    )
    if spec.workload == "tpcw":
        return run_tpcw(cluster.protocol, **kwargs)
    if spec.workload == "geoshift":
        return run_geoshift(
            cluster.protocol, phase_ms=spec.phase_s * 1_000.0, **kwargs
        )
    fail_dc_at: Optional[Tuple[str, float]] = None
    if spec.fail_dc is not None:
        at_s = spec.fail_at_s if spec.fail_at_s is not None else spec.measure_s / 2
        fail_dc_at = (spec.fail_dc, (spec.warmup_s + at_s) * 1_000.0)
    return run_micro(
        cluster.protocol,
        hotspot_fraction=spec.hotspot,
        locality=spec.locality,
        fail_dc_at=fail_dc_at,
        **kwargs,
    )


def _run_scheduled(spec: ScenarioSpec) -> ScenarioResult:
    assert spec.schedule is not None  # run_scenario routes on this
    cluster = spec.cluster
    schedule_kwargs: Dict[str, Any] = dict(
        start_ms=spec.warmup_s * 1_000.0,
        duration_ms=spec.measure_s * 1_000.0,
    )
    for name in ("victim", "replacement", "donor"):
        value = getattr(spec, name)
        if value is not None:
            schedule_kwargs[name] = value
    schedule = named_schedule(spec.schedule, **schedule_kwargs)
    run_kwargs: Dict[str, Any] = dict(
        workload=spec.workload,
        variant=cluster.protocol,
        num_clients=spec.clients,
        num_items=spec.items,
        warmup_ms=spec.warmup_s * 1_000.0,
        measure_ms=spec.measure_s * 1_000.0,
        seed=cluster.seed,
        partitions_per_table=cluster.partitions_per_table,
        master_policy=cluster.master_policy,
        config=cluster.config(),
        bucket_ms=spec.bucket_s * 1_000.0,
        audit=spec.audit,
        elastic=cluster.elastic,
    )
    if cluster.datacenters is not None:
        run_kwargs["datacenters"] = cluster.datacenters
    return _harness_run_scenario(schedule, **run_kwargs)
