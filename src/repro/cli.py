"""Command-line interface: run any protocol/workload combination.

A downstream user's entry point to the reproduction without writing a
script::

    python -m repro run --protocol mdcc --workload micro --clients 25
    python -m repro run --protocol 2pc --workload tpcw --measure-s 20
    python -m repro compare --protocols mdcc,2pc,qw4 --workload micro
    python -m repro run --protocol mdcc --fail-dc us-east --fail-at-s 30
    python -m repro run --protocol multi --workload geoshift --master-policy adaptive
    python -m repro chaos dc-outage --variant multi --seed 7
    python -m repro reconfig --datacenters us-west,us-east,eu-west --seed 7
    python -m repro list

``run`` executes one experiment and prints a summary (or ``--json``);
``compare`` runs several protocols on the identical workload and prints
the Figure-3-style comparison table; ``chaos`` replays a named fault
schedule (:mod:`repro.faults`) against one MDCC variant and prints the
scenario verdict as JSON — deterministic for a given seed, so two runs
diff empty; ``reconfig`` replays the elastic-membership disaster-replace
lifecycle (outage → decommission → snapshot-bootstrapped replacement
join) and reports the membership history alongside the verdict;
``list`` enumerates the available protocols, workloads, master policies
and chaos schedules.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.api import ClusterSpec, ScenarioSpec, run_scenario
from repro.bench.harness import ExperimentResult, ScenarioResult
from repro.db.cluster import PROTOCOLS
from repro.protocols.base import get_protocol, protocols_supporting
from repro.faults.schedule import NAMED_SCHEDULES

__all__ = ["build_parser", "main"]

WORKLOADS = ("micro", "tpcw", "geoshift")

_PROTOCOL_NOTES = {
    "mdcc": "full MDCC: fast ballots + commutative updates + demarcation",
    "fast": "fast ballots without commutative update support",
    "multi": "master-routed classic ballots (Multi-Paxos per record)",
    "repcommit": "Replicated Commit: Paxos across DCs over per-DC 2PC",
    "2pc": "two-phase commit over the same replicas",
    "qw3": "quorum writes, write quorum 3 (eventually consistent)",
    "qw4": "quorum writes, write quorum 4 (eventually consistent)",
    "megastore": "Megastore*: one Paxos log per entity group",
}

_WORKLOAD_NOTES = {
    "micro": "§5.3 buy transaction; --hotspot / --locality knobs",
    "tpcw": "TPC-W ordering mix (database part of the web interactions)",
    "geoshift": "follow-the-sun: the dominant write-origin DC rotates",
}

_MASTER_POLICY_NOTES = {
    "hash": "static, uniform by key hash (the paper's Multi setup)",
    "fixed:<dc>": "static, all masters in one data center",
    "table": "static, the table schema's default master DC (Python API only)",
    "adaptive": "dynamic: mastership migrates to the dominant write origin",
}

_CHAOS_NOTES = {
    "dc-outage": "Figure 8: one full data-center outage and recovery",
    "rolling-partitions": "successive N-way splits sweeping the fabric",
    "flaky-wan": "degraded links: latency, jitter, loss, a flapping route",
    "coordinator-crash": "dangling transactions + a master crash/re-election",
    "follow-the-sun-outage": "geoshift + adaptive placement; hotspot DC dies",
    "dc-replace": "elastic membership: outage, decommission, replacement join",
}


def _master_policy(value: str) -> str:
    if value.startswith("fixed:"):
        from repro.sim.network import EC2_REGIONS

        dc = value.split(":", 1)[1]
        if dc not in EC2_REGIONS:
            raise argparse.ArgumentTypeError(
                f"unknown data center {dc!r}; choose from {', '.join(EC2_REGIONS)}"
            )
        return value
    if value in ("hash", "adaptive"):
        return value
    if value == "table":
        # Per-table defaults have no CLI syntax; the workloads here would
        # crash on the first proposal without them.
        raise argparse.ArgumentTypeError(
            "the 'table' policy needs per-table master defaults and is only "
            "available through the Python API (build_cluster(table_master_dc=...))"
        )
    raise argparse.ArgumentTypeError(
        f"unknown master policy {value!r}; choose hash, adaptive or fixed:<dc>"
    )


def _datacenter_list(value: str) -> tuple:
    from repro.sim.network import EC2_REGIONS

    names = tuple(part.strip() for part in value.split(",") if part.strip())
    if len(names) < 2:
        raise argparse.ArgumentTypeError("need at least two data centers")
    if len(set(names)) != len(names):
        raise argparse.ArgumentTypeError("duplicate data center")
    unknown = [name for name in names if name not in EC2_REGIONS]
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown data center(s) {', '.join(unknown)}; "
            f"choose from {', '.join(EC2_REGIONS)}"
        )
    return names


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MDCC (EuroSys'13) reproduction — run simulated "
        "geo-replicated transaction experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one protocol on one workload")
    _experiment_args(run)
    run.add_argument(
        "--protocol", choices=PROTOCOLS, default="mdcc", help="protocol to run"
    )
    run.add_argument("--json", action="store_true", help="machine-readable output")
    run.add_argument(
        "--spec",
        default=None,
        metavar="FILE",
        help="run the ScenarioSpec JSON in FILE ('-' for stdin); the spec "
        "fully defines the experiment, so other experiment flags are "
        "ignored (see repro.api.ScenarioSpec.to_json)",
    )
    run.add_argument(
        "--transport",
        choices=("sim", "tcp"),
        default="sim",
        help="sim (deterministic, default) or tcp (live local cluster; "
        "needs --topology)",
    )
    run.add_argument(
        "--topology",
        default=None,
        help="tcp only: topology file (see `repro topology` to generate one)",
    )
    run.add_argument(
        "--spawn-servers",
        action="store_true",
        help="tcp only: launch `repro serve` subprocesses for every "
        "topology node, shut them down afterwards",
    )
    run.add_argument(
        "--txns-per-client",
        type=int,
        default=10,
        help="tcp only: transactions each driver client issues",
    )
    run.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="record a causal trace of every transaction to FILE "
        "(repro.trace artifact JSON); the run's own output is unchanged",
    )

    trace = sub.add_parser(
        "trace",
        help="run a scenario with causal tracing on and emit the trace artifact",
        description="Runs one MDCC-variant scenario with the deterministic "
        "tracer installed and writes the trace artifact: every transaction's "
        "spans (fast-accept, phase1-takeover, phase2-tally, visibility "
        "fan-out, recovery escalation) with abort/slow-path attributions, "
        "plus per-node counter and latency metrics.  Byte-identical across "
        "runs at the same seed.  --explain TXN_ID prints one transaction's "
        "causal timeline as an indented tree.",
    )
    _experiment_args(trace)
    trace.add_argument(
        "--protocol",
        choices=protocols_supporting("supports_tracing"),
        default="mdcc",
        help="protocol to trace (must emit causal spans)",
    )
    trace.add_argument(
        "--schedule",
        choices=NAMED_SCHEDULES,
        default=None,
        help="optionally replay a named fault schedule while tracing",
    )
    trace.add_argument(
        "--out",
        default="-",
        metavar="FILE",
        help="trace artifact path ('-' for stdout, the default)",
    )
    trace.add_argument(
        "--explain",
        default=None,
        metavar="TXN_ID",
        help="print the causal timeline of one transaction instead of "
        "the artifact (combine with --out FILE to also keep the artifact)",
    )

    serve = sub.add_parser(
        "serve",
        help="run one storage node as a real process over asyncio TCP",
        description="Hosts a single MDCC storage node listening on its "
        "topology address.  One process per node; shut down with SIGTERM "
        "or a transport-level shutdown control frame (the driver sends "
        "one when --spawn-servers is used).",
    )
    serve.add_argument("--topology", required=True, help="topology JSON file")
    serve.add_argument("--node", required=True, help="node id to host")

    topo = sub.add_parser(
        "topology",
        help="generate a loopback topology file for the TCP backend",
    )
    topo.add_argument("--out", required=True, help="output path")
    topo.add_argument(
        "--datacenters",
        type=_datacenter_list,
        default=("us-west", "us-east", "eu-west"),
    )
    topo.add_argument(
        "--protocol",
        choices=protocols_supporting("supports_tcp"),
        default="mdcc",
    )
    topo.add_argument("--partitions", type=int, default=1)
    topo.add_argument("--seed", type=int, default=1)
    topo.add_argument("--codec", choices=("json", "msgpack"), default="json")
    topo.add_argument("--base-port", type=int, default=7100)
    topo.add_argument("--items", type=int, default=200)

    bench = sub.add_parser(
        "bench",
        help="deterministic simulator-core perf baseline (BENCH_sim_core.json)",
        description="Runs a fixed micro workload on every MDCC variant and "
        "emits simulated events/sec + commits/sec.  Byte-identical across "
        "runs at the same seed; wall-clock numbers go to stderr only.",
    )
    bench.add_argument("--seed", type=int, default=7)
    bench.add_argument(
        "--output",
        default="BENCH_sim_core.json",
        help="artifact path ('-' for stdout)",
    )
    bench.add_argument(
        "--measure-s",
        type=float,
        default=None,
        help="override the fixed measurement window (changes the artifact!)",
    )
    bench.add_argument(
        "--compare",
        metavar="BASELINE",
        default=None,
        help="gate against a committed baseline JSON: exit 1 on any "
        "deterministic drift or a >10%% events/wall-s regression",
    )
    bench.add_argument(
        "--regression-tolerance",
        type=float,
        default=None,
        help="override the --compare wall-clock tolerance (default 0.10)",
    )

    compare = sub.add_parser(
        "compare", help="run several protocols on the identical workload"
    )
    _experiment_args(compare)
    compare.add_argument(
        "--protocols",
        default="mdcc,2pc,qw4",
        help="comma-separated protocol list (default: mdcc,2pc,qw4)",
    )
    compare.add_argument("--json", action="store_true")

    chaos = sub.add_parser(
        "chaos",
        help="replay a named fault schedule against one MDCC variant",
        description="Runs a chaos scenario (see `repro list` for the named "
        "schedules) and prints the scenario verdict as JSON: availability "
        "timeline, invariant-checker results, recovery outcomes and the "
        "fault event log.  Deterministic for a given --seed.",
    )
    chaos.add_argument(
        "schedule", choices=NAMED_SCHEDULES, help="named fault schedule"
    )
    chaos.add_argument(
        "--variant",
        choices=tuple(
            name for name in PROTOCOLS if get_protocol(name).chaos_schedules
        ),
        default="mdcc",
        help="protocol under test (see `repro list` for per-protocol "
        "schedule support)",
    )
    chaos.add_argument("--workload", choices=WORKLOADS, default=None)
    chaos.add_argument("--clients", type=int, default=20)
    chaos.add_argument("--items", type=int, default=300)
    chaos.add_argument("--warmup-s", type=float, default=5.0)
    chaos.add_argument("--measure-s", type=float, default=60.0)
    chaos.add_argument("--seed", type=int, default=7)
    chaos.add_argument(
        "--bucket-s",
        type=float,
        default=5.0,
        help="availability-timeline bucket width in seconds",
    )
    chaos.add_argument(
        "--master-policy",
        type=_master_policy,
        default=None,
        help="override the schedule's master-policy hint",
    )
    chaos.add_argument(
        "--events",
        action="store_true",
        help="include the full chaos event log in the output",
    )
    chaos.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="record a causal trace of the scenario to FILE",
    )

    reconfig = sub.add_parser(
        "reconfig",
        help="replay the elastic-membership dc-replace lifecycle",
        description="Builds an elastic cluster, runs a workload while one "
        "data center fails, is decommissioned (epoch-fenced quorum "
        "shrink + mastership evacuation) and is replaced by a "
        "snapshot-bootstrapped join, then prints the scenario verdict "
        "plus the membership history as JSON.  Deterministic for a "
        "given --seed; exits 1 on any invariant violation or if the "
        "replacement was not admitted.",
    )
    reconfig.add_argument(
        "--variant",
        choices=protocols_supporting("supports_elastic"),
        default="mdcc",
        help="protocol under test (elastic membership required)",
    )
    reconfig.add_argument(
        "--datacenters",
        type=_datacenter_list,
        default=None,
        help="comma-separated initial membership (default: all five regions)",
    )
    reconfig.add_argument(
        "--victim", default="us-east", help="data center that fails and leaves"
    )
    reconfig.add_argument(
        "--replacement",
        default="us-east-2",
        help="name of the joining replacement DC (clones the victim's links)",
    )
    reconfig.add_argument(
        "--donor", default="us-west", help="DC that streams the bootstrap snapshot"
    )
    reconfig.add_argument("--workload", choices=WORKLOADS, default=None)
    reconfig.add_argument("--clients", type=int, default=20)
    reconfig.add_argument("--items", type=int, default=300)
    reconfig.add_argument("--warmup-s", type=float, default=5.0)
    reconfig.add_argument("--measure-s", type=float, default=60.0)
    reconfig.add_argument("--seed", type=int, default=7)
    reconfig.add_argument(
        "--bucket-s",
        type=float,
        default=5.0,
        help="availability-timeline bucket width in seconds",
    )
    reconfig.add_argument(
        "--events",
        action="store_true",
        help="include the full chaos event log in the output",
    )
    reconfig.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="record a causal trace of the scenario to FILE",
    )

    lister = sub.add_parser(
        "list",
        help="enumerate protocols, workloads, master policies and "
        "chaos schedules",
    )
    lister.add_argument("--json", action="store_true")

    from repro.analysis.cli import add_analyze_parser

    add_analyze_parser(sub)
    return parser


def _experiment_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workload", choices=WORKLOADS, default="micro"
    )
    parser.add_argument("--clients", type=int, default=25)
    parser.add_argument("--items", type=int, default=1_000)
    parser.add_argument("--warmup-s", type=float, default=5.0)
    parser.add_argument("--measure-s", type=float, default=30.0)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--hotspot",
        type=float,
        default=None,
        help="hot-spot fraction of the table, e.g. 0.02 (micro only)",
    )
    parser.add_argument(
        "--locality",
        type=float,
        default=None,
        help="fraction of txs touching locally-mastered records (micro only)",
    )
    parser.add_argument(
        "--gamma-policy", choices=("static", "adaptive"), default="static"
    )
    parser.add_argument(
        "--master-policy",
        type=_master_policy,
        default="hash",
        help="master placement: hash, adaptive or fixed:<dc> "
        "(adaptive requires an MDCC variant)",
    )
    parser.add_argument(
        "--phase-s",
        type=float,
        default=20.0,
        help="geoshift only: seconds the sun stays over one region",
    )
    parser.add_argument(
        "--batch-ms",
        type=float,
        default=0.0,
        help="visibility batching window (MDCC variants)",
    )
    parser.add_argument(
        "--no-demarcation",
        action="store_true",
        help="disable the quorum demarcation limit (unsafe; for study)",
    )
    parser.add_argument(
        "--fail-dc",
        default=None,
        help="data center to fail mid-run (e.g. us-east)",
    )
    parser.add_argument(
        "--fail-at-s",
        type=float,
        default=None,
        help="simulated seconds into the run at which --fail-dc goes dark",
    )
    parser.add_argument(
        "--no-audit", action="store_true", help="skip post-run consistency audits"
    )


def _cluster_spec_from_args(
    args: argparse.Namespace, protocol: str, *, elastic: bool = False
) -> ClusterSpec:
    """Argparse flags -> typed deployment spec (one mapping for all
    subcommands; flags a subcommand lacks fall back to spec defaults)."""
    try:
        return ClusterSpec(
            protocol=protocol,
            datacenters=getattr(args, "datacenters", None),
            master_policy=getattr(args, "master_policy", None),
            seed=args.seed,
            gamma_policy=getattr(args, "gamma_policy", "static"),
            batch_ms=getattr(args, "batch_ms", 0.0),
            demarcation=not getattr(args, "no_demarcation", False),
            elastic=elastic,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))


def _spec_from_args(
    args: argparse.Namespace,
    protocol: str,
    *,
    schedule: Optional[str] = None,
    elastic: bool = False,
) -> ScenarioSpec:
    """The one place argparse namespaces become scenario specs — every
    experiment-running subcommand funnels through here, so the flag ->
    spec-field mapping (and its validation) lives in exactly one spot."""
    dc_replace = schedule == "dc-replace"
    try:
        return ScenarioSpec(
            cluster=_cluster_spec_from_args(args, protocol, elastic=elastic),
            workload=getattr(args, "workload", "micro"),
            clients=args.clients,
            items=args.items,
            warmup_s=args.warmup_s,
            measure_s=args.measure_s,
            hotspot=getattr(args, "hotspot", None),
            locality=getattr(args, "locality", None),
            phase_s=getattr(args, "phase_s", 20.0),
            audit=not getattr(args, "no_audit", False),
            fail_dc=getattr(args, "fail_dc", None),
            fail_at_s=getattr(args, "fail_at_s", None),
            schedule=schedule,
            bucket_s=getattr(args, "bucket_s", 5.0),
            victim=getattr(args, "victim", None) if dc_replace else None,
            replacement=getattr(args, "replacement", None) if dc_replace else None,
            donor=getattr(args, "donor", None) if dc_replace else None,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))


def _run_one(protocol: str, args: argparse.Namespace):
    spec = _spec_from_args(args, protocol)
    return spec, _run_traced(
        args.seed, getattr(args, "trace", None), lambda: run_scenario(spec)
    )


def _as_dict(result: ExperimentResult, spec: ScenarioSpec) -> dict:
    return {
        "protocol": result.protocol,
        "commits": result.commits,
        "aborts": result.aborts,
        "median_ms": result.median_ms,
        "p90_ms": result.p90_ms,
        "p99_ms": result.p99_ms,
        "throughput_tps": result.throughput_tps,
        "audit_problems": len(result.audit_problems),
        "constraint_violations": result.constraint_violations,
        "divergent_records": result.divergent_records,
        "master_policy": result.extra.get("master_policy", "hash"),
        "migrations": result.extra.get("migrations", 0),
        "spec": spec.to_dict(),
    }


def _scenario_payload(
    result: ScenarioResult, spec: ScenarioSpec, include_events: bool
) -> dict:
    payload = result.as_dict()
    payload["spec"] = spec.to_dict()
    # Stable schema: the count is always present; the (possibly long)
    # event list only on request, and always as a list.
    payload["chaos_event_count"] = len(payload["chaos_events"])
    if not include_events:
        del payload["chaos_events"]
    return payload


def _run_traced(seed: int, trace_path: Optional[str], runner):
    """Run ``runner`` with tracing installed when ``trace_path`` is set.

    The trace artifact goes to ``trace_path``; the runner's own result
    (and therefore the command's stdout envelope) is unchanged — the
    simulated trajectory is byte-identical with tracing on or off.
    """
    if trace_path is None:
        return runner()
    from repro.trace import (
        MetricsRegistry,
        Tracer,
        build_artifact,
        render_artifact_json,
    )
    from repro.trace import runtime as trace_runtime

    tracer = Tracer(seed=seed)
    registry = MetricsRegistry()
    trace_runtime.install(tracer, registry)
    try:
        result = runner()
    finally:
        trace_runtime.uninstall()
    artifact = build_artifact(tracer, registry)
    with open(trace_path, "w", encoding="utf-8") as handle:
        handle.write(render_artifact_json(artifact))
    print(
        f"wrote {trace_path} ({artifact['summary']['spans']} spans, "
        f"{artifact['summary']['traces']} traces)",
        file=sys.stderr,
    )
    return result


def _run_trace(args: argparse.Namespace) -> int:
    """``repro trace``: one traced scenario, artifact + timeline views."""
    from repro.trace import (
        MetricsRegistry,
        Tracer,
        build_artifact,
        render_artifact_json,
        render_explain,
    )
    from repro.trace import runtime as trace_runtime
    from repro.trace.explain import spans_for_txid

    if args.schedule is not None:
        _check_schedule_support(args.protocol, args.schedule)
    spec = _spec_from_args(args, args.protocol, schedule=args.schedule)
    tracer = Tracer(seed=args.seed)
    registry = MetricsRegistry()
    trace_runtime.install(tracer, registry)
    try:
        result = run_scenario(spec)
    finally:
        trace_runtime.uninstall()
    if isinstance(result, ScenarioResult):
        payload = _scenario_payload(result, spec, include_events=False)
    else:
        payload = _as_dict(result, spec)
    artifact = build_artifact(tracer, registry, result=payload)
    rendered = render_artifact_json(artifact)
    if args.out == "-":
        if args.explain is None:
            sys.stdout.write(rendered)
    else:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(
            f"wrote {args.out} ({artifact['summary']['spans']} spans, "
            f"{artifact['summary']['traces']} traces)",
            file=sys.stderr,
        )
    if args.explain is not None:
        print(render_explain(tracer, args.explain).rstrip("\n"))
        if not spans_for_txid(tracer, args.explain):
            return 1
    return 0


def _check_schedule_support(protocol: str, schedule: str) -> None:
    """A schedule outside the protocol's gated set is a usage error, not
    a scenario: its guarantees are not defined under that fault."""
    supported = get_protocol(protocol).chaos_schedules
    if schedule not in supported:
        raise SystemExit(
            f"protocol {protocol!r} is not gated on schedule {schedule!r}; "
            f"supported schedules: {', '.join(supported)}"
        )


def _run_chaos(args: argparse.Namespace) -> int:
    _check_schedule_support(args.variant, args.schedule)
    spec = _spec_from_args(args, args.variant, schedule=args.schedule)
    result = _run_traced(args.seed, args.trace, lambda: run_scenario(spec))
    payload = _scenario_payload(result, spec, args.events)
    print(json.dumps(payload, indent=2))
    return 0 if result.clean else 1


def _run_reconfig(args: argparse.Namespace) -> int:
    spec = _spec_from_args(
        args, args.variant, schedule="dc-replace", elastic=True
    )
    result = _run_traced(args.seed, args.trace, lambda: run_scenario(spec))
    payload = _scenario_payload(result, spec, args.events)
    membership = payload["membership"] or {}
    # The replacement must be a member AND have been admitted inside the
    # scenario window — an admission that only lands after the
    # post-scenario heal means the join never actually ran under fault.
    window_ms = (spec.warmup_s + spec.measure_s) * 1_000.0
    replaced = spec.replacement in membership.get("datacenters", []) and any(
        entry["event"] == "admitted"
        and entry["dc"] == spec.replacement
        and entry["t_ms"] <= window_ms
        for entry in membership.get("history", [])
    )
    payload["replacement_admitted"] = replaced
    print(json.dumps(payload, indent=2))
    return 0 if result.clean and replaced else 1


def _run_spec_file(args: argparse.Namespace) -> int:
    """``repro run --spec scenario.json``: the spec file IS the experiment."""
    if args.spec == "-":
        text = sys.stdin.read()
    else:
        with open(args.spec, "r", encoding="utf-8") as handle:
            text = handle.read()
    try:
        spec = ScenarioSpec.from_json(text)
    except (ValueError, TypeError) as exc:
        raise SystemExit(f"bad scenario spec {args.spec!r}: {exc}")
    result = _run_traced(
        spec.cluster.seed, args.trace, lambda: run_scenario(spec)
    )
    if isinstance(result, ScenarioResult):
        payload = _scenario_payload(result, spec, include_events=False)
        print(json.dumps(payload, indent=2))
        return 0 if result.clean else 1
    if args.json:
        print(json.dumps(_as_dict(result, spec), indent=2))
    else:
        _print_table([result])
    return 0


def _run_list(as_json: bool) -> int:
    catalogue = {
        "protocols": _PROTOCOL_NOTES,
        "workloads": _WORKLOAD_NOTES,
        "master_policies": _MASTER_POLICY_NOTES,
        "chaos_schedules": _CHAOS_NOTES,
    }
    if as_json:
        print(json.dumps(catalogue, indent=2))
        return 0
    for section, entries in catalogue.items():
        print(section)
        width = max(len(name) for name in entries)
        for name, note in entries.items():
            print(f"  {name:<{width}}  {note}")
        print()
    return 0


def _print_table(results: List[ExperimentResult]) -> None:
    header = (
        f"{'protocol':>10} {'median':>8} {'p90':>8} {'p99':>8} "
        f"{'commits':>8} {'aborts':>8} {'tps':>7} {'audit':>6}"
    )
    print(header)
    print("-" * len(header))
    for r in results:
        audit = "clean" if not r.audit_problems and not r.constraint_violations else "DIRTY"
        median = f"{r.median_ms:.1f}" if r.median_ms is not None else "-"
        p90 = f"{r.p90_ms:.1f}" if r.p90_ms is not None else "-"
        p99 = f"{r.p99_ms:.1f}" if r.p99_ms is not None else "-"
        print(
            f"{r.protocol:>10} {median:>8} {p90:>8} {p99:>8} "
            f"{r.commits:>8} {r.aborts:>8} {r.throughput_tps:>7.1f} {audit:>6}"
        )


def _run_serve(args: argparse.Namespace) -> int:
    from repro.transport.runner import serve_node

    return serve_node(args.topology, args.node)


def _run_topology(args: argparse.Namespace) -> int:
    from repro.transport.topology import make_local_topology

    topology = make_local_topology(
        datacenters=args.datacenters,
        protocol=args.protocol,
        partitions_per_table=args.partitions,
        seed=args.seed,
        codec=args.codec,
        base_port=args.base_port,
        items=args.items,
    )
    topology.dump(args.out)
    print(f"wrote {args.out} ({len(topology.nodes)} nodes)")
    return 0


def _run_bench(args: argparse.Namespace) -> int:
    from repro.bench.perf import (
        REGRESSION_TOLERANCE,
        compare_to_baseline,
        render_bench_json,
        run_bench,
    )

    overrides = None
    if args.measure_s is not None:
        overrides = {"measure_ms": args.measure_s * 1_000.0}
    # The bench fixes its own workload/protocol grid; the shared helper
    # still supplies the deployment template (seed etc.) per variant.
    base_spec = _cluster_spec_from_args(args, "mdcc")
    payload = run_bench(seed=args.seed, overrides=overrides, base_spec=base_spec)
    rendered = render_bench_json(payload)
    if args.output == "-":
        sys.stdout.write(rendered)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(f"wrote {args.output}", file=sys.stderr)
    if args.compare is not None:
        with open(args.compare, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        tolerance = (
            REGRESSION_TOLERANCE
            if args.regression_tolerance is None
            else args.regression_tolerance
        )
        failures = compare_to_baseline(payload, baseline, tolerance=tolerance)
        if failures:
            for failure in failures:
                print(f"[bench-gate] FAIL {failure}", file=sys.stderr)
            return 1
        print(
            f"[bench-gate] OK — matches {args.compare} "
            f"(wall-clock within {tolerance:.0%})",
            file=sys.stderr,
        )
    return 0


def _run_tcp(args: argparse.Namespace) -> int:
    from repro.transport.runner import run_tcp_workload

    if args.topology is None:
        raise SystemExit("--transport tcp requires --topology (see `repro topology`)")
    if args.workload != "micro":
        raise SystemExit("the tcp transport currently drives the micro workload only")
    result = _run_traced(
        args.seed,
        args.trace,
        lambda: run_tcp_workload(
            args.topology,
            clients=args.clients,
            transactions_per_client=args.txns_per_client,
            spawn_servers=args.spawn_servers,
        ),
    )
    print(json.dumps(result, indent=2, sort_keys=True))
    ok = result["committed"] > 0 and not result.get("servers_killed")
    return 0 if ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "analyze":
        from repro.analysis.cli import run_analyze

        return run_analyze(args)
    if args.command == "list":
        return _run_list(args.json)
    if args.command == "chaos":
        return _run_chaos(args)
    if args.command == "reconfig":
        return _run_reconfig(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "topology":
        return _run_topology(args)
    if args.command == "bench":
        return _run_bench(args)
    if args.command == "trace":
        return _run_trace(args)
    if args.command == "run" and args.transport == "tcp":
        if args.spec is not None:
            raise SystemExit("--spec drives the sim transport only")
        return _run_tcp(args)
    if args.command == "run" and args.spec is not None:
        return _run_spec_file(args)
    if args.command == "run":
        spec, result = _run_one(args.protocol, args)
        if args.json:
            print(json.dumps(_as_dict(result, spec), indent=2))
        else:
            _print_table([result])
        return 0
    protocols = [p.strip() for p in args.protocols.split(",") if p.strip()]
    unknown = [p for p in protocols if p not in PROTOCOLS]
    if unknown:
        raise SystemExit(f"unknown protocol(s): {', '.join(unknown)}")
    runs = [_run_one(protocol, args) for protocol in protocols]
    if args.json:
        print(json.dumps([_as_dict(r, s) for s, r in runs], indent=2))
    else:
        _print_table([result for _spec, result in runs])
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
