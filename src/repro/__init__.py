"""repro — a reproduction of MDCC: Multi-Data Center Consistency (EuroSys'13).

The package implements the full MDCC stack from scratch:

* :mod:`repro.sim` — deterministic discrete-event simulation of the 5-DC WAN.
* :mod:`repro.storage` — versioned record store with value constraints.
* :mod:`repro.paxos` — Classic, Multi, Fast and Generalized Paxos building
  blocks (ballots, quorums, cstructs, collision recovery).
* :mod:`repro.core` — the MDCC commit protocol itself (options, coordinator,
  acceptors, master recovery, quorum demarcation, fast/classic policy).
* :mod:`repro.protocols` — the paper's baselines: 2PC, quorum writes
  (QW-3/QW-4) and Megastore*.
* :mod:`repro.db` — cluster assembly and the stateless DB library clients.
* :mod:`repro.workloads` — TPC-W and the micro-benchmark.
* :mod:`repro.bench` — the experiment harness regenerating every figure.
"""

__version__ = "1.0.0"

from repro.core.config import MDCCConfig, ProtocolVariant
from repro.db.client import Transaction
from repro.db.cluster import PROTOCOLS, Cluster, build_cluster
from repro.storage.schema import Constraint, TableSchema

__all__ = [
    "Cluster",
    "Constraint",
    "MDCCConfig",
    "PROTOCOLS",
    "ProtocolVariant",
    "TableSchema",
    "Transaction",
    "build_cluster",
]
