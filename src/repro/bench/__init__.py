"""Experiment harness regenerating every figure of the paper (§5).

* :mod:`repro.bench.harness` — run one configured experiment (cluster +
  workload + measurement windows) and collect the statistics a figure
  needs.
* :mod:`repro.bench.scenarios` — the canonical configurations for each
  figure (scaled to laptop-size simulations; scale factors documented).
* :mod:`repro.bench.reporting` — text tables and CDF summaries comparable
  with the paper's plots, plus result persistence for EXPERIMENTS.md.
"""

from repro.bench.harness import ExperimentResult, run_micro, run_tpcw
from repro.bench.reporting import (
    cdf_table,
    format_table,
    save_results,
    shape_check,
)

__all__ = [
    "ExperimentResult",
    "cdf_table",
    "format_table",
    "run_micro",
    "run_tpcw",
    "save_results",
    "shape_check",
]
