"""`repro bench`: the deterministic simulator-core performance baseline.

Runs a fixed micro workload (fixed seed, fixed client/item counts) on
each first-class variant (the MDCC variants plus Replicated Commit)
and emits ``BENCH_sim_core.json`` — the committed
perf baseline CI gates against on every PR so the perf trajectory of
the simulator core is visible (and enforced) over time.

The payload has two disjoint parts:

* ``results`` (plus ``params``/``schema``/``seed``) — **simulated-time**
  derived (events per simulated second, commits per simulated second,
  per-type message counts) and therefore exactly reproducible: two runs
  at the same seed must render byte-identical JSON once the wall-clock
  block is stripped, and CI asserts they do.
* ``wallclock`` — how fast the host chewed through the event heap
  (events per wall-second).  Machine-dependent by nature, excluded from
  every byte-identity comparison, and gated with a relative tolerance
  by ``repro bench --compare BASELINE``.
"""

from __future__ import annotations

import gc
import json
import sys
import time
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.api import ClusterSpec, build_cluster
from repro.workloads.micro import MicroBenchmark

__all__ = [
    "BENCH_SCHEMA",
    "compare_to_baseline",
    "render_bench_json",
    "run_bench",
    "strip_wallclock",
]

BENCH_SCHEMA = "bench_sim_core/v3"

#: the fixed workload; changing any of these is a schema bump.
_DEFAULTS = dict(
    clients=20,
    items=500,
    warmup_ms=5_000.0,
    measure_ms=20_000.0,
    partitions_per_table=2,
    min_stock=500,
    max_stock=1_000,
)

_VARIANTS = ("mdcc", "fast", "multi", "repcommit")

#: default --compare tolerance: fail on a >10% events/wall-s drop.
REGRESSION_TOLERANCE = 0.10


def _bench_one(
    protocol: str, seed: int, params: Dict, base_spec: Optional[ClusterSpec] = None
) -> Tuple[Dict[str, object], Dict[str, object]]:
    """One variant run: returns (deterministic result, wallclock block)."""
    spec = replace(
        base_spec if base_spec is not None else ClusterSpec(),
        protocol=protocol,
        seed=seed,
        partitions_per_table=params["partitions_per_table"],
    )
    cluster = build_cluster(spec)
    bench = MicroBenchmark(
        num_items=params["items"],
        min_stock=params["min_stock"],
        max_stock=params["max_stock"],
    )
    # Timing discipline (as pyperf does): cyclic GC off during the timed
    # region.  The sim's object graph is overwhelmingly acyclic — frozen
    # dataclasses, tuples — so refcounting reclaims it and collector
    # pauses are pure timing noise.  Simulated results are unaffected.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        wall_start = time.perf_counter()
        stats, _pool = bench.run(
            cluster,
            num_clients=params["clients"],
            warmup_ms=params["warmup_ms"],
            measure_ms=params["measure_ms"],
        )
        wall_s = time.perf_counter() - wall_start
    finally:
        if gc_was_enabled:
            gc.enable()
        gc.collect()
    events = cluster.sim.events_processed
    sim_ms = cluster.sim.now
    sim_s = sim_ms / 1_000.0
    measure_s = params["measure_ms"] / 1_000.0
    net = cluster.network.stats
    print(
        f"[bench] {protocol}: {events} events in {wall_s:.2f}s wall "
        f"({events / wall_s:,.0f} events/wall-s — advisory, machine-dependent)",
        file=sys.stderr,
    )
    result = {
        "aborts": stats.aborts,
        "commits": stats.commits,
        "commits_per_sim_s": round(stats.commits / measure_s, 3),
        "events": events,
        "events_per_sim_s": round(events / sim_s, 3),
        "messages": {
            "delivered": net.messages_delivered,
            "dropped": net.messages_dropped,
            "per_type": dict(sorted(net.per_type.items())),
            "sent": net.messages_sent,
        },
        "messages_per_sim_s": round(net.messages_sent / sim_s, 3),
        "sim_ms": round(sim_ms, 3),
    }
    wallclock = {
        "events_per_wall_s": round(events / wall_s, 1),
        "wall_s": round(wall_s, 3),
    }
    return result, wallclock


def run_bench(
    seed: int = 7,
    overrides: Optional[Dict] = None,
    base_spec: Optional[ClusterSpec] = None,
) -> Dict[str, object]:
    """The artifact payload: deterministic for a given seed + params,
    except for the clearly-separated ``wallclock`` block."""
    params = dict(_DEFAULTS)
    if overrides:
        params.update(overrides)
    results: Dict[str, object] = {}
    wallclock: Dict[str, object] = {}
    for protocol in _VARIANTS:
        results[protocol], wallclock[protocol] = _bench_one(
            protocol, seed, params, base_spec
        )
    return {
        "params": params,
        "results": results,
        "schema": BENCH_SCHEMA,
        "seed": seed,
        "wallclock": wallclock,
    }


def strip_wallclock(payload: Dict[str, object]) -> Dict[str, object]:
    """The byte-identity view: everything except machine-dependent keys."""
    return {key: value for key, value in payload.items() if key != "wallclock"}


def compare_to_baseline(
    current: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float = REGRESSION_TOLERANCE,
) -> List[str]:
    """Gate a fresh bench payload against a committed baseline.

    Returns a list of failure messages (empty == gate passes):

    * Any difference in the deterministic view (schema, params, seed or
      per-variant simulated results) is a hard failure — the simulated
      trajectory drifted, which no amount of "it got faster" excuses.
    * A variant whose events/wall-s fell more than ``tolerance`` below
      the baseline's fails the throughput gate.  Wall-clock is
      machine-dependent, so the gate is relative, never absolute.
    """
    failures: List[str] = []
    if baseline.get("schema") != current.get("schema"):
        failures.append(
            f"schema mismatch: baseline {baseline.get('schema')!r} vs "
            f"current {current.get('schema')!r} — regenerate the baseline "
            "with `repro bench`"
        )
        return failures
    base_det = strip_wallclock(baseline)
    cur_det = strip_wallclock(current)
    if base_det != cur_det:
        for key in sorted(set(base_det) | set(cur_det)):
            if base_det.get(key) != cur_det.get(key):
                failures.append(
                    f"deterministic drift in {key!r}: the simulated "
                    "trajectory no longer matches the committed baseline"
                )
        return failures
    base_wall = baseline.get("wallclock") or {}
    cur_wall = current.get("wallclock") or {}
    for protocol in _VARIANTS:
        base_entry = base_wall.get(protocol)
        cur_entry = cur_wall.get(protocol)
        if not base_entry or not cur_entry:
            continue
        base_rate = base_entry["events_per_wall_s"]
        cur_rate = cur_entry["events_per_wall_s"]
        floor = base_rate * (1.0 - tolerance)
        if cur_rate < floor:
            failures.append(
                f"{protocol}: events/wall-s regressed "
                f"{base_rate:,.0f} -> {cur_rate:,.0f} "
                f"(> {tolerance:.0%} below baseline)"
            )
    return failures


def render_bench_json(payload: Dict[str, object]) -> str:
    """The canonical byte form: sorted keys, two-space indent, newline."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
