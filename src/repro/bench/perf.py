"""`repro bench`: the deterministic simulator-core performance baseline.

Runs a fixed micro workload (fixed seed, fixed client/item counts) on
each MDCC variant and emits ``BENCH_sim_core.json`` — the artifact CI
uploads on every PR so the perf trajectory of the simulator core is
visible over time.

Every number in the artifact is **simulated-time** derived (events per
simulated second, commits per simulated second) and therefore exactly
reproducible: two runs at the same seed must produce byte-identical
files, and CI asserts they do.  Wall-clock observations (how fast the
host chewed through the event heap) go to stderr only — they vary by
machine and would break the byte-identity contract.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Dict, Optional

from repro.db.cluster import build_cluster
from repro.workloads.micro import MicroBenchmark

__all__ = ["BENCH_SCHEMA", "run_bench", "render_bench_json"]

BENCH_SCHEMA = "bench_sim_core/v1"

#: the fixed workload; changing any of these is a schema bump.
_DEFAULTS = dict(
    clients=20,
    items=500,
    warmup_ms=5_000.0,
    measure_ms=20_000.0,
    partitions_per_table=2,
    min_stock=500,
    max_stock=1_000,
)

_VARIANTS = ("mdcc", "fast", "multi")


def _bench_one(protocol: str, seed: int, params: Dict) -> Dict[str, object]:
    cluster = build_cluster(
        protocol,
        seed=seed,
        partitions_per_table=params["partitions_per_table"],
    )
    bench = MicroBenchmark(
        num_items=params["items"],
        min_stock=params["min_stock"],
        max_stock=params["max_stock"],
    )
    wall_start = time.perf_counter()
    stats, _pool = bench.run(
        cluster,
        num_clients=params["clients"],
        warmup_ms=params["warmup_ms"],
        measure_ms=params["measure_ms"],
    )
    wall_s = time.perf_counter() - wall_start
    events = cluster.sim.events_processed
    sim_ms = cluster.sim.now
    measure_s = params["measure_ms"] / 1_000.0
    print(
        f"[bench] {protocol}: {events} events in {wall_s:.2f}s wall "
        f"({events / wall_s:,.0f} events/wall-s — advisory, machine-dependent)",
        file=sys.stderr,
    )
    return {
        "aborts": stats.aborts,
        "commits": stats.commits,
        "commits_per_sim_s": round(stats.commits / measure_s, 3),
        "events": events,
        "events_per_sim_s": round(events / (sim_ms / 1_000.0), 3),
        "sim_ms": round(sim_ms, 3),
    }


def run_bench(seed: int = 1, overrides: Optional[Dict] = None) -> Dict[str, object]:
    """The artifact payload: deterministic for a given seed + params."""
    params = dict(_DEFAULTS)
    if overrides:
        params.update(overrides)
    return {
        "params": params,
        "results": {
            protocol: _bench_one(protocol, seed, params) for protocol in _VARIANTS
        },
        "schema": BENCH_SCHEMA,
        "seed": seed,
    }


def render_bench_json(payload: Dict[str, object]) -> str:
    """The canonical byte form: sorted keys, two-space indent, newline."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
