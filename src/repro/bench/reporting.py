"""Result tables, CDF summaries and shape checks for the benchmarks.

Each benchmark prints a table comparable with the paper's figure and
persists it under ``benchmarks/results/`` so EXPERIMENTS.md can cite the
numbers.  :func:`shape_check` centralizes the qualitative assertions —
orderings and ratios, never absolute milliseconds.
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence, Tuple

__all__ = [
    "cdf_table",
    "format_table",
    "results_dir",
    "save_results",
    "shape_check",
]


def results_dir() -> str:
    """benchmarks/results/ at the repository root (created on demand)."""
    here = os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(__file__))))
    path = os.path.join(here, "benchmarks", "results")
    os.makedirs(path, exist_ok=True)
    return path


def format_table(rows: Sequence[Dict[str, object]], title: str = "") -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)\n"
    columns = list(rows[0].keys())
    widths = {
        column: max(len(str(column)), *(len(str(row.get(column, ""))) for row in rows))
        for column in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(column).ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("  ".join("-" * widths[column] for column in columns))
    for row in rows:
        lines.append(
            "  ".join(str(row.get(column, "")).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines) + "\n"


def cdf_table(
    recorders: Dict[str, object],
    fractions: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.9, 0.99),
) -> List[Dict[str, object]]:
    """Percentile rows per protocol — the textual form of a CDF plot."""
    rows = []
    for name, recorder in recorders.items():
        row: Dict[str, object] = {"protocol": name, "count": len(recorder)}
        for fraction in fractions:
            label = f"p{int(fraction * 100)}"
            row[label] = round(recorder.percentile(fraction), 1) if len(recorder) else None
        rows.append(row)
    return rows


def save_results(name: str, content: str) -> str:
    """Persist a report under benchmarks/results/<name>.txt; returns path."""
    path = os.path.join(results_dir(), f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(content)
    return path


def shape_check(
    ordering: Sequence[Tuple[str, float]],
    tolerance: float = 1.0,
) -> None:
    """Assert that metric values are non-decreasing along ``ordering``.

    ``ordering`` is (label, value) pairs in the expected slow-to-fast—
    pardon, small-to-large—order.  ``tolerance`` is a multiplicative
    slack: value[i+1] >= value[i] / tolerance.
    """
    for (label_a, value_a), (label_b, value_b) in zip(ordering, ordering[1:]):
        assert value_b >= value_a / tolerance, (
            f"shape violated: {label_b}={value_b:.1f} should not be below "
            f"{label_a}={value_a:.1f} (tolerance {tolerance})"
        )
