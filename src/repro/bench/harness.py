"""Run one experiment: build a cluster, drive a workload, collect stats.

Every benchmark in ``benchmarks/`` funnels through :func:`run_tpcw` or
:func:`run_micro`, so experiment parameters live in exactly one place and
the pytest-benchmark wrappers stay declarative.

Scaling note: the paper measured 100 clients for 2-3 wall-clock minutes on
EC2.  We run the same protocols above a discrete-event simulation, so
"time" is simulated milliseconds and one experiment finishes in seconds of
host CPU.  Client counts, item counts and window lengths are scaled down
by a constant factor per scenario (documented in EXPERIMENTS.md); shapes,
orderings and ratios are preserved, absolute throughput numbers are not
comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.config import MDCCConfig
from repro.db.checkers import check_constraints, check_replica_convergence
from repro.db.cluster import build_cluster
from repro.faults.controller import CHAOS_TABLE, ChaosController
from repro.faults.schedule import FaultSchedule
from repro.protocols.base import get_protocol
from repro.metrics import LatencyRecorder
from repro.workloads.generator import WorkloadStats
from repro.workloads.geoshift import GeoShiftBenchmark
from repro.workloads.micro import MicroBenchmark
from repro.workloads.tpcw import TPCWBenchmark

__all__ = [
    "ExperimentResult",
    "ScenarioResult",
    "run_geoshift",
    "run_micro",
    "run_scenario",
    "run_tpcw",
]


@dataclass
class ExperimentResult:
    """Everything a figure needs from one protocol run."""

    protocol: str
    stats: WorkloadStats
    commits: int
    aborts: int
    median_ms: Optional[float]
    p90_ms: Optional[float]
    p99_ms: Optional[float]
    throughput_tps: float
    audit_problems: List[str] = field(default_factory=list)
    divergent_records: int = 0
    constraint_violations: int = 0
    counters: Dict[str, int] = field(default_factory=dict)
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def latencies(self) -> LatencyRecorder:
        return self.stats.write_latencies

    def summary_row(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol,
            "commits": self.commits,
            "aborts": self.aborts,
            "median_ms": None if self.median_ms is None else round(self.median_ms, 1),
            "p90_ms": None if self.p90_ms is None else round(self.p90_ms, 1),
            "tps": round(self.throughput_tps, 1),
        }


def _latency_summary(recorder: LatencyRecorder):
    """(median, p90, p99) or Nones for an empty recorder."""
    if len(recorder) == 0:
        return None, None, None
    return recorder.median, recorder.percentile(0.9), recorder.percentile(0.99)


def _placement_extra(cluster) -> Dict[str, object]:
    """The placement-related `extra` fields every result variant reports."""
    if cluster.placement.is_adaptive:
        return {
            "master_policy": "adaptive",
            "migrations": cluster.placement.directory.migrations,
        }
    return {"master_policy": cluster.placement.master_policy, "migrations": 0}


def _collect(protocol, cluster, stats, workload, audit_table, audit_keys) -> ExperimentResult:
    median, p90, p99 = _latency_summary(stats.write_latencies)
    problems: List[str] = []
    divergent = 0
    violations = 0
    if audit_table is not None:
        problems = workload.ledger.audit(cluster)
        divergent = len(check_replica_convergence(cluster, audit_table, audit_keys))
        violations = len(check_constraints(cluster, audit_table, audit_keys))
    result = ExperimentResult(
        protocol=protocol,
        stats=stats,
        commits=stats.commits,
        aborts=stats.aborts,
        median_ms=median,
        p90_ms=p90,
        p99_ms=p99,
        throughput_tps=stats.throughput_tps(),
        audit_problems=problems,
        divergent_records=divergent,
        constraint_violations=violations,
        counters=cluster.counters.as_dict(),
    )
    result.extra.update(_placement_extra(cluster))
    return result


def _effective_partitions(protocol: str, partitions_per_table: int) -> int:
    """Single-entity-group protocols (Megastore*) collapse to one log."""
    if get_protocol(protocol).single_entity_group:
        return 1
    return partitions_per_table


def _preferred_client_dcs(protocol: str, client_dcs):
    """The paper places Megastore* clients with its master in US-West
    ("we play in favor of Megastore*"); the descriptor names that DC."""
    preferred = get_protocol(protocol).preferred_client_dc
    if client_dcs is None and preferred is not None:
        return [preferred]
    return client_dcs


def run_tpcw(
    protocol: str,
    num_clients: int = 50,
    num_items: int = 2_000,
    warmup_ms: float = 10_000.0,
    measure_ms: float = 60_000.0,
    seed: int = 1,
    min_stock: int = 500,
    max_stock: int = 1_000,
    partitions_per_table: int = 2,
    client_dcs: Optional[Sequence[str]] = None,
    audit: bool = True,
    config: Optional[MDCCConfig] = None,
    master_policy: str = "hash",
    migration_policy=None,
) -> ExperimentResult:
    """One TPC-W run of ``protocol`` (Figures 3 and 4).

    The paper's Megastore* setup places all clients in US-West with the
    master ("we play in favor of Megastore*"); we reproduce that placement
    automatically for the megastore protocol.
    """
    parts = _effective_partitions(protocol, partitions_per_table)
    cluster = build_cluster(
        protocol,
        seed=seed,
        partitions_per_table=parts,
        config=config,
        master_policy=master_policy,
        migration_policy=migration_policy,
    )
    client_dcs = _preferred_client_dcs(protocol, client_dcs)
    bench = TPCWBenchmark(
        num_items=num_items, min_stock=min_stock, max_stock=max_stock
    )
    stats, pool = bench.run(
        cluster,
        num_clients=num_clients,
        warmup_ms=warmup_ms,
        measure_ms=measure_ms,
        client_dcs=client_dcs,
    )
    pool.drain(30_000)
    keys = bench.item_keys if audit else []
    return _collect(protocol, cluster, stats, bench, "item" if audit else None, keys)


def run_micro(
    protocol: str,
    num_clients: int = 50,
    num_items: int = 2_000,
    warmup_ms: float = 10_000.0,
    measure_ms: float = 60_000.0,
    seed: int = 1,
    min_stock: int = 500,
    max_stock: int = 1_000,
    partitions_per_table: int = 2,
    hotspot_fraction: Optional[float] = None,
    locality: Optional[float] = None,
    client_dcs: Optional[Sequence[str]] = None,
    audit: bool = True,
    config: Optional[MDCCConfig] = None,
    fail_dc_at: Optional[tuple] = None,
    master_policy: str = "hash",
    migration_policy=None,
) -> ExperimentResult:
    """One micro-benchmark run of ``protocol`` (Figures 5-8).

    ``fail_dc_at=(dc, at_ms)`` schedules a full data-center outage at the
    given simulated offset (Figure 8's scenario).
    """
    parts = _effective_partitions(protocol, partitions_per_table)
    cluster = build_cluster(
        protocol,
        seed=seed,
        partitions_per_table=parts,
        config=config,
        master_policy=master_policy,
        migration_policy=migration_policy,
    )
    bench = MicroBenchmark(
        num_items=num_items,
        min_stock=min_stock,
        max_stock=max_stock,
        hotspot_fraction=hotspot_fraction,
        locality=locality,
    )
    if fail_dc_at is not None:
        dc, at_ms = fail_dc_at
        cluster.sim.schedule(at_ms, cluster.fail_datacenter, dc)
    stats, pool = bench.run(
        cluster,
        num_clients=num_clients,
        warmup_ms=warmup_ms,
        measure_ms=measure_ms,
        client_dcs=client_dcs,
    )
    pool.drain(30_000)
    keys = bench.keys if audit else []
    result = _collect(
        protocol, cluster, stats, bench, "items" if audit else None, keys
    )
    if fail_dc_at is not None:
        result.extra["fail_dc_at"] = fail_dc_at
    return result


def run_geoshift(
    protocol: str,
    num_clients: int = 25,
    num_items: int = 200,
    warmup_ms: float = 5_000.0,
    measure_ms: float = 60_000.0,
    seed: int = 1,
    min_stock: int = 500,
    max_stock: int = 1_000,
    partitions_per_table: int = 2,
    phase_ms: float = 20_000.0,
    offpeak_activity: float = 0.05,
    audit: bool = True,
    config: Optional[MDCCConfig] = None,
    master_policy: str = "hash",
    migration_policy=None,
    tracker_halflife_ms: float = 4_000.0,
    placement_scan_ms: float = 1_000.0,
) -> ExperimentResult:
    """One follow-the-sun run of ``protocol``.

    Clients live in every data center but only the region "in daylight"
    runs at full intensity; the sun advances every ``phase_ms``.  Compare
    ``master_policy="hash"`` (the paper's static placement) against
    ``"adaptive"`` (:mod:`repro.placement`) to see mastership chase the
    hotspot.  The tracker half-life defaults shorter than the phase so
    the write-origin signal turns over well before the sun does.
    """
    parts = _effective_partitions(protocol, partitions_per_table)
    cluster = build_cluster(
        protocol,
        seed=seed,
        partitions_per_table=parts,
        config=config,
        master_policy=master_policy,
        migration_policy=migration_policy,
        tracker_halflife_ms=tracker_halflife_ms,
        placement_scan_ms=placement_scan_ms,
    )
    bench = GeoShiftBenchmark(
        num_items=num_items,
        min_stock=min_stock,
        max_stock=max_stock,
        phase_ms=phase_ms,
        offpeak_activity=offpeak_activity,
    )
    stats, pool = bench.run(
        cluster,
        num_clients=num_clients,
        warmup_ms=warmup_ms,
        measure_ms=measure_ms,
    )
    pool.drain(30_000)
    keys = bench.keys if audit else []
    result = _collect(
        protocol, cluster, stats, bench, "items" if audit else None, keys
    )
    result.extra["phase_ms"] = phase_ms
    result.extra["phases"] = int((warmup_ms + measure_ms) // phase_ms) + 1
    return result


# ----------------------------------------------------------------------
# Chaos scenarios
# ----------------------------------------------------------------------
@dataclass
class ScenarioResult:
    """One (schedule × workload × variant) chaos run, fully summarized.

    ``invariants`` aggregates the post-heal checker verdicts; a scenario
    "passes" when every list is empty.  ``timeline`` covers the whole
    measurement window in fixed buckets *including empty ones*, so bounded
    unavailability is checkable ("commits continued in every bucket").
    """

    schedule: str
    variant: str
    workload: str
    seed: int
    stats: WorkloadStats
    commits: int
    aborts: int
    median_ms: Optional[float]
    p90_ms: Optional[float]
    p99_ms: Optional[float]
    throughput_tps: float
    bucket_ms: float
    timeline: List[Dict[str, object]] = field(default_factory=list)
    audit_problems: List[str] = field(default_factory=list)
    divergent_records: int = 0
    constraint_violations: int = 0
    probe_problems: List[str] = field(default_factory=list)
    recovery_outcomes: List[Dict[str, object]] = field(default_factory=list)
    chaos_events: List[Dict[str, object]] = field(default_factory=list)
    dropped_by_reason: Dict[str, int] = field(default_factory=dict)
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def availability(self) -> float:
        """Fraction of measurement-window buckets with >= 1 commit."""
        if not self.timeline:
            return 0.0
        available = sum(1 for row in self.timeline if row["commits"] > 0)
        return available / len(self.timeline)

    @property
    def clean(self) -> bool:
        return not (
            self.audit_problems
            or self.divergent_records
            or self.constraint_violations
            or self.probe_problems
        )

    def as_dict(self) -> Dict[str, object]:
        """A deterministic, JSON-ready summary (the `chaos` CLI contract)."""
        return {
            "schedule": self.schedule,
            "variant": self.variant,
            "workload": self.workload,
            "seed": self.seed,
            "commits": self.commits,
            "aborts": self.aborts,
            "median_ms": None if self.median_ms is None else round(self.median_ms, 2),
            "p90_ms": None if self.p90_ms is None else round(self.p90_ms, 2),
            "p99_ms": None if self.p99_ms is None else round(self.p99_ms, 2),
            "throughput_tps": round(self.throughput_tps, 2),
            "availability": round(self.availability, 4),
            "bucket_ms": self.bucket_ms,
            "timeline": self.timeline,
            "invariants": {
                "audit_problems": len(self.audit_problems),
                "divergent_records": self.divergent_records,
                "constraint_violations": self.constraint_violations,
                "probe_problems": len(self.probe_problems),
                "clean": self.clean,
            },
            "recovery_outcomes": self.recovery_outcomes,
            "chaos_events": self.chaos_events,
            "dropped_by_reason": dict(sorted(self.dropped_by_reason.items())),
            "migrations": self.extra.get("migrations", 0),
            "master_policy": self.extra.get("master_policy", "hash"),
            "membership": self.extra.get("membership"),
        }


_SCENARIO_TABLES = {"micro": "items", "geoshift": "items", "tpcw": "item"}


def run_scenario(
    schedule: FaultSchedule,
    workload: Optional[str] = None,
    variant: str = "mdcc",
    num_clients: int = 20,
    num_items: int = 300,
    warmup_ms: float = 5_000.0,
    measure_ms: float = 60_000.0,
    seed: int = 7,
    min_stock: int = 500,
    max_stock: int = 1_000,
    partitions_per_table: int = 2,
    client_dcs: Optional[Sequence[str]] = None,
    master_policy: Optional[str] = None,
    config: Optional[MDCCConfig] = None,
    bucket_ms: float = 5_000.0,
    phase_ms: float = 15_000.0,
    audit: bool = True,
    datacenters: Optional[Sequence[str]] = None,
    elastic: bool = False,
) -> ScenarioResult:
    """Run ``workload`` on ``variant`` while ``schedule``'s faults fire.

    The full lifecycle of one chaos cell:

    1. build the cluster, install the :class:`ChaosController`;
    2. drive the workload through warmup + measurement while scheduled
       faults hit the network;
    3. heal everything, let in-flight commits settle (``settle_ms``);
    4. run anti-entropy sweeps so replicas that missed visibilities during
       a fault catch up (the paper's §5.3.4 "background process");
    5. run every invariant checker post-heal — update-ledger audit,
       replica convergence, schema constraints, dangling-probe verdicts.

    ``workload``/``master_policy`` default to the schedule's hints.
    ``datacenters`` overrides the paper's five-region deployment (e.g. a
    3-DC cluster for elastic-membership scenarios); ``elastic`` builds
    the cluster reconfigurable and is enabled automatically when the
    schedule contains membership events (``dc-replace``).
    """
    workload = workload or schedule.workload
    if workload not in _SCENARIO_TABLES:
        raise ValueError(
            f"unknown scenario workload {workload!r}; "
            f"choose from {', '.join(sorted(_SCENARIO_TABLES))}"
        )
    master_policy = master_policy or schedule.master_policy or "hash"
    parts = _effective_partitions(variant, partitions_per_table)
    elastic = elastic or schedule.needs_reconfig
    build_kwargs = dict(
        seed=seed,
        partitions_per_table=parts,
        config=config,
        master_policy=master_policy,
        elastic=elastic,
    )
    if datacenters is not None:
        build_kwargs["datacenters"] = tuple(datacenters)
    cluster = build_cluster(variant, **build_kwargs)
    if workload == "tpcw":
        bench = TPCWBenchmark(
            num_items=num_items, min_stock=min_stock, max_stock=max_stock
        )
    elif workload == "geoshift":
        bench = GeoShiftBenchmark(
            num_items=num_items,
            min_stock=min_stock,
            max_stock=max_stock,
            phase_ms=phase_ms,
        )
    else:
        bench = MicroBenchmark(
            num_items=num_items, min_stock=min_stock, max_stock=max_stock
        )
    table = _SCENARIO_TABLES[workload]

    def workload_source():
        keys = bench.item_keys if workload == "tpcw" else bench.keys
        return table, keys

    controller = ChaosController(cluster, schedule, workload_source=workload_source)
    controller.install()
    stats, pool = bench.run(
        cluster,
        num_clients=num_clients,
        warmup_ms=warmup_ms,
        measure_ms=measure_ms,
        client_dcs=client_dcs,
    )
    controller.heal_all()
    pool.drain(schedule.settle_ms)

    keys = workload_source()[1]
    audit_problems: List[str] = []
    divergent = 0
    violations = 0
    probe_problems: List[str] = []
    if audit:
        _run_antientropy(cluster, table, keys, controller)
        audit_problems = bench.ledger.audit(cluster)
        divergent = len(check_replica_convergence(cluster, table, keys))
        violations = len(check_constraints(cluster, table, keys))
        probe_problems = controller.probe_problems()

    latency_sums: Dict[int, float] = {}
    for timestamp, value in stats.latency_series.points:
        if stats.measure_start <= timestamp < stats.measure_end:
            index = int((timestamp - stats.measure_start) // bucket_ms)
            latency_sums[index] = latency_sums.get(index, 0.0) + value
    timeline = [
        {
            "t_s": round((start - stats.measure_start) / 1000.0, 1),
            "commits": count,
            "mean_ms": round(latency_sums[index] / count, 1) if count else None,
        }
        for index, (start, count) in enumerate(
            stats.latency_series.bucket_counts(
                bucket_ms, stats.measure_start, stats.measure_end
            )
        )
    ]

    median, p90, p99 = _latency_summary(stats.write_latencies)
    result = ScenarioResult(
        schedule=schedule.name,
        variant=variant,
        workload=workload,
        seed=seed,
        stats=stats,
        commits=stats.commits,
        aborts=stats.aborts,
        median_ms=median,
        p90_ms=p90,
        p99_ms=p99,
        throughput_tps=stats.throughput_tps(),
        bucket_ms=bucket_ms,
        timeline=timeline,
        audit_problems=audit_problems,
        divergent_records=divergent,
        constraint_violations=violations,
        probe_problems=probe_problems,
        recovery_outcomes=list(controller.recovery_outcomes),
        chaos_events=controller.log_as_rows(),
        dropped_by_reason=dict(cluster.network.stats.dropped_by_reason),
    )
    result.extra.update(_placement_extra(cluster))
    if cluster.membership is not None:
        membership = cluster.membership.as_dict()
        membership["quorums"] = cluster.placement.quorums().as_dict()
        membership["reconfig_events"] = list(cluster.reconfig.log)
        membership["stale_epoch_dropped"] = cluster.counters.get(
            "reconfig.stale_epoch_dropped"
        )
        result.extra["membership"] = membership
    return result


def _run_antientropy(cluster, table: str, keys, controller: ChaosController) -> None:
    """Sweep workload + probe records until nothing lags (max 4 rounds).

    The sweeps repair version lag via catch-up, re-drive visibilities a
    fault ate, and escalate provably-stuck options to a recovery agent —
    so a later round is needed to observe the effects of the repairs the
    previous round kicked off."""
    agent = cluster.add_anti_entropy_agent(cluster.placement.datacenters[0])
    if cluster.descriptor.supports_recovery:
        agent.attach_recovery(
            cluster.add_recovery_agent(cluster.placement.datacenters[0])
        )
    for _round in range(4):
        report = cluster.sim.run_until(
            agent.sweep(table, keys), limit=cluster.sim.now + 120_000
        )
        if controller.probe_keys:
            probe_report = cluster.sim.run_until(
                agent.sweep(CHAOS_TABLE, controller.probe_keys),
                limit=cluster.sim.now + 120_000,
            )
            report.merge(probe_report)
        cluster.sim.run(until=cluster.sim.now + 10_000)
        if (
            report.records_with_lag == 0
            and report.unreachable_replies == 0
            and report.visibilities_redriven == 0
            and report.recoveries_triggered == 0
        ):
            break
