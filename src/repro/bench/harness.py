"""Run one experiment: build a cluster, drive a workload, collect stats.

Every benchmark in ``benchmarks/`` funnels through :func:`run_tpcw` or
:func:`run_micro`, so experiment parameters live in exactly one place and
the pytest-benchmark wrappers stay declarative.

Scaling note: the paper measured 100 clients for 2-3 wall-clock minutes on
EC2.  We run the same protocols above a discrete-event simulation, so
"time" is simulated milliseconds and one experiment finishes in seconds of
host CPU.  Client counts, item counts and window lengths are scaled down
by a constant factor per scenario (documented in EXPERIMENTS.md); shapes,
orderings and ratios are preserved, absolute throughput numbers are not
comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.config import MDCCConfig
from repro.db.checkers import check_constraints, check_replica_convergence
from repro.db.cluster import build_cluster
from repro.sim.monitor import LatencyRecorder
from repro.workloads.generator import WorkloadStats
from repro.workloads.geoshift import GeoShiftBenchmark
from repro.workloads.micro import MicroBenchmark
from repro.workloads.tpcw import TPCWBenchmark

__all__ = ["ExperimentResult", "run_geoshift", "run_micro", "run_tpcw"]


@dataclass
class ExperimentResult:
    """Everything a figure needs from one protocol run."""

    protocol: str
    stats: WorkloadStats
    commits: int
    aborts: int
    median_ms: Optional[float]
    p90_ms: Optional[float]
    p99_ms: Optional[float]
    throughput_tps: float
    audit_problems: List[str] = field(default_factory=list)
    divergent_records: int = 0
    constraint_violations: int = 0
    counters: Dict[str, int] = field(default_factory=dict)
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def latencies(self) -> LatencyRecorder:
        return self.stats.write_latencies

    def summary_row(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol,
            "commits": self.commits,
            "aborts": self.aborts,
            "median_ms": None if self.median_ms is None else round(self.median_ms, 1),
            "p90_ms": None if self.p90_ms is None else round(self.p90_ms, 1),
            "tps": round(self.throughput_tps, 1),
        }


def _collect(protocol, cluster, stats, workload, audit_table, audit_keys) -> ExperimentResult:
    recorder = stats.write_latencies
    has_latencies = len(recorder) > 0
    problems: List[str] = []
    divergent = 0
    violations = 0
    if audit_table is not None:
        problems = workload.ledger.audit(cluster)
        divergent = len(check_replica_convergence(cluster, audit_table, audit_keys))
        violations = len(check_constraints(cluster, audit_table, audit_keys))
    result = ExperimentResult(
        protocol=protocol,
        stats=stats,
        commits=stats.commits,
        aborts=stats.aborts,
        median_ms=recorder.median if has_latencies else None,
        p90_ms=recorder.percentile(0.9) if has_latencies else None,
        p99_ms=recorder.percentile(0.99) if has_latencies else None,
        throughput_tps=stats.throughput_tps(),
        audit_problems=problems,
        divergent_records=divergent,
        constraint_violations=violations,
        counters=cluster.counters.as_dict(),
    )
    if cluster.placement.is_adaptive:
        result.extra["master_policy"] = "adaptive"
        result.extra["migrations"] = cluster.placement.directory.migrations
    else:
        result.extra["master_policy"] = cluster.placement.master_policy
        result.extra["migrations"] = 0
    return result


def run_tpcw(
    protocol: str,
    num_clients: int = 50,
    num_items: int = 2_000,
    warmup_ms: float = 10_000.0,
    measure_ms: float = 60_000.0,
    seed: int = 1,
    min_stock: int = 500,
    max_stock: int = 1_000,
    partitions_per_table: int = 2,
    client_dcs: Optional[Sequence[str]] = None,
    audit: bool = True,
    config: Optional[MDCCConfig] = None,
    master_policy: str = "hash",
    migration_policy=None,
) -> ExperimentResult:
    """One TPC-W run of ``protocol`` (Figures 3 and 4).

    The paper's Megastore* setup places all clients in US-West with the
    master ("we play in favor of Megastore*"); we reproduce that placement
    automatically for the megastore protocol.
    """
    parts = 1 if protocol == "megastore" else partitions_per_table
    cluster = build_cluster(
        protocol,
        seed=seed,
        partitions_per_table=parts,
        config=config,
        master_policy=master_policy,
        migration_policy=migration_policy,
    )
    if protocol == "megastore" and client_dcs is None:
        client_dcs = ["us-west"]
    bench = TPCWBenchmark(
        num_items=num_items, min_stock=min_stock, max_stock=max_stock
    )
    stats, pool = bench.run(
        cluster,
        num_clients=num_clients,
        warmup_ms=warmup_ms,
        measure_ms=measure_ms,
        client_dcs=client_dcs,
    )
    pool.drain(30_000)
    keys = bench.item_keys if audit else []
    return _collect(protocol, cluster, stats, bench, "item" if audit else None, keys)


def run_micro(
    protocol: str,
    num_clients: int = 50,
    num_items: int = 2_000,
    warmup_ms: float = 10_000.0,
    measure_ms: float = 60_000.0,
    seed: int = 1,
    min_stock: int = 500,
    max_stock: int = 1_000,
    partitions_per_table: int = 2,
    hotspot_fraction: Optional[float] = None,
    locality: Optional[float] = None,
    client_dcs: Optional[Sequence[str]] = None,
    audit: bool = True,
    config: Optional[MDCCConfig] = None,
    fail_dc_at: Optional[tuple] = None,
    master_policy: str = "hash",
    migration_policy=None,
) -> ExperimentResult:
    """One micro-benchmark run of ``protocol`` (Figures 5-8).

    ``fail_dc_at=(dc, at_ms)`` schedules a full data-center outage at the
    given simulated offset (Figure 8's scenario).
    """
    parts = 1 if protocol == "megastore" else partitions_per_table
    cluster = build_cluster(
        protocol,
        seed=seed,
        partitions_per_table=parts,
        config=config,
        master_policy=master_policy,
        migration_policy=migration_policy,
    )
    bench = MicroBenchmark(
        num_items=num_items,
        min_stock=min_stock,
        max_stock=max_stock,
        hotspot_fraction=hotspot_fraction,
        locality=locality,
    )
    if fail_dc_at is not None:
        dc, at_ms = fail_dc_at
        cluster.sim.schedule(at_ms, cluster.fail_datacenter, dc)
    stats, pool = bench.run(
        cluster,
        num_clients=num_clients,
        warmup_ms=warmup_ms,
        measure_ms=measure_ms,
        client_dcs=client_dcs,
    )
    pool.drain(30_000)
    keys = bench.keys if audit else []
    result = _collect(
        protocol, cluster, stats, bench, "items" if audit else None, keys
    )
    if fail_dc_at is not None:
        result.extra["fail_dc_at"] = fail_dc_at
    return result


def run_geoshift(
    protocol: str,
    num_clients: int = 25,
    num_items: int = 200,
    warmup_ms: float = 5_000.0,
    measure_ms: float = 60_000.0,
    seed: int = 1,
    min_stock: int = 500,
    max_stock: int = 1_000,
    partitions_per_table: int = 2,
    phase_ms: float = 20_000.0,
    offpeak_activity: float = 0.05,
    audit: bool = True,
    config: Optional[MDCCConfig] = None,
    master_policy: str = "hash",
    migration_policy=None,
    tracker_halflife_ms: float = 4_000.0,
    placement_scan_ms: float = 1_000.0,
) -> ExperimentResult:
    """One follow-the-sun run of ``protocol``.

    Clients live in every data center but only the region "in daylight"
    runs at full intensity; the sun advances every ``phase_ms``.  Compare
    ``master_policy="hash"`` (the paper's static placement) against
    ``"adaptive"`` (:mod:`repro.placement`) to see mastership chase the
    hotspot.  The tracker half-life defaults shorter than the phase so
    the write-origin signal turns over well before the sun does.
    """
    parts = 1 if protocol == "megastore" else partitions_per_table
    cluster = build_cluster(
        protocol,
        seed=seed,
        partitions_per_table=parts,
        config=config,
        master_policy=master_policy,
        migration_policy=migration_policy,
        tracker_halflife_ms=tracker_halflife_ms,
        placement_scan_ms=placement_scan_ms,
    )
    bench = GeoShiftBenchmark(
        num_items=num_items,
        min_stock=min_stock,
        max_stock=max_stock,
        phase_ms=phase_ms,
        offpeak_activity=offpeak_activity,
    )
    stats, pool = bench.run(
        cluster,
        num_clients=num_clients,
        warmup_ms=warmup_ms,
        measure_ms=measure_ms,
    )
    pool.drain(30_000)
    keys = bench.keys if audit else []
    result = _collect(
        protocol, cluster, stats, bench, "items" if audit else None, keys
    )
    result.extra["phase_ms"] = phase_ms
    result.extra["phases"] = int((warmup_ms + measure_ms) // phase_ms) + 1
    return result
