"""Options and updates — the values MDCC runs Paxos on.

The key protocol move (§3.2): "using a Paxos instance per record to accept
an *option* to execute the update, instead of writing the value directly."
Storage nodes actively accept or reject each option; the transaction
commits once every option is learned as accepted.

Options double as Generalized Paxos commands (:class:`repro.paxos.cstruct`
``Command`` protocol): two options commute exactly when both carry
commutative updates (§3.4.1); an option's identity includes its status so
that acceptors that disagree on ✓/✗ are *incompatible* and force a
collision, as the protocol requires.

Every option also carries its transaction id and the full write-set keys:
"we avoid dangling transactions by including in all of its options a unique
transaction-id as well as all primary keys of the write-set" (§3.2.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

__all__ = [
    "CommutativeUpdate",
    "Option",
    "OptionStatus",
    "PhysicalUpdate",
    "ReadValidation",
    "RecordId",
    "Update",
]


@dataclass(frozen=True, order=True, slots=True)
class RecordId:
    """A globally unique record address.

    ``str(record)`` is on the hot path (it keys option ids and WAL
    entries), so the rendered form is computed once at construction.
    The cache is a non-init field: the wire codec and ``fields()``-based
    equality both skip ``init=False`` fields.
    """

    table: str
    key: str
    _str: str = field(init=False, repr=False, compare=False, default="")
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_str", self.table + "/" + self.key)
        object.__setattr__(self, "_hash", hash((self.table, self.key)))

    def __str__(self) -> str:
        return self._str

    def __hash__(self) -> int:
        # Explicitly defined, so @dataclass keeps it: record ids key every
        # state table in the system and are hashed far more often than
        # they are built.
        return self._hash

    def __eq__(self, other: object) -> bool:
        # Dict probes compare distinct-but-equal ids constantly; comparing
        # the fields directly skips the generated __eq__'s tuple builds.
        # (Keys differ far more often than tables, so they go first.)
        if other.__class__ is RecordId:
            return self.key == other.key and self.table == other.table
        return NotImplemented


@dataclass(frozen=True, slots=True)
class PhysicalUpdate:
    """A read-version-guarded full-record write: v_read → v_write.

    ``vread == 0`` encodes an insert ("an insert should only succeed if the
    record doesn't already exist"); ``is_delete`` marks a tombstone write.
    ``new_value`` is the full attribute dict after the write (None for
    deletes).
    """

    vread: int
    new_value: Optional[Dict[str, object]]
    is_delete: bool = False

    def __post_init__(self) -> None:
        if self.vread < 0:
            raise ValueError("vread must be non-negative")
        if self.is_delete and self.new_value is not None:
            raise ValueError("delete updates carry no new value")
        if not self.is_delete and self.new_value is None:
            raise ValueError("non-delete physical update needs a new value")

    @property
    def is_insert(self) -> bool:
        return self.vread == 0 and not self.is_delete

    def __hash__(self) -> int:
        frozen_value = (
            None
            if self.new_value is None
            else tuple(sorted(self.new_value.items()))
        )
        return hash((self.vread, frozen_value, self.is_delete))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PhysicalUpdate):
            return NotImplemented
        return (
            self.vread == other.vread
            and self.new_value == other.new_value
            and self.is_delete == other.is_delete
        )


@dataclass(frozen=True, slots=True)
class CommutativeUpdate:
    """Attribute delta changes, e.g. ``decrement(stock, 1)`` (§3.4.1).

    ``deltas`` maps attribute name to a signed numeric change.  Deltas on
    any attributes commute with each other; value constraints are enforced
    by quorum demarcation, not here.
    """

    deltas: Tuple[Tuple[str, float], ...]

    def __post_init__(self) -> None:
        if not self.deltas:
            raise ValueError("commutative update needs at least one delta")
        names = [name for name, _ in self.deltas]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate attributes in deltas: {names}")

    @classmethod
    def of(cls, **deltas: float) -> "CommutativeUpdate":
        """Convenience constructor: ``CommutativeUpdate.of(stock=-1)``."""
        return cls(tuple(sorted(deltas.items())))

    def delta_for(self, attribute: str) -> float:
        for name, delta in self.deltas:
            if name == attribute:
                return delta
        return 0.0

    @property
    def attributes(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.deltas)


@dataclass(frozen=True, slots=True)
class ReadValidation:
    """An OCC read-set assertion: the record is still at version ``vread``.

    The §4.4 extension — "as we already check the write-set for
    transactions, the protocol could easily be extended to also consider
    read-sets, allowing us to leverage optimistic concurrency control
    techniques and ultimately provide full serializability."

    Acceptors accept a validation iff the record's committed version still
    equals ``vread`` and no state-changing option is pending; executing it
    is a no-op (the committed version chain does not advance).  While a
    validation is pending, writers to the record are rejected — the short
    read-lock window between propose and visibility that OCC validation
    needs.  Validations of the same record commute with each other, so
    concurrent readers never conflict.

    ``vread == 0`` asserts the record does not exist (a validated negative
    read).
    """

    vread: int

    def __post_init__(self) -> None:
        if self.vread < 0:
            raise ValueError("vread must be non-negative")


Update = Union[PhysicalUpdate, CommutativeUpdate, ReadValidation]


class OptionStatus(enum.Enum):
    """ω(up, _): pending, accepted (✓, "3" in the paper's font) or
    rejected (✗, "7")."""

    PENDING = "pending"
    ACCEPTED = "accepted"
    REJECTED = "rejected"

    @property
    def decided(self) -> bool:
        return self is not OptionStatus.PENDING


@dataclass(frozen=True, slots=True)
class Option:
    """ω(up, status) — a proposed update to one record of one transaction.

    Identity (``option_id``) is (txid, record): a transaction writes each
    record at most once (its write-set is keyed by record).

    ``option_id`` is the single hottest string in the protocol (every
    tally, waiter map and cstruct membership check keys on it), so it is
    computed once at construction instead of per access.  As a non-init
    cache field it stays out of equality, hashing, repr and the wire
    codec.
    """

    txid: str
    record: RecordId
    update: Update
    writeset: Tuple[RecordId, ...] = field(default=())
    status: OptionStatus = OptionStatus.PENDING
    option_id: str = field(init=False, repr=False, compare=False, default="")

    def __post_init__(self) -> None:
        object.__setattr__(self, "option_id", f"{self.txid}:{self.record}")

    # ------------------------------------------------------------------
    # Identity & status
    # ------------------------------------------------------------------
    @property
    def command_id(self) -> str:
        """cstruct Command protocol: identity within a record's instance."""
        return self.option_id

    @property
    def is_commutative(self) -> bool:
        return isinstance(self.update, CommutativeUpdate)

    @property
    def is_validation(self) -> bool:
        return isinstance(self.update, ReadValidation)

    def with_status(self, status: OptionStatus) -> "Option":
        if status is self.status:
            return self
        # Hand-rolled copy: every field is immutable and option_id does not
        # depend on status, so the dataclasses.replace machinery (field
        # enumeration, __init__, __post_init__ re-format) is pure overhead
        # on what is the single hottest constructor in the protocol.
        new = object.__new__(Option)
        _set = object.__setattr__
        _set(new, "txid", self.txid)
        _set(new, "record", self.record)
        _set(new, "update", self.update)
        _set(new, "writeset", self.writeset)
        _set(new, "status", status)
        _set(new, "option_id", self.option_id)
        return new

    @property
    def accepted(self) -> bool:
        return self.status is OptionStatus.ACCEPTED

    @property
    def rejected(self) -> bool:
        return self.status is OptionStatus.REJECTED

    # ------------------------------------------------------------------
    # Commutativity (cstruct Command protocol)
    # ------------------------------------------------------------------
    def commutes_with(self, other: "Option") -> bool:
        """Options commute iff both carry commutative updates (§3.4.1), or
        both are read validations (reads never conflict with each other).

        Rejected options additionally commute with everything: a rejected
        option never changes record state, so its position in the cstruct
        is semantically irrelevant.  Without this, acceptors whose
        *rejected* prefixes diverged would lose agreement on the accepted
        options behind them during collision recovery.
        """
        if not isinstance(other, Option):
            return False
        if self.status is OptionStatus.REJECTED or other.status is OptionStatus.REJECTED:
            return True
        if self.is_validation and other.is_validation:
            return True
        return self.is_commutative and other.is_commutative

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mark = {"pending": "?", "accepted": "✓", "rejected": "✗"}[self.status.value]
        return f"ω({self.option_id}, {mark})"
