"""Protocol configuration: quorum sizes, policies, timeouts, variants.

The evaluation compares three MDCC configurations (§5.3.1):

* **MDCC** — "our full featured protocol": fast ballots + commutative
  updates with demarcation.
* **Fast** — fast ballots "without the commutative update support":
  commutative client updates are converted to version-guarded physical
  writes.
* **Multi** — "all instances being Multi-Paxos (a stable master can skip
  Phase 1)": every update routes through the record's master.

:class:`ProtocolVariant` selects among them; :class:`MDCCConfig` carries
everything else (γ for the fast/classic policy of §3.3.2, timeouts,
replication factor).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.paxos.quorum import QuorumSpec

__all__ = ["MDCCConfig", "ProtocolVariant"]


class ProtocolVariant(enum.Enum):
    """The three MDCC configurations of the paper's Figure 5/6/7."""

    MDCC = "mdcc"    # fast ballots + commutative updates
    FAST = "fast"    # fast ballots, no commutative support
    MULTI = "multi"  # master-routed classic ballots only

    @property
    def fast_ballots(self) -> bool:
        return self in (ProtocolVariant.MDCC, ProtocolVariant.FAST)

    @property
    def commutative(self) -> bool:
        return self is ProtocolVariant.MDCC


@dataclass(frozen=True)
class MDCCConfig:
    """All tunables of one MDCC deployment.

    Attributes:
        replication: replicas per record (the paper deploys 5 — one per DC).
        variant: MDCC / Fast / Multi (see :class:`ProtocolVariant`).
        gamma: classic instances scheduled after a collision before fast
            ballots are probed again — "we set the next γ instances
            (default 100) to classic" (§3.3.2).
        commutative_gamma: classic instances after a *demarcation* (base
            refresh) collision.  ``None`` (default) treats limit hits like
            any collision — γ classic instances, matching §3.4.2's "handles
            it as a collision, resolves it by switching to classic ballots".
            ``0`` re-opens fast immediately after the base refresh, which
            trades classic-mode latency for a liveness corner: stock within
            the demarcation slack of the bound becomes unsellable until a
            classic round runs (ablated in benchmarks).
        gamma_policy: "static" (the paper's fixed γ) or "adaptive" — the
            §5.3.2 future-work policy where the classic horizon tracks the
            observed per-record collision spacing (see
            :mod:`repro.core.fastpolicy`).
        adaptive_gamma_min / adaptive_gamma_max / adaptive_window_ms:
            adaptive-policy tuning — initial/maximum horizon and the
            collision-spacing window that counts as "contended".
        learn_timeout_ms: coordinator wait before escalating an unlearned
            option to the master (StartRecovery), Algorithm 1 line 19.
        recovery_timeout_ms: wait on a master during recovery before trying
            the next master candidate (master failover).
        visibility_resend_ms: lost Visibility messages are re-driven by the
            coordinator after this delay (0 disables).
        visibility_batch_ms: buffer visibility notifications per destination
            for this long and ship them as one
            :class:`~repro.core.messages.VisibilityBatch` (§7's "batching
            techniques that reduce the message overhead"; 0 disables).
            Visibilities are off the commit critical path, so batching
            trades a bounded visibility delay for fewer wide-area messages.
    """

    replication: int = 5
    variant: ProtocolVariant = ProtocolVariant.MDCC
    gamma: int = 100
    commutative_gamma: Optional[int] = None
    gamma_policy: str = "static"
    adaptive_gamma_min: int = 8
    adaptive_gamma_max: int = 1_024
    adaptive_window_ms: float = 5_000.0
    #: §3.4.2's quorum demarcation limit.  Disabling it leaves plain
    #: per-node escrow, which quorum reordering can drive past a global
    #: constraint (Figure 2's scenario) — kept as an ablation knob to
    #: demonstrate exactly that failure.
    demarcation_enabled: bool = True
    learn_timeout_ms: float = 2_000.0
    recovery_timeout_ms: float = 3_000.0
    visibility_resend_ms: float = 0.0
    visibility_batch_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.replication < 1:
            raise ValueError("replication must be positive")
        if self.gamma < 1:
            raise ValueError("gamma must be at least 1")
        if self.commutative_gamma is not None and self.commutative_gamma < 0:
            raise ValueError("commutative_gamma must be non-negative")
        if self.gamma_policy not in ("static", "adaptive"):
            raise ValueError(
                f"unknown gamma_policy {self.gamma_policy!r}; "
                "choose 'static' or 'adaptive'"
            )
        if self.adaptive_gamma_min < 1:
            raise ValueError("adaptive_gamma_min must be at least 1")
        if self.adaptive_gamma_max < self.adaptive_gamma_min:
            raise ValueError("adaptive_gamma_max must be >= adaptive_gamma_min")
        if self.adaptive_window_ms <= 0:
            raise ValueError("adaptive_window_ms must be positive")
        if self.learn_timeout_ms <= 0 or self.recovery_timeout_ms <= 0:
            raise ValueError("timeouts must be positive")
        if self.visibility_batch_ms < 0:
            raise ValueError("visibility_batch_ms must be non-negative")

    @property
    def quorums(self) -> QuorumSpec:
        """Derived quorum sizes — (classic 3, fast 4) at replication 5."""
        return QuorumSpec.for_replication(self.replication)

    @property
    def effective_commutative_gamma(self) -> int:
        return self.gamma if self.commutative_gamma is None else self.commutative_gamma

    @property
    def fast_ballots_enabled(self) -> bool:
        return self.variant.fast_ballots

    @property
    def commutative_enabled(self) -> bool:
        return self.variant.commutative

    def with_variant(self, variant: ProtocolVariant) -> "MDCCConfig":
        from dataclasses import replace

        return replace(self, variant=variant)
