"""Dangling-transaction recovery (§3.2.3).

An app-server that fails mid-commit leaves a "dangling transaction":
options proposed, possibly learned, but never driven to visibility.
Because every option carries the transaction id and *all primary keys of
the write-set*, any node can finish the job:

1. read the option (and through it the write-set) from a quorum of the
   replicas of any record the transaction touched;
2. for every write-set record, force a definitive decision — "a quorum is
   required to determine what was decided by the Paxos instance", which we
   obtain by asking the record's master to run a recovery (classic) round;
3. commit iff every option is accepted, then send the Visibility messages
   the dead coordinator never sent.

The agent is deterministic and idempotent: several agents may recover the
same transaction concurrently; acceptors deduplicate visibilities.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.core.config import MDCCConfig
from repro.core.messages import (
    OptionOutcome,
    StartRecovery,
    StatusReply,
    StatusRequest,
    Visibility,
)
from repro.core.options import Option, OptionStatus, RecordId
from repro.core.topology import ReplicaMap
from repro.metrics import CounterSet
from repro.trace import runtime as trace_runtime
from repro.transport.base import Future, Node, Transport

__all__ = ["RecoveryAgent"]


@dataclass
class _RecoveryState:
    txid: str
    future: Future
    request_id: int
    #: record -> replies per replica
    replies: Dict[RecordId, Dict[str, StatusReply]] = field(default_factory=dict)
    writeset: Optional[tuple] = None
    options: Dict[RecordId, Option] = field(default_factory=dict)
    decisions: Dict[RecordId, OptionStatus] = field(default_factory=dict)
    escalated: Set[RecordId] = field(default_factory=set)
    probed: Set[RecordId] = field(default_factory=set)
    finished: bool = False
    #: completed retry rounds — rotates the escalation target so a dead
    #: master does not wedge the recovery (same failover order coordinators
    #: use), and bounds the re-probe loop.
    retry_round: int = 0
    #: the retry cap was hit with no verdict; a later recover() call for
    #: the same txid starts over instead of returning the dead future.
    gave_up: bool = False
    #: open recovery-escalation span when tracing is on (else None).
    trace_span: Optional[object] = None


class RecoveryAgent(Node):
    """A node that reconstructs and completes dangling transactions."""

    def __init__(
        self,
        transport: Transport,
        node_id: str,
        dc: str,
        placement: ReplicaMap,
        config: MDCCConfig,
        counters: Optional[CounterSet] = None,
    ) -> None:
        super().__init__(transport, node_id, dc)
        self.placement = placement
        self.config = config
        self.counters = trace_runtime.scoped_counters(
            node_id, counters if counters is not None else CounterSet()
        )
        self.tracer = trace_runtime.current_tracer()
        self._request_seq = itertools.count(1)
        self._by_txid: Dict[str, _RecoveryState] = {}
        self._by_request: Dict[int, _RecoveryState] = {}
        #: retry rounds before declaring the quorum unreachable.
        self._max_retry_rounds = 100

    @property
    def spec(self):
        """Quorum sizes under the current membership epoch."""
        return self.placement.quorum_spec(self.config)

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    def recover(self, txid: str, hint_record: RecordId) -> Future:
        """Recover ``txid`` given any record it wrote.

        Resolves with True if the transaction was committed, False if it
        was aborted.  Duplicate calls return the in-flight future; a
        recovery that previously gave up (quorum unreachable through the
        whole retry budget) is restarted from scratch.
        """
        existing = self._by_txid.get(txid)
        if existing is not None and not existing.gave_up:
            return existing.future
        state = _RecoveryState(
            txid=txid,
            future=self.future(),
            request_id=next(self._request_seq),
        )
        self._by_txid[txid] = state
        self._by_request[state.request_id] = state
        if self.tracer.enabled:
            # Parent to the transaction root when this tracer saw it (sim:
            # shared tracer) — else start a top-level span for the trace id
            # derived from the txid (TCP: the coordinator ran elsewhere).
            state.trace_span = self.tracer.start_span(
                "recovery-escalation",
                self.node_id,
                self.now,
                parent=self.tracer.root_ctx(txid),
                txid=txid,
                record=f"{hint_record.table}/{hint_record.key}",
                reason="dangling",
            )
            previous = trace_runtime.set_context(state.trace_span.ctx)
            try:
                self._probe(state, hint_record)
            finally:
                trace_runtime.reset_context(previous)
        else:
            self._probe(state, hint_record)
        self.counters.increment("recovery.started")
        self.set_timer(self.config.recovery_timeout_ms, self._retry, state)
        return state.future

    # ------------------------------------------------------------------
    # Status collection
    # ------------------------------------------------------------------
    def _probe(self, state: _RecoveryState, record: RecordId) -> None:
        if record in state.probed:
            return
        state.probed.add(record)
        request = StatusRequest(
            txid=state.txid, record=record, request_id=state.request_id
        )
        self.broadcast(self.placement.replicas(record), request)

    def handle_status_reply(self, message: StatusReply, src_id: str) -> None:
        state = self._by_request.get(message.request_id)
        if state is None or state.finished:
            return
        record_replies = state.replies.setdefault(message.record, {})
        record_replies[src_id] = message
        if message.known and message.option is not None:
            state.options.setdefault(message.record, message.option)
            if state.writeset is None and message.writeset:
                state.writeset = tuple(message.writeset)
                for record in state.writeset:
                    self._probe(state, record)
        self._evaluate(state, message.record)

    def _evaluate(self, state: _RecoveryState, record: RecordId) -> None:
        if record in state.decisions or state.finished:
            return
        replies = state.replies.get(record, {})
        if len(replies) < self.spec.classic_size:
            return
        # Any executed replica proves the commit decision for this option.
        if any(reply.executed for reply in replies.values()):
            self._decide(state, record, OptionStatus.ACCEPTED)
            return
        option = state.options.get(record)
        if option is None:
            if len(replies) == self.spec.n:
                # No replica knows an option for this record: it cannot
                # have been accepted by any quorum, so the transaction
                # cannot have committed.
                self._decide(state, record, OptionStatus.REJECTED)
            return
        # An option exists but its fate is ambiguous: force a definitive
        # decision through the master's classic round.  The target rotates
        # through the failover candidates with each retry round, so a dead
        # or unreachable master cannot wedge the recovery.
        if record not in state.escalated:
            state.escalated.add(record)
            candidates = self.placement.master_candidates(record)
            target = candidates[state.retry_round % len(candidates)]
            self.send(
                target,
                StartRecovery(
                    record=record,
                    reason="timeout",
                    option=option.with_status(OptionStatus.PENDING),
                    reply_to=self.node_id,
                ),
            )

    def handle_option_outcome(self, message: OptionOutcome, src_id: str) -> None:
        state = self._by_txid.get(message.txid)
        if state is None or state.finished:
            return
        self._decide(state, message.record, message.status)

    # ------------------------------------------------------------------
    # Retry loop
    # ------------------------------------------------------------------
    def _retry(self, state: _RecoveryState) -> None:
        """Re-drive lost probes and escalations until the verdict lands.

        Status requests and StartRecovery messages are fire-and-forget;
        on a lossy or partitioned network any of them can vanish, and a
        single-shot agent would wait forever.  Every round re-probes the
        replicas that have not answered and re-arms escalation (acceptors
        and masters deduplicate, so repeats are harmless).  Bounded so an
        unreachable quorum fails the simulation loudly instead of spinning.
        """
        if state.finished:
            return
        state.retry_round += 1
        if state.retry_round > self._max_retry_rounds:
            state.gave_up = True
            if state.trace_span is not None:
                state.trace_span.finish(self.now, "gave-up")
            self.counters.increment("recovery.gave_up")
            return
        # Timer callbacks run with no ambient context; restore the
        # recovery span's so re-driven probes stitch into the trace.
        previous = (
            trace_runtime.set_context(state.trace_span.ctx)
            if state.trace_span is not None
            else None
        )
        try:
            # Sorted: `probed` is a set of RecordIds whose iteration order is
            # salted per interpreter (PYTHONHASHSEED), and send order decides
            # which shared-stream jitter draw each message gets — an unsorted
            # walk makes runs irreproducible across processes.
            for record in sorted(state.probed, key=lambda r: (r.table, r.key)):
                if record in state.decisions:
                    continue
                replies = state.replies.get(record, {})
                missing = [
                    replica
                    for replica in self.placement.replicas(record)
                    if replica not in replies
                ]
                if missing:
                    self.broadcast(
                        missing,
                        StatusRequest(
                            txid=state.txid,
                            record=record,
                            request_id=state.request_id,
                        ),
                    )
                state.escalated.discard(record)
                self._evaluate(state, record)
        finally:
            if state.trace_span is not None:
                trace_runtime.reset_context(previous)
        self.counters.increment("recovery.retries")
        self.set_timer(self.config.recovery_timeout_ms, self._retry, state)

    # ------------------------------------------------------------------
    # Decision
    # ------------------------------------------------------------------
    def _decide(self, state: _RecoveryState, record: RecordId, status: OptionStatus) -> None:
        if record in state.decisions:
            return
        state.decisions[record] = status
        if state.writeset is None:
            # Still discovering the write-set; wait for a status reply.
            return
        if set(state.decisions) >= set(state.writeset):
            self._finish(state)

    def _finish(self, state: _RecoveryState) -> None:
        if state.finished:
            return
        state.finished = True
        committed = all(
            status is OptionStatus.ACCEPTED for status in state.decisions.values()
        )
        # The visibility fan-out belongs to the recovery span, not to
        # whatever message handler happened to deliver the last verdict.
        previous = (
            trace_runtime.set_context(state.trace_span.ctx)
            if state.trace_span is not None
            else None
        )
        try:
            for record, option in state.options.items():
                self.broadcast(
                    self.placement.replicas(record),
                    Visibility(option=option, committed=committed),
                )
        finally:
            if state.trace_span is not None:
                trace_runtime.reset_context(previous)
        if state.trace_span is not None:
            state.trace_span.finish(
                self.now, "committed" if committed else "aborted"
            )
        self.counters.increment(
            "recovery.committed" if committed else "recovery.aborted"
        )
        state.future.try_resolve(committed)
