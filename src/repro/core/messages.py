"""Wire messages of the MDCC protocol.

Naming follows the paper's pseudocode: Propose, Phase1a/1b, Phase2a/2b,
Visibility, StartRecovery (Algorithms 1-3).  Fast-path proposals go
straight to the acceptors (ProposeFast); classic-path proposals go to the
record's master (ProposeClassic).  All messages are immutable dataclasses.

Epoch fencing (elastic membership): every message that creates or
carries a *quorum vote* — ProposeFast/FastReply on the fast path,
MPhase1a/1b and MPhase2a/2b on the classic path — is stamped with the
sender's membership epoch.  Receivers drop messages from a stale epoch,
so no vote cast under one data-center configuration can count toward a
quorum tallied under another.  ``epoch`` defaults to 0, the permanent
epoch of a static cluster, making the checks no-ops there.

Visibility, CatchUp and repair traffic is deliberately *not* fenced:
applying committed state is version-guarded and idempotent, hence safe
at any epoch — and it is exactly how replicas that lived through a
reconfiguration converge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.options import Option, OptionStatus, RecordId, Update
from repro.paxos.ballot import Ballot, BallotRange
from repro.paxos.cstruct import CStruct

__all__ = [
    "CatchUp",
    "FastReply",
    "MPhase1a",
    "MPhase1b",
    "MPhase2a",
    "MPhase2b",
    "MastershipTaken",
    "OptionOutcome",
    "ProposeClassic",
    "ProposeFast",
    "RcApply",
    "RcCommitRequest",
    "RcDecision",
    "RcPrepare",
    "RcPrepareReply",
    "RcVote",
    "ReadReply",
    "ReadRequest",
    "RepairProbe",
    "RepairReply",
    "SnapshotAck",
    "SnapshotChunk",
    "SnapshotRequest",
    "StartRecovery",
    "StatusReply",
    "StatusRequest",
    "Visibility",
    "VisibilityBatch",
]


# ----------------------------------------------------------------------
# Fast path (Algorithm 3, Phase2bFast)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class ProposeFast:
    """Coordinator → acceptors: propose an option in the current fast ballot."""

    option: Option
    reply_to: str  # learner node id (the coordinating app-server)
    epoch: int = 0  # sender's membership epoch (fenced by the acceptor)


@dataclass(frozen=True, slots=True)
class FastReply:
    """Acceptor → learner: the option's locally decided status (Phase2b).

    Carries the acceptor's committed version so learners can spot laggards,
    and the era's fast/classic mode + master hint so coordinators can keep
    their routing cache fresh.
    """

    option_id: str
    txid: str
    record: RecordId
    status: OptionStatus
    committed_version: int
    is_fast_era: bool
    master_hint: str
    epoch: int = 0  # acceptor's membership epoch (fenced by the learner)


# ----------------------------------------------------------------------
# Classic path (master-routed)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class ProposeClassic:
    """Coordinator (or forwarding acceptor) → master."""

    option: Option
    reply_to: str  # coordinator to notify with the OptionOutcome


@dataclass(frozen=True, slots=True)
class MPhase1a:
    """Master → acceptors: claim mastership of an instance range."""

    record: RecordId
    ballot: Ballot
    grant: BallotRange
    epoch: int = 0


@dataclass(frozen=True, slots=True)
class MPhase1b:
    """Acceptor → master: promise + current accepted state.

    ``granted`` is False when the acceptor holds a higher promise (a nack);
    ``promised`` then carries that higher ballot so the master can leapfrog.
    """

    record: RecordId
    ballot: Ballot
    granted: bool
    promised: Ballot
    accepted_ballot: Optional[Ballot]
    cstruct: Optional[CStruct]
    committed_version: int
    committed_value: Optional[Dict[str, object]]
    #: option ids folded into committed_value (for safe CatchUp relays).
    applied_ids: Tuple[str, ...] = ()
    epoch: int = 0


@dataclass(frozen=True, slots=True)
class MPhase2a:
    """Master → acceptors: adopt this cstruct at this ballot.

    ``post_grant`` optionally re-programs the record's mode after adoption:
    a classic range for the next γ instances after a physical collision, or
    a fresh fast ballot (with ``new_base`` demarcation values) after a
    commutative base refresh (§3.4.2).
    """

    record: RecordId
    ballot: Ballot
    cstruct: CStruct
    post_grant: Optional[BallotRange] = None
    new_base: Optional[Dict[str, float]] = None
    epoch: int = 0


@dataclass(frozen=True, slots=True)
class MPhase2b:
    """Acceptor → master: the adopted cstruct with locally decided statuses.

    A rejection (``accepted=False``) carries ``promised`` — the granted
    ballot that fenced the proposal — so a deposed master can tell a
    mastership migration (abdicate) from an ordinary competing recovery
    (leapfrog).
    """

    record: RecordId
    ballot: Ballot
    accepted: bool
    cstruct: Optional[CStruct]
    committed_version: int
    promised: Optional[Ballot] = None
    epoch: int = 0


@dataclass(frozen=True, slots=True)
class OptionOutcome:
    """Master → coordinator: an option's quorum-decided status."""

    option_id: str
    txid: str
    record: RecordId
    status: OptionStatus


@dataclass(frozen=True, slots=True)
class StartRecovery:
    """Learner → master: fast ballot collided (or timed out); arbitrate.

    ``reason`` is "collision", "commutative-limit", "timeout" or
    "migration" — it picks the γ policy (physical collisions switch the
    record to classic for γ instances; commutative limit hits refresh the
    base and may re-open fast immediately, §3.4.2; mastership migrations
    take the ballot over and then restore the variant's steady-state mode,
    replying with :class:`MastershipTaken`).
    """

    record: RecordId
    reason: str
    option: Optional[Option] = None  # re-propose on behalf of this learner
    reply_to: str = ""


@dataclass(frozen=True, slots=True)
class MastershipTaken:
    """New master → placement manager: the Phase-1 takeover completed.

    Sent once the migration's classic round has decided, i.e. a classic
    quorum has granted the new master's ballot and adopted its cstruct.
    The placement directory flips at migration *start* (routing is just a
    hint; ballots arbitrate correctness) — this acknowledgement closes
    the manager's in-flight entry, and its absence triggers the takeover
    re-drive after ``takeover_timeout_ms``.
    """

    record: RecordId
    master_dc: str
    node_id: str


# ----------------------------------------------------------------------
# Visibility & catch-up
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class Visibility:
    """Coordinator → acceptors: execute (✓) or discard (✗) an option.

    Carries the whole option so that replicas that never saw the proposal
    can still apply the committed update ("piggybacking notification of
    commit state", §1; lost-propose repair).
    """

    option: Option
    committed: bool


@dataclass(frozen=True, slots=True)
class VisibilityBatch:
    """Coordinator → one acceptor: several visibilities in one message.

    The §7 future-work optimization — "batching techniques that reduce the
    message overhead".  Visibility notifications are off the commit's
    critical path ("the Learned message ... can be asynchronous, but does
    not influence the correctness"), so a coordinator may buffer them
    briefly and ship one message per destination instead of one per
    option.  Semantics are identical to delivering each
    :class:`Visibility` in order.
    """

    visibilities: Tuple[Visibility, ...]

    def __post_init__(self) -> None:
        if not self.visibilities:
            raise ValueError("empty visibility batch")


@dataclass(frozen=True, slots=True)
class CatchUp:
    """Master/repair-agent → lagging acceptor: a record's committed state.

    ``applied_ids`` lists the option ids folded into ``value`` at the
    source replica.  The adopting replica marks them executed so that
    their visibilities — possibly still in flight towards it — are not
    applied a second time on top of the adopted state.
    """

    record: RecordId
    version: int
    value: Optional[Dict[str, object]]
    exists: bool
    applied_ids: Tuple[str, ...] = ()


@dataclass(frozen=True, slots=True)
class RepairProbe:
    """Anti-entropy agent → acceptor: report committed state for repair."""

    record: RecordId
    request_id: int


@dataclass(frozen=True, slots=True)
class RepairReply:
    """Acceptor → anti-entropy agent: committed state + applied ids.

    Unlike a client :class:`ReadReply`, carries ``applied_ids`` so the
    agent can relay a CatchUp that lagging replicas can adopt without
    double-applying in-flight visibilities.
    """

    request_id: int
    record: RecordId
    exists: bool
    value: Optional[Dict[str, object]]
    version: int
    applied_ids: Tuple[str, ...]
    #: accepted-but-unexecuted options still parked in this replica's
    #: cstruct — a visibility this replica never received (e.g. dropped by
    #: a partition).  The agent re-drives or recovers them (§3.2.3).
    pending: Tuple["Option", ...] = ()


# ----------------------------------------------------------------------
# Snapshot bootstrap (elastic membership joins)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class SnapshotRequest:
    """Reconfig manager → donor replica: stream your store to ``target``.

    The donor answers with a sequence of :class:`SnapshotChunk` messages
    sent directly to the joining storage node, cut at a WAL checkpoint
    (§3.2.3's "bulk-copy techniques to bring the data up-to-date more
    efficiently without involving the Paxos protocol").
    """

    request_id: int
    target: str    # the joining storage node the chunks go to
    reply_to: str  # the reconfig manager awaiting the SnapshotAck


@dataclass(frozen=True, slots=True)
class SnapshotChunk:
    """Donor replica → joining replica: a slice of committed records.

    ``records`` entries are ``(table, key, version, value_or_None,
    applied_ids)`` tuples — exactly the CatchUp payload, batched.  The
    final chunk (``last=True``) carries the donor's WAL checkpoint LSN:
    everything at or below the cut is covered by the snapshot; writes
    after it reach the joiner through the anti-entropy sweeps that gate
    admission.
    """

    request_id: int
    seq: int
    records: Tuple[Tuple[str, str, int, Optional[Dict[str, object]], Tuple[str, ...]], ...]
    last: bool
    wal_cut: int   # donor WAL checkpoint LSN (meaningful on the last chunk)
    reply_to: str  # manager to ack once the final chunk is adopted


@dataclass(frozen=True, slots=True)
class SnapshotAck:
    """Joining replica → reconfig manager: the stream has been adopted."""

    request_id: int
    node_id: str
    records_adopted: int
    wal_cut: int


# ----------------------------------------------------------------------
# Replicated Commit (Paxos across DCs over per-DC 2PC; see
# repro.protocols.replicatedcommit)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class RcCommitRequest:
    """Client → each DC's 2PC coordinator: run your local 2PC round.

    Carries the full write-set so every data center can prepare (and
    later apply) without any cross-DC record fetch — the transaction's
    single client→DC wide-area hop.
    """

    txid: str
    updates: Tuple[Tuple[RecordId, Update], ...]
    reply_to: str  # the client tallying DC votes


@dataclass(frozen=True, slots=True)
class RcPrepare:
    """DC coordinator → local participant: lock + validate one update."""

    txid: str
    record: RecordId
    update: Update
    reply_to: str  # the DC coordinator collecting local votes


@dataclass(frozen=True, slots=True)
class RcPrepareReply:
    """Participant → DC coordinator: the local 2PC vote for one record.

    ``reason`` names the refusal from the protocol's abort vocabulary
    (``"prepared"`` on success) — surfaced in traces and the DC vote.
    """

    txid: str
    record: RecordId
    vote: bool
    reason: str


@dataclass(frozen=True, slots=True)
class RcVote:
    """DC coordinator → client: this data center's Paxos accept/reject.

    The DC's 2PC outcome *is* its vote on the single Paxos value "did
    this transaction commit?"; a classic majority of DCs decides.
    """

    txid: str
    dc: str
    accept: bool
    voter: str  # coordinator node id (trace/debug attribution)


@dataclass(frozen=True, slots=True)
class RcDecision:
    """Client → every DC coordinator: the majority decision.

    Re-carries the write-set so a coordinator whose RcCommitRequest was
    lost to a partition can still relay applies once reachable again.
    """

    txid: str
    commit: bool
    updates: Tuple[Tuple[RecordId, Update], ...]


@dataclass(frozen=True, slots=True)
class RcApply:
    """DC coordinator → local participant: apply (or release) locally.

    Commit applies are version-guarded and idempotent, so relaying them
    is safe at any time — including re-deliveries after a heal.
    """

    txid: str
    record: RecordId
    update: Update
    commit: bool


# ----------------------------------------------------------------------
# Reads
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class ReadRequest:
    table: str
    key: str
    request_id: int


@dataclass(frozen=True, slots=True)
class ReadReply:
    request_id: int
    table: str
    key: str
    exists: bool
    value: Optional[Dict[str, object]]
    version: int
    is_fast_era: bool
    master_hint: str


# ----------------------------------------------------------------------
# Dangling-transaction recovery (§3.2.3)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class StatusRequest:
    """Recovery agent → acceptors: what do you know about this tx's option?"""

    txid: str
    record: RecordId
    request_id: int


@dataclass(frozen=True, slots=True)
class StatusReply:
    """One acceptor's knowledge of one option of a transaction."""

    request_id: int
    txid: str
    record: RecordId
    known: bool
    status: Optional[OptionStatus]   # acceptor's local flag if known
    executed: bool                   # visibility already applied
    option: Optional[Option]         # the full option, for re-proposal
    writeset: Tuple[RecordId, ...]   # write-set keys carried by the option
