"""The MDCC commit protocol — the paper's primary contribution.

Modules map onto the paper's pseudocode (Algorithms 1-3):

* :mod:`repro.core.options` — options ω(up, ✓/✗), physical and commutative
  updates, the cstruct command type (§3.2).
* :mod:`repro.core.config` — protocol knobs: quorum sizes, the γ fast/classic
  policy, timeouts, and the evaluation's "MDCC"/"Fast"/"Multi" variants.
* :mod:`repro.core.demarcation` — quorum demarcation limits for value
  constraints (§3.4.2).
* :mod:`repro.core.state` — per-record acceptor state (ballots, cstruct,
  pending options, base values).
* :mod:`repro.core.acceptor` — the storage-node role (Algorithm 3).
* :mod:`repro.core.master` — the leader role: Phase 1/2, collision recovery,
  base refresh (Algorithm 2).
* :mod:`repro.core.storage_node` — the simulated node hosting both roles.
* :mod:`repro.core.coordinator` — the app-server transaction manager
  (Algorithm 1).
* :mod:`repro.core.recovery` — dangling-transaction reconstruction (§3.2.3).
* :mod:`repro.core.topology` — replica placement and master policies.
"""

from repro.core.config import MDCCConfig, ProtocolVariant
from repro.core.options import (
    CommutativeUpdate,
    Option,
    OptionStatus,
    PhysicalUpdate,
    RecordId,
)
from repro.core.coordinator import MDCCCoordinator, TransactionOutcome, WriteSet
from repro.core.storage_node import MDCCStorageNode
from repro.core.topology import ReplicaMap

__all__ = [
    "CommutativeUpdate",
    "MDCCConfig",
    "MDCCCoordinator",
    "MDCCStorageNode",
    "Option",
    "OptionStatus",
    "PhysicalUpdate",
    "ProtocolVariant",
    "RecordId",
    "ReplicaMap",
    "TransactionOutcome",
    "WriteSet",
]
