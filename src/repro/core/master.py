"""The leader/master role (Algorithm 2).

Each record has a master (default: chosen by the placement policy) whose
job is *not* on the fast path: it arbitrates collisions, owns classic
ballots, and refreshes commutative base values.  Masters live on storage
nodes ("In our implementation, we place masters on storage nodes", §3.1.1)
— :class:`MasterRole` is embedded in
:class:`~repro.core.storage_node.MDCCStorageNode` and handles:

* ``ProposeClassic`` — classic-era proposals (Phase2aClassic, line 46);
* ``StartRecovery`` — collision / limit / timeout arbitration: a new
  classic ballot, Phase 1 to the replicas, ProvedSafe over the returned
  cstructs, then Phase 2 with the safe cstruct plus any queued proposals;
* the post-recovery mode switch: γ classic instances after a physical
  collision (§3.3.2), or an immediate fast re-open with a refreshed
  demarcation base after a commutative limit hit (§3.4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.config import MDCCConfig
from repro.core.messages import (
    CatchUp,
    MPhase1a,
    MPhase1b,
    MPhase2a,
    MPhase2b,
    MastershipTaken,
    OptionOutcome,
    ProposeClassic,
    StartRecovery,
)
from repro.core.fastpolicy import make_policy
from repro.core.options import Option, OptionStatus, RecordId
from repro.paxos.ballot import Ballot, BallotRange, INITIAL_FAST_BALLOT
from repro.paxos.cstruct import CStruct
from repro.paxos.generalized import CStructReport, proved_safe
from repro.storage.partition import stable_hash
from repro.trace import runtime as trace_runtime

__all__ = ["MasterRole"]


@dataclass
class _MasterRecordState:
    """Leader-side book-keeping for one record."""

    ballot: Optional[Ballot] = None          # established classic ballot
    established: bool = False
    round_counter: int = 0                   # for unique ballot generation
    phase: str = "idle"                      # idle | phase1 | phase2
    recovery_reason: Optional[str] = None
    phase1_replies: Dict[str, MPhase1b] = field(default_factory=dict)
    phase2_replies: Dict[str, MPhase2b] = field(default_factory=dict)
    phase2_cstruct: Optional[CStruct] = None
    queue: List[Option] = field(default_factory=list)
    queued_ids: Set[str] = field(default_factory=set)
    waiters: Dict[str, Set[str]] = field(default_factory=dict)
    outcome_cache: Dict[str, OptionStatus] = field(default_factory=dict)
    #: decided-accepted options not yet known executed at EVERY replica.
    #: They must ride every subsequent Phase2a: the paper's maxTried is
    #: cumulative, and dropping an option that is still pending on a
    #: lagging replica would let a conflicting later option pass that
    #: replica's validSingle check — a lost update.  Pruning is gated on
    #: ``min_observed_version``: the slowest committed version reported by
    #: any replica in the latest quorum round.
    live: Dict[str, Option] = field(default_factory=dict)
    #: replica id -> last committed version it reported in any phase reply.
    replica_versions: Dict[str, int] = field(default_factory=dict)
    highest_seen: Ballot = INITIAL_FAST_BALLOT
    pending_post_grant: Optional[BallotRange] = None
    pending_new_base: Optional[Dict[str, float]] = None
    retries: int = 0
    #: membership epoch the in-flight Phase-1/2 round was started under;
    #: a bump mid-round restarts it so no vote straddles configurations.
    round_epoch: int = 0
    #: placement manager to notify once a migration takeover decides.
    migration_notify: Optional[str] = None
    #: tracing: parent context captured from the triggering message, and
    #: the open phase span for the in-flight round (None when tracing is
    #: off — these fields stay at their defaults and cost nothing).
    trace_ctx: Optional[tuple] = None
    trace_span: Optional[object] = None


class MasterRole:
    """Leader logic, embedded in a storage node.

    The embedding node provides messaging (``node.send``), timers
    (``node.set_timer``), its identity, and its local acceptor state (the
    master is also a replica).
    """

    def __init__(self, node, config: MDCCConfig) -> None:
        self.node = node
        self.config = config
        self.policy = make_policy(config)
        self._records: Dict[RecordId, _MasterRecordState] = {}

    @property
    def spec(self):
        """Quorum sizes under the current membership epoch (via the node)."""
        return self.node.spec

    def _epoch(self) -> int:
        return self.node.placement.epoch

    def _fence_stale(self, message_epoch: int) -> bool:
        if message_epoch < self._epoch():
            self.node.counters.increment("reconfig.stale_epoch_dropped")
            return True
        return False

    def _state(self, record: RecordId) -> _MasterRecordState:
        ms = self._records.get(record)
        if ms is None:
            ms = self._records[record] = _MasterRecordState()
        return ms

    def _trace_phase(self, kind: str, record: RecordId, ms: _MasterRecordState, **attrs):
        """Open a phase span for this record's in-flight round.

        Parents to the ambient context (the message that triggered the
        round) when present, else the context remembered from the round
        that queued the work; falls back to root-parenting via the first
        queued option's txid.  Returns None when tracing is off or no
        anchor exists.  An unfinished prior phase span is closed as
        superseded so restarts never leak open spans.
        """
        tracer = self.node.tracer
        if not tracer.enabled:
            return None
        ctx = trace_runtime.current_context() or ms.trace_ctx
        txid = ms.queue[0].txid if ms.queue else None
        if ctx is None and txid is None:
            return None
        if ms.trace_span is not None:
            ms.trace_span.finish(self.node.now, "superseded")
        span = tracer.start_span(
            kind,
            self.node.node_id,
            self.node.now,
            parent=ctx,
            txid=txid,
            record=f"{record.table}/{record.key}",
            **attrs,
        )
        if ctx is not None:
            ms.trace_ctx = ctx
        ms.trace_span = span
        return span

    # ------------------------------------------------------------------
    # Inbound: proposals routed through the master
    # ------------------------------------------------------------------
    def on_propose(self, message: ProposeClassic, src_id: str) -> None:
        ms = self._state(message.option.record)
        option_id = message.option.option_id
        ms.waiters.setdefault(option_id, set()).add(message.reply_to)
        if option_id in ms.outcome_cache:
            self._notify(message.option.record, message.option, ms.outcome_cache[option_id])
            return
        if option_id not in ms.queued_ids and not self._inflight(ms, option_id):
            ms.queue.append(message.option.with_status(OptionStatus.PENDING))
            ms.queued_ids.add(option_id)
        self._pump(message.option.record)

    def on_start_recovery(self, message: StartRecovery, src_id: str) -> None:
        ms = self._state(message.record)
        if message.reason == "migration":
            # Remember whom to tell once a full classic round has decided
            # under our ballot; if a round is already running its
            # completion doubles as the takeover.
            ms.migration_notify = message.reply_to or src_id
        if message.option is not None:
            option_id = message.option.option_id
            reply_to = message.reply_to or src_id
            ms.waiters.setdefault(option_id, set()).add(reply_to)
            if option_id in ms.outcome_cache:
                self._notify(message.record, message.option, ms.outcome_cache[option_id])
                return
            if option_id not in ms.queued_ids and not self._inflight(ms, option_id):
                ms.queue.append(message.option.with_status(OptionStatus.PENDING))
                ms.queued_ids.add(option_id)
        if ms.phase == "idle":
            ms.recovery_reason = message.reason
            self._start_phase1(message.record)
        # else: recovery already running; queued option rides along.

    # ------------------------------------------------------------------
    # Phase 1
    # ------------------------------------------------------------------
    def _start_phase1(self, record: RecordId) -> None:
        ms = self._state(record)
        ms.phase = "phase1"
        ms.established = False
        ms.round_counter = max(ms.round_counter, ms.highest_seen.round) + 1
        ballot = Ballot(round=ms.round_counter, fast=False, proposer=self.node.node_id)
        ms.ballot = ballot
        ms.phase1_replies = {}
        ms.round_epoch = self._epoch()
        version = self._local_version(record)
        grant = BallotRange(version, None, ballot)
        replicas = self.node.placement.replicas(record)
        span = self._trace_phase(
            "phase1-takeover",
            record,
            ms,
            ballot=repr(ballot),
            reason=ms.recovery_reason or "route",
            epoch=ms.round_epoch,
        )
        previous = trace_runtime.set_context(span.ctx) if span is not None else None
        try:
            for replica in replicas:
                self.node.send(
                    replica,
                    MPhase1a(
                        record=record,
                        ballot=ballot,
                        grant=grant,
                        epoch=ms.round_epoch,
                    ),
                )
        finally:
            if span is not None:
                trace_runtime.reset_context(previous)
        self.node.set_timer(
            self.config.recovery_timeout_ms + self._stagger(ms.round_counter),
            self._phase1_timeout,
            record,
            ballot,
        )
        self.node.counters.increment("master.phase1_started")

    def on_phase1b(self, message: MPhase1b, src_id: str) -> None:
        if self._fence_stale(message.epoch):
            # A promise from the old configuration must not count toward
            # a quorum sized for the new one.
            return
        ms = self._state(message.record)
        versions = ms.replica_versions
        prev = versions.get(src_id)
        if prev is None or message.committed_version > prev:
            versions[src_id] = message.committed_version
        if message.promised > ms.highest_seen:
            ms.highest_seen = message.promised
        if ms.phase != "phase1" or message.ballot != ms.ballot:
            return
        if ms.round_epoch != self._epoch():
            # Membership changed since this round started: restart it so
            # the promise set is collected entirely under one epoch.
            self.node.counters.increment("reconfig.epoch_round_restarts")
            self._start_phase1(message.record)
            return
        if not message.granted:
            if self._abdicate_if_deposed(message.record, message.promised):
                return
            # Nacked: leapfrog past the competing ballot.
            ms.round_counter = max(ms.round_counter, message.promised.round)
            self._start_phase1(message.record)
            return
        ms.phase1_replies[src_id] = message
        if len(ms.phase1_replies) < self.spec.classic_size:
            return
        self._finish_phase1(message.record)

    def _finish_phase1(self, record: RecordId) -> None:
        ms = self._state(record)
        replies = list(ms.phase1_replies.values())
        # Authoritative committed state: the newest version any quorum
        # member reports; laggards are caught up.
        newest = max(replies, key=lambda r: r.committed_version)
        for replica_id, reply in ms.phase1_replies.items():
            if reply.committed_version < newest.committed_version:
                self.node.send(
                    replica_id,
                    CatchUp(
                        record=record,
                        version=newest.committed_version,
                        value=newest.committed_value,
                        exists=newest.committed_value is not None,
                        applied_ids=newest.applied_ids,
                    ),
                )
        # An acceptor whose cstruct has fully executed (and been pruned)
        # reports cstruct=None but still carries its accepted ballot — that
        # is a VOTE for the empty cstruct at that ballot, not an abstention.
        # Discarding it would let a stale lower-ballot accept (e.g. from a
        # replica that was dark through a failover) masquerade as the
        # highest vote and resurrect an option that was never chosen.
        reports = [
            CStructReport(
                acceptor=replica_id,
                ballot=reply.accepted_ballot,
                value=reply.cstruct
                if reply.cstruct is not None or reply.accepted_ballot is None
                else CStruct(),
            )
            for replica_id, reply in ms.phase1_replies.items()
        ]
        safe = proved_safe(reports, self.spec, self.node.placement.replicas(record))
        normalized = self._normalize(record, list(safe), newest)
        ms.established = True
        ms.phase = "idle"
        if ms.trace_span is not None:
            ms.trace_span.finish(self.node.now, "established")
            ms.trace_span = None
        self._prepare_mode_switch(record, newest)
        self._start_phase2(record, normalized)

    def _normalize(
        self, record: RecordId, options: List[Option], newest: MPhase1b
    ) -> CStruct:
        """Re-validate statuses against the authoritative committed state.

        The safe cstruct can contain options whose flags were set by
        diverged acceptors (or merged deterministically when nothing was
        provably chosen).  Replaying validation in cstruct order guarantees
        the arbitrated history is internally consistent: at most one
        accepted physical write per version, escrow never over-committed.

        Two invariants protect already-learned outcomes:

        * rejected flags are never flipped to accepted — a learner may
          already have acted on the rejection;
        * ACCEPTED options behind the authoritative committed version are
          *committed history* (their visibility executed somewhere): they
          keep their flag and stay in the cstruct so replicas that have
          not executed them yet keep them pending.  Flipping or dropping
          them would reopen their version slot on lagging replicas.
        """
        schema = self.node.store.schema(record.table)
        version = newest.committed_version
        value: Dict[str, object] = dict(newest.committed_value or {})
        exists = newest.committed_value is not None
        pending_any = False
        pending_deltas: Dict[str, List[float]] = {}
        out: List[Option] = []
        for option in options:
            if option.status is OptionStatus.REJECTED:
                out.append(option)
                continue
            if option.is_commutative:
                if option.status is OptionStatus.ACCEPTED:
                    # Possibly executed already; keep, and conservatively
                    # count it against the escrow window.
                    for attribute, delta in option.update.deltas:
                        pending_deltas.setdefault(attribute, []).append(delta)
                    out.append(option)
                    continue
                verdict = self._validate_delta(
                    schema, exists, value, pending_any, pending_deltas, option
                )
                if verdict:
                    for attribute, delta in option.update.deltas:
                        pending_deltas.setdefault(attribute, []).append(delta)
                    out.append(option.with_status(OptionStatus.ACCEPTED))
                else:
                    out.append(option.with_status(OptionStatus.REJECTED))
                continue
            update = option.update
            if option.status is OptionStatus.ACCEPTED and update.vread < version:
                # Committed history: already executed into `version`.
                out.append(option)
                continue
            valid = update.vread == version and not pending_any and not any(
                pending_deltas.values()
            )
            if option.status is OptionStatus.ACCEPTED and valid:
                pending_any = True
                out.append(option)
            elif option.status is OptionStatus.PENDING and valid:
                pending_any = True
                out.append(option.with_status(OptionStatus.ACCEPTED))
            else:
                out.append(option.with_status(OptionStatus.REJECTED))
        return CStruct(out)

    def _validate_delta(
        self,
        schema,
        exists: bool,
        value: Dict[str, object],
        pending_physical: bool,
        pending_deltas: Dict[str, List[float]],
        option: Option,
    ) -> bool:
        from repro.core.demarcation import demarcation_limits, escrow_accepts

        if not exists or pending_physical:
            return False
        for attribute, delta in option.update.deltas:
            constraint = schema.constraint(attribute)
            if constraint is None:
                continue
            current = value.get(attribute, 0)
            if not isinstance(current, (int, float)):
                return False
            # Classic round: full escrow window (no fast-quorum slack).
            limits = demarcation_limits(self.spec.n, self.spec.n, float(current), constraint)
            if not escrow_accepts(
                float(current), pending_deltas.get(attribute, []), delta, limits
            ):
                return False
        return True

    def _superseded(self, option: Option, committed_version: int) -> bool:
        if option.is_commutative:
            return False
        return option.update.vread < committed_version

    def _prepare_mode_switch(self, record: RecordId, newest: MPhase1b) -> None:
        """Choose the post-recovery grant per §3.3.2 / §3.4.2.

        The classic horizon comes from the configured
        :class:`~repro.core.fastpolicy.GammaPolicy` — the paper's static γ
        by default, or the adaptive conflict-rate policy."""
        ms = self._state(record)
        reason = ms.recovery_reason or "collision"
        version = newest.committed_version
        assert ms.ballot is not None
        if reason == "migration" and self.config.fast_ballots_enabled:
            # A mastership move, not a conflict — no γ policy involved:
            # re-open the fast era immediately; under fast ballots the new
            # master matters only for future arbitration/forwarding.
            fast_ballot = Ballot(
                round=ms.ballot.round + 1, fast=True, proposer=self.node.node_id
            )
            ms.pending_post_grant = BallotRange(version, None, fast_ballot)
            ms.pending_new_base = self._constrained_values(record, newest)
            self.node.counters.increment("master.recovery.migration")
            return
        if not self.config.fast_ballots_enabled:
            # Stable-master variant: fast instances never resume, so a γ
            # horizon is meaningless — hold an open-ended classic lease.
            # The fence stands until a higher-ballot Phase 1 (the next
            # migration or a failover) supersedes it, so two masters can
            # never both assemble a classic quorum.  Also skips the γ
            # policy: these recoveries are not a conflict-rate signal.
            ms.pending_post_grant = BallotRange(version, None, ms.ballot)
            ms.pending_new_base = self._constrained_values(record, newest)
            self.node.counters.increment(f"master.recovery.{reason}")
            return
        horizon = self.policy.classic_horizon(record, reason, self.node.now)
        if reason == "commutative-limit" and horizon == 0:
            # One classic round refreshes the base, then fast re-opens.
            # Classic outranks fast at equal round, so the re-opened fast
            # ballot needs the next round number to become effective.
            fast_ballot = Ballot(
                round=ms.ballot.round + 1, fast=True, proposer=self.node.node_id
            )
            ms.pending_post_grant = BallotRange(version, None, fast_ballot)
            ms.pending_new_base = self._constrained_values(record, newest)
        else:
            ms.pending_post_grant = BallotRange(
                version, version + max(horizon, 1) - 1, ms.ballot
            )
            ms.pending_new_base = self._constrained_values(record, newest)
        self.node.counters.increment(f"master.recovery.{reason}")

    def _constrained_values(
        self, record: RecordId, newest: MPhase1b
    ) -> Optional[Dict[str, float]]:
        """The new demarcation base: committed values of constrained attrs."""
        if newest.committed_value is None:
            return None
        schema = self.node.store.schema(record.table)
        base = {
            attribute: float(newest.committed_value[attribute])
            for attribute in schema.constraints
            if isinstance(newest.committed_value.get(attribute), (int, float))
        }
        return base or None

    def _phase1_timeout(self, record: RecordId, ballot: Ballot) -> None:
        ms = self._state(record)
        if ms.phase == "phase1" and ms.ballot == ballot:
            ms.retries += 1
            self._start_phase1(record)

    # ------------------------------------------------------------------
    # Phase 2
    # ------------------------------------------------------------------
    def _pump(self, record: RecordId) -> None:
        ms = self._state(record)
        if ms.phase != "idle":
            return
        if not ms.queue:
            return
        if not ms.established:
            if (
                not self.config.fast_ballots_enabled
                and not self.node.placement.is_adaptive
                and not self.node.placement.is_elastic
            ):
                # Multi variant: "a stable master can skip Phase 1"
                # (§5.3.1).  Mastership is structurally unique (placement
                # decides it), so a first classic ballot needs no election;
                # failover still goes through Phase 1 via StartRecovery.
                # Under adaptive placement mastership is NOT structurally
                # unique (it migrates), so every master must win a real
                # Phase 1 — otherwise two phase-1-less masters could both
                # assemble classic quorums for conflicting cstructs.  The
                # same holds under elastic membership: an epoch bump
                # re-hashes mastership wholesale.
                self.establish_stable_mastership(record)
            else:
                ms.recovery_reason = ms.recovery_reason or "route"
                self._start_phase1(record)
                return
        self._start_phase2(record, CStruct())

    def _start_phase2(self, record: RecordId, base_cstruct: CStruct) -> None:
        ms = self._state(record)
        assert ms.ballot is not None
        span = self._trace_phase(
            "phase2-tally",
            record,
            ms,
            ballot=repr(ms.ballot),
            epoch=self._epoch(),
        )
        self._prune_live(record, ms)
        cstruct = base_cstruct
        for option in ms.live.values():
            if not cstruct.contains_id(option.option_id):
                cstruct = cstruct.append(option)
        queued, ms.queue = ms.queue, []
        ms.queued_ids = set()
        for option in queued:
            if not cstruct.contains_id(option.option_id):
                cstruct = cstruct.append(option)
        ms.phase = "phase2"
        ms.phase2_replies = {}
        ms.phase2_cstruct = cstruct
        ms.round_epoch = self._epoch()
        message = MPhase2a(
            record=record,
            ballot=ms.ballot,
            cstruct=cstruct,
            post_grant=ms.pending_post_grant,
            new_base=ms.pending_new_base,
            epoch=ms.round_epoch,
        )
        if span is not None:
            span.attrs["options"] = sum(1 for _ in cstruct)
        previous = trace_runtime.set_context(span.ctx) if span is not None else None
        try:
            for replica in self.node.placement.replicas(record):
                self.node.send(replica, message)
        finally:
            if span is not None:
                trace_runtime.reset_context(previous)
        self.node.set_timer(
            self.config.recovery_timeout_ms + self._stagger(ms.round_counter + 7),
            self._phase2_timeout,
            record,
            ms.ballot,
        )
        self.node.counters.increment("master.phase2_started")

    def on_phase2b(self, message: MPhase2b, src_id: str) -> None:
        if self._fence_stale(message.epoch):
            return
        ms = self._state(message.record)
        versions = ms.replica_versions
        prev = versions.get(src_id)
        if prev is None or message.committed_version > prev:
            versions[src_id] = message.committed_version
        if ms.phase != "phase2" or message.ballot != ms.ballot:
            return
        if ms.round_epoch != self._epoch():
            # The round's Phase2a predates the current configuration;
            # re-establish mastership under the new epoch from Phase 1.
            self.node.counters.increment("reconfig.epoch_round_restarts")
            ms.established = False
            self._start_phase1(message.record)
            return
        if not message.accepted:
            if message.promised is not None and self._abdicate_if_deposed(
                message.record, message.promised
            ):
                return
            # Pre-empted by a higher ballot: restart from Phase 1.
            ms.established = False
            self._start_phase1(message.record)
            return
        ms.phase2_replies[src_id] = message
        self._try_decide_phase2(message.record)

    def _try_decide_phase2(self, record: RecordId) -> None:
        ms = self._state(record)
        spec = self.spec
        classic_size = spec.classic_size
        replies = ms.phase2_replies
        if len(replies) < classic_size:
            return
        assert ms.phase2_cstruct is not None
        reply_values = list(replies.values())
        decided: Dict[str, OptionStatus] = {}
        undecided: List[str] = []
        for option in ms.phase2_cstruct:
            option_id = option.option_id
            tally: Dict[OptionStatus, int] = {}
            for reply in reply_values:
                cstruct = reply.cstruct
                if cstruct is None:
                    continue
                adopted = cstruct.command(option_id)
                if adopted is not None and adopted.status.decided:
                    tally[adopted.status] = tally.get(adopted.status, 0) + 1
            verdict = None
            for status, count in tally.items():
                if count >= classic_size:
                    verdict = status
                    break
            if verdict is None:
                undecided.append(option_id)
            else:
                decided[option_id] = verdict
        if undecided and len(replies) < spec.n:
            return  # wait for more replies
        if undecided:
            # All replicas replied but no status reached a classic quorum
            # (lagging replicas disagree): catch laggards up to the
            # master's own committed state — version and value must come
            # from the SAME snapshot, or laggards adopt a poisoned pair —
            # and retry the round.
            state = self.node.record_state(record)
            snapshot = state.record.snapshot()
            for replica_id, reply in ms.phase2_replies.items():
                if reply.committed_version < snapshot.version:
                    self.node.send(
                        replica_id,
                        CatchUp(
                            record=record,
                            version=snapshot.version,
                            value=snapshot.value,
                            exists=snapshot.exists,
                            applied_ids=tuple(sorted(state.record.applied_ids)),
                        ),
                    )
            ms.retries += 1
            self.node.counters.increment("master.phase2_retry")
            self._start_phase2(record, ms.phase2_cstruct)
            return
        # Round complete: dispatch outcomes.
        ms.phase = "idle"
        ms.pending_post_grant = None
        ms.pending_new_base = None
        ms.recovery_reason = None
        cstruct = ms.phase2_cstruct
        ms.phase2_cstruct = None
        span = ms.trace_span
        if span is not None:
            span.finish(self.node.now, "decided")
            ms.trace_span = None
            ms.trace_ctx = None
        previous = trace_runtime.set_context(span.ctx) if span is not None else None
        try:
            for option in cstruct:
                status = decided[option.option_id]
                ms.outcome_cache[option.option_id] = status
                if status is OptionStatus.ACCEPTED:
                    ms.live[option.option_id] = option.with_status(status)
                else:
                    ms.live.pop(option.option_id, None)
                self._notify(record, option, status)
        finally:
            if span is not None:
                trace_runtime.reset_context(previous)
        self._prune_live(record, ms)
        self.node.counters.increment("master.phase2_decided")
        if ms.migration_notify is not None:
            # The takeover round is decided at a classic quorum: this node
            # now holds the record's ballot and the directory may flip.
            self.node.send(
                ms.migration_notify,
                MastershipTaken(
                    record=record, master_dc=self.node.dc, node_id=self.node.node_id
                ),
            )
            ms.migration_notify = None
            self.node.counters.increment("master.migrations_completed")
        self._pump(record)

    def _prune_live(self, record: RecordId, ms: _MasterRecordState) -> None:
        """Drop live options once no replica can still hold them pending.

        Local execution alone is NOT sufficient: the master's replica may
        have applied the visibility while others have not, and dropping
        the option from the next Phase2a would erase it from their
        cstructs mid-flight.  A physical option is safe to drop only when
        the slowest observed replica has committed past its read version;
        commutative options when the slowest replica has caught up to the
        master's own committed version.
        """
        state = self.node.record_state(record)
        slowest = self._slowest_replica_version(record, ms)
        for option_id in list(ms.live):
            option = ms.live[option_id]
            if option_id in state.rejected:
                del ms.live[option_id]
                continue
            if option.is_commutative:
                if option_id in state.executed and slowest >= state.version:
                    del ms.live[option_id]
            else:
                if option.update.vread < slowest:
                    del ms.live[option_id]

    def _slowest_replica_version(
        self, record: RecordId, ms: _MasterRecordState
    ) -> int:
        """The lowest committed version any replica is known to hold.

        Replicas that have never reported count as version 0, so nothing
        prunes until every replica has checked in at least once.
        """
        return min(
            ms.replica_versions.get(replica, 0)
            for replica in self.node.placement.replicas(record)
        )

    def _phase2_timeout(self, record: RecordId, ballot: Ballot) -> None:
        ms = self._state(record)
        if ms.phase == "phase2" and ms.ballot == ballot:
            ms.retries += 1
            if ms.phase2_cstruct is not None:
                self._start_phase2(record, ms.phase2_cstruct)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _notify(self, record: RecordId, option: Option, status: OptionStatus) -> None:
        ms = self._state(record)
        waiters = ms.waiters.pop(option.option_id, set())
        outcome = OptionOutcome(
            option_id=option.option_id,
            txid=option.txid,
            record=record,
            status=status,
        )
        # Sorted: waiter sets iterate in hash order, which is salted per
        # process (PYTHONHASHSEED) — and send order decides which jitter
        # draw each message gets, so an unsorted walk here makes whole
        # scenario runs irreproducible across processes.
        for waiter in sorted(waiters):
            self.node.send(waiter, outcome)

    def _inflight(self, ms: _MasterRecordState, option_id: str) -> bool:
        return ms.phase2_cstruct is not None and ms.phase2_cstruct.contains_id(option_id)

    def _local_version(self, record: RecordId) -> int:
        state = self.node.record_state(record)
        return state.version

    def _stagger(self, salt: int) -> float:
        fingerprint = stable_hash(f"{self.node.node_id}:{salt}") % 500
        return float(fingerprint)

    def _abdicate_if_deposed(self, record: RecordId, promised: Ballot) -> bool:
        """Stand down if a mastership migration moved this record away.

        Without this check a deposed master would leapfrog the new
        master's ballot on every nack, and the two would duel for as long
        as stale in-flight proposals keep arriving.  Abdication applies
        only when mastership can actually move — adaptive placement
        migrates it per record, and an elastic membership epoch bump
        re-hashes it wholesale — AND the competing ballot belongs to the
        node routing now points at; a nack from any *other* contender
        (e.g. a failover race while the routed master is dark) still
        leapfrogs, preserving liveness.

        The queue is handed to the new master as ordinary ProposeClassic
        messages; its Phase-1 takeover already carried over any accepted
        options via the replicas' cstructs.
        """
        placement = self.node.placement
        if not (placement.is_adaptive or placement.is_elastic):
            return False
        new_master = placement.master_node(record)
        if new_master == self.node.node_id or promised.proposer != new_master:
            return False
        ms = self._state(record)
        ms.phase = "idle"
        ms.established = False
        ms.recovery_reason = None
        ms.phase1_replies = {}
        ms.phase2_replies = {}
        if ms.trace_span is not None:
            ms.trace_span.finish(self.node.now, "abdicated")
            ms.trace_span = None
            ms.trace_ctx = None
        cstruct = ms.phase2_cstruct
        ms.phase2_cstruct = None
        ms.pending_post_grant = None
        ms.pending_new_base = None
        forwarded: Dict[str, Option] = {}
        if cstruct is not None:
            for option in cstruct:
                if option.option_id not in ms.outcome_cache:
                    forwarded[option.option_id] = option.with_status(
                        OptionStatus.PENDING
                    )
        for option in ms.queue:
            forwarded.setdefault(option.option_id, option)
        ms.queue = []
        ms.queued_ids = set()
        for option_id, option in forwarded.items():
            # One forward per waiting coordinator keeps every learner's
            # OptionOutcome path alive; the new master dedups by option id.
            # Waiterless options (adopted history) are NOT forwarded: the
            # replicas' cstructs already carry them into the new master's
            # Phase 1.
            for waiter in sorted(ms.waiters.pop(option_id, set())):
                self.node.send(
                    new_master, ProposeClassic(option=option, reply_to=waiter)
                )
        if ms.migration_notify is not None:
            # A takeover we were asked to run lost to the routed master;
            # nothing to report — the directory already points there.
            ms.migration_notify = None
        self.node.counters.increment("master.abdications")
        return True

    def establish_stable_mastership(self, record: RecordId) -> None:
        """Pre-grant a standing classic ballot (the Multi variant's
        "stable master can skip Phase 1" setup).  Called by the cluster
        builder before the simulation starts; acceptors are seeded with the
        matching grant out of band."""
        ms = self._state(record)
        ms.round_counter += 1
        ms.ballot = Ballot(round=ms.round_counter, fast=False, proposer=self.node.node_id)
        ms.established = True
