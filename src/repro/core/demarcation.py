"""Quorum demarcation: enforcing value constraints under fast ballots.

§3.4.2 in full: a storage node may only accept a commutative option "if the
option would not violate the constraint under all permutations of
commit/abort outcomes for pending options" (escrow, [19]).  Local checks
alone are insufficient under quorum replication — different message arrival
orders let jointly-infeasible options each gather a fast quorum — so MDCC
tightens the local bound with a *demarcation* limit:

    L = (N − Q_F) / N · X

where N is the replication factor, Q_F the fast quorum size, and X the base
value (distance above the constraint minimum).  Every successful update
drains at least Q_F · δ of the system-wide N · X resource, so by the time
the true value reaches the constraint boundary, stragglers can hold at most
(N − Q_F) · X unobserved resource — exactly what L reserves.

The module generalizes the paper's "value at least 0, all updates are
decrements" presentation to arbitrary [min, max] bounds: an upper limit U
symmetrically guards increments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.storage.schema import Constraint

__all__ = ["DemarcationLimits", "demarcation_limits", "escrow_accepts"]


@dataclass(frozen=True, slots=True)
class DemarcationLimits:
    """The per-node acceptance window for one attribute's base value.

    ``lower``/``upper`` are the thresholds a node must never let the
    worst-case value cross (None = unbounded on that side).
    """

    lower: Optional[float]
    upper: Optional[float]

    def worst_case_ok(self, low_value: float, high_value: float) -> bool:
        """Whether worst-case projections stay inside the window."""
        if self.lower is not None and low_value < self.lower:
            return False
        if self.upper is not None and high_value > self.upper:
            return False
        return True


def demarcation_limits(
    n: int,
    fast_quorum: int,
    base_value: float,
    constraint: Constraint,
) -> DemarcationLimits:
    """Compute L (and symmetric U) for ``base_value`` under ``constraint``.

    The paper's formula assumes minimum 0; for a general minimum m the
    "resource" is the headroom X − m, giving
    ``L = m + (N − Q_F)/N · (X − m)`` and symmetrically
    ``U = M − (N − Q_F)/N · (M − X)`` for a maximum M.
    """
    if not 1 <= fast_quorum <= n:
        raise ValueError(f"fast quorum {fast_quorum} out of range for n={n}")
    slack_fraction = (n - fast_quorum) / n

    lower: Optional[float] = None
    if constraint.minimum is not None:
        headroom = max(base_value - constraint.minimum, 0.0)
        lower = constraint.minimum + slack_fraction * headroom

    upper: Optional[float] = None
    if constraint.maximum is not None:
        headroom = max(constraint.maximum - base_value, 0.0)
        upper = constraint.maximum - slack_fraction * headroom

    return DemarcationLimits(lower=lower, upper=upper)


def escrow_accepts(
    current_value: float,
    pending_deltas: Iterable[float],
    new_delta: float,
    limits: DemarcationLimits,
) -> bool:
    """The storage-node acceptance test (Algorithm 3, lines 93-99).

    ``current_value`` is the node's committed value (base plus already
    executed options); ``pending_deltas`` are accepted-but-unexecuted
    options, whose transactions may still commit or abort.  The worst case
    for the lower bound assumes every pending decrement commits and every
    pending increment aborts; symmetrically for the upper bound.

    The test is *marginal*: an option is rejected only "if it would cause
    the value to fall below" a limit (§3.4.2) — a pure increment can never
    violate the lower bound and vice versa.
    """
    # At most one branch consumes ``pending_deltas`` (new_delta has one
    # sign), so the iterable is read once and needs no materialization.
    if new_delta < 0 and limits.lower is not None:
        low = current_value + sum(d for d in pending_deltas if d < 0) + new_delta
        if low < limits.lower:
            return False
    if new_delta > 0 and limits.upper is not None:
        high = current_value + sum(d for d in pending_deltas if d > 0) + new_delta
        if high > limits.upper:
            return False
    return True
