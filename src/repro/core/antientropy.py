"""Anti-entropy: background replica repair after failures.

The paper leaves post-outage repair to the future — "if the data center
comes up again, only records which have been updated during the failure
would still be impacted by the increased latency until the next update or
a background process brought them up-to-date" (§5.3.4), and §3.2.3
anticipates "bulk-copy techniques to bring the data up-to-date more
efficiently without involving the Paxos protocol".  This module is that
background process.

:class:`AntiEntropyAgent` sweeps records: it reads the committed snapshot
from every replica, finds the freshest version among the replies, and
sends :class:`~repro.core.messages.CatchUp` to replicas that are behind.
Safety is inherited from the catch-up rule — replicas only ever adopt a
*newer* committed version (``catch_up`` is a no-op for stale or duplicate
repair messages), and the repair payload is always a version some replica
already committed.  The sweep therefore never rolls back state and can be
run at any time, even during failures; replicas that are unreachable now
are simply repaired by a later sweep.

A sweep is complete when every replica replied or the per-record timeout
expired; repair proceeds with whatever arrived.  With fewer than a classic
quorum of replies the freshest version seen may itself be behind the
latest commit — the sweep still helps (it can only move replicas forward)
and a subsequent sweep finishes the job once more replicas answer.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import MDCCConfig
from repro.core.messages import CatchUp, RepairProbe, RepairReply, Visibility
from repro.core.options import RecordId
from repro.core.topology import ReplicaMap
from repro.metrics import CounterSet
from repro.transport.base import Future, Node, Transport

__all__ = ["AntiEntropyAgent", "SweepReport"]


@dataclass
class SweepReport:
    """What one sweep observed and repaired."""

    records_swept: int = 0
    replicas_repaired: int = 0
    records_with_lag: int = 0
    unreachable_replies: int = 0  # replicas that never answered the probe
    #: node ids that never answered at least one probe — lets callers
    #: (e.g. the reconfig manager's admission gate) tell a dark *joiner*
    #: from some other unreachable replica.
    unreachable_nodes: set = field(default_factory=set)
    #: visibilities re-driven for options executed elsewhere but stuck
    #: pending at some replica (the dropped-visibility case).
    visibilities_redriven: int = 0
    #: dangling transactions handed to the recovery agent (§3.2.3): their
    #: option is pending somewhere but provably executed nowhere.
    recoveries_triggered: int = 0

    def merge(self, other: "SweepReport") -> None:
        self.records_swept += other.records_swept
        self.replicas_repaired += other.replicas_repaired
        self.records_with_lag += other.records_with_lag
        self.unreachable_replies += other.unreachable_replies
        self.unreachable_nodes |= other.unreachable_nodes
        self.visibilities_redriven += other.visibilities_redriven
        self.recoveries_triggered += other.recoveries_triggered


@dataclass
class _Probe:
    record: RecordId
    expected: int
    replicas: Tuple[str, ...] = ()
    replies: Dict[str, RepairReply] = field(default_factory=dict)
    done: bool = False


class AntiEntropyAgent(Node):
    """A background repair process for one data center.

    One agent can sweep any number of records; deploy one per data center
    for locality (probes still cross the WAN — every replica must be
    read).  Typical use::

        agent = cluster.add_anti_entropy_agent("us-west")
        report = cluster.sim.run_until(agent.sweep("items", keys))
        agent.start_periodic("items", keys, interval_ms=30_000)
    """

    def __init__(
        self,
        transport: Transport,
        node_id: str,
        dc: str,
        placement: ReplicaMap,
        config: MDCCConfig,
        counters: Optional[CounterSet] = None,
        probe_timeout_ms: float = 1_500.0,
    ) -> None:
        super().__init__(transport, node_id, dc)
        self.placement = placement
        self.config = config
        self.counters = counters if counters is not None else CounterSet()
        self.probe_timeout_ms = probe_timeout_ms
        self._request_seq = itertools.count(1)
        self._probes: Dict[int, _Probe] = {}
        self._probe_futures: Dict[int, Future] = {}
        self._periodic_timer = None
        self._periodic_args: Optional[Tuple[str, List[str], float]] = None
        #: optional §3.2.3 recovery agent for dangling pending options.
        self._recovery = None

    def attach_recovery(self, recovery_agent) -> None:
        """Escalate unprovable pending options to ``recovery_agent``.

        Without one, sweeps re-drive only visibilities whose commit is
        proven by another replica's applied set; options that are pending
        everywhere (a coordinator died before ANY replica executed) stay
        parked until some recovery agent reconstructs the transaction."""
        self._recovery = recovery_agent

    # ------------------------------------------------------------------
    # One-shot sweep
    # ------------------------------------------------------------------
    def sweep(self, table: str, keys: Sequence[str]) -> Future:
        """Probe and repair every (table, key); resolves with a
        :class:`SweepReport`."""
        report = SweepReport()
        aggregate = self.future()
        pending = [len(keys)]
        if not keys:
            aggregate.resolve(report)
            return aggregate

        def on_record_done(fut: Future) -> None:
            report.merge(fut.result())
            pending[0] -= 1
            if pending[0] == 0:
                self.counters.increment("antientropy.sweeps")
                aggregate.resolve(report)

        for key in keys:
            self._sweep_record(RecordId(table, key)).add_done_callback(
                on_record_done
            )
        return aggregate

    def _sweep_record(self, record: RecordId) -> Future:
        request_id = next(self._request_seq)
        # Repair scope: joining (not-yet-admitted) replicas are swept too —
        # this is how a bootstrapping DC catches up through writes that
        # landed after its snapshot cut, before it enters any quorum.
        replicas = self.placement.replicas_for_repair(record)
        probe = _Probe(
            record=record, expected=len(replicas), replicas=tuple(replicas)
        )
        future = self.future()
        self._probes[request_id] = probe
        self._probe_futures[request_id] = future
        for replica in replicas:
            self.send(replica, RepairProbe(record=record, request_id=request_id))
        self.set_timer(self.probe_timeout_ms, self._finish_probe, request_id)
        return future

    def handle_repair_reply(self, message: RepairReply, src_id: str) -> None:
        probe = self._probes.get(message.request_id)
        if probe is None or probe.done:
            return
        probe.replies[src_id] = message
        if len(probe.replies) >= probe.expected:
            self._finish_probe(message.request_id)

    def _finish_probe(self, request_id: int) -> None:
        probe = self._probes.pop(request_id, None)
        future = self._probe_futures.pop(request_id, None)
        if probe is None or probe.done or future is None:
            return
        probe.done = True
        report = SweepReport(records_swept=1)
        report.unreachable_replies = probe.expected - len(probe.replies)
        report.unreachable_nodes = set(probe.replicas) - set(probe.replies)
        if probe.replies:
            freshest = max(probe.replies.values(), key=lambda r: r.version)
            behind = [
                node_id
                for node_id, reply in probe.replies.items()
                if reply.version < freshest.version
            ]
            if behind:
                report.records_with_lag = 1
                report.replicas_repaired = len(behind)
                repair = CatchUp(
                    record=probe.record,
                    version=freshest.version,
                    value=freshest.value,
                    exists=freshest.exists,
                    applied_ids=freshest.applied_ids,
                )
                for node_id in behind:
                    self.send(node_id, repair)
                self.counters.increment(
                    "antientropy.repairs", amount=len(behind)
                )
            self._repair_pending(probe, report)
        future.resolve(report)

    def _repair_pending(self, probe: _Probe, report: SweepReport) -> None:
        """Finish visibilities a partition ate (§3.2.3's promise).

        A replica that accepted an option but never saw its visibility
        keeps it pending forever — blocking validSingle and, for deltas,
        silently diverging from peers *at the same version* (which the
        version-based catch-up above can never fix).  Three cases:

        * pending here, executed at any peer → the commit decision is
          proven; re-drive ``Visibility(committed=True)`` to the stuck
          replica directly.
        * pending here, executed nowhere → the outcome is unknown; hand
          the txid to the attached recovery agent, which reconstructs the
          transaction from a quorum and drives it to a definitive outcome.
        * executed at a peer but *wholly unknown* here (a lossy network
          ate the propose itself, not just the visibility) → there is no
          local option to re-drive, so escalate to the recovery agent the
          same way: its closing ``Visibility`` broadcast carries the full
          option payload, which the unaware replica executes on arrival
          (and peers that already applied it deduplicate).  Without this
          case a replica can sit at the *same version* as its peers with a
          different delta set, invisible to every other repair path.
        """
        applied_anywhere: set = set()
        for reply in probe.replies.values():
            applied_anywhere.update(reply.applied_ids)
        escalated: set = set()
        for node_id, reply in probe.replies.items():
            for option in reply.pending:
                if option.option_id in applied_anywhere:
                    self.send(node_id, Visibility(option=option, committed=True))
                    report.visibilities_redriven += 1
                    self.counters.increment("antientropy.visibility_redriven")
                elif self._recovery is not None and option.txid not in escalated:
                    # recover() dedups an in-flight recovery and restarts
                    # one that gave up, so re-escalating each sweep is safe
                    # — and necessary: permanent suppression would strand
                    # the record if an earlier attempt ran out of retries.
                    escalated.add(option.txid)
                    self._recovery.recover(option.txid, probe.record)
                    report.recoveries_triggered += 1
                    self.counters.increment("antientropy.recoveries_triggered")
        if self._recovery is None:
            return
        # Case three: ids applied at some peer that this replica has
        # neither applied nor parked pending.  Only the txid is derivable
        # (option ids are "txid:record" and peers do not ship payloads of
        # already-applied options), hence the recovery detour.
        suffix = f":{probe.record}"
        for node_id, reply in probe.replies.items():
            known = set(reply.applied_ids)
            known.update(option.option_id for option in reply.pending)
            for option_id in sorted(applied_anywhere - known):
                if not option_id.endswith(suffix):
                    continue
                txid = option_id[: -len(suffix)]
                if txid in escalated:
                    continue
                escalated.add(txid)
                self._recovery.recover(txid, probe.record)
                report.recoveries_triggered += 1
                self.counters.increment("antientropy.recoveries_triggered")

    # ------------------------------------------------------------------
    # Periodic operation
    # ------------------------------------------------------------------
    def start_periodic(
        self, table: str, keys: Sequence[str], interval_ms: float
    ) -> None:
        """Sweep (table, keys) every ``interval_ms`` until :meth:`stop`."""
        if interval_ms <= 0:
            raise ValueError("interval_ms must be positive")
        self.stop()
        self._periodic_args = (table, list(keys), interval_ms)
        self._periodic_timer = self.set_timer(interval_ms, self._periodic_tick)

    def stop(self) -> None:
        if self._periodic_timer is not None:
            self._periodic_timer.cancel()
            self._periodic_timer = None
        self._periodic_args = None

    def _periodic_tick(self) -> None:
        if self._periodic_args is None:
            return
        table, keys, interval_ms = self._periodic_args
        self.sweep(table, keys)
        self._periodic_timer = self.set_timer(interval_ms, self._periodic_tick)
