"""Per-record acceptor state: ballots, cstruct, pending options, bases.

This is the state behind Algorithm 3.  One :class:`RecordState` instance
lives on each storage node for each record it replicates, and implements:

* the mode decision — is the record's current instance fast or classic
  (driven by granted :class:`~repro.paxos.ballot.BallotRange` metadata)?
* ``SetCompatible`` (lines 83-99) — the active accept/reject decision for
  physical updates (validRead ∧ validSingle) and commutative updates
  (escrow + quorum demarcation, §3.4.2);
* ``ApplyVisibility`` (lines 100-103) — executing accepted options, which
  advances the committed version chain;
* replica catch-up — applying visibilities that arrive out of order or for
  proposals this replica never saw.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.demarcation import demarcation_limits, escrow_accepts
from repro.core.options import (
    CommutativeUpdate,
    Option,
    OptionStatus,
    PhysicalUpdate,
    ReadValidation,
)
from repro.paxos.ballot import Ballot, BallotRange, INITIAL_FAST_BALLOT
from repro.paxos.cstruct import CStruct
from repro.paxos.multi import MastershipState
from repro.paxos.quorum import QuorumSpec
from repro.storage.record import Record
from repro.storage.schema import TableSchema

__all__ = ["RecordState"]

#: Shared empty cstruct — immutable, so every record that drains its last
#: pending option can point at the same instance.
_EMPTY_CSTRUCT = CStruct()


class RecordState:
    """Everything one storage node knows about one record's protocol state."""

    def __init__(
        self,
        record: Record,
        schema: TableSchema,
        spec: QuorumSpec,
        demarcation: bool = True,
    ) -> None:
        self.record = record
        self.schema = schema
        self.spec = spec
        self.demarcation = demarcation
        self.mastership = MastershipState()
        #: ballot of the most recently accepted cstruct (bal_a).
        self.accepted_ballot: Optional[Ballot] = None
        #: the current instance's accepted option structure (val_a).
        self.cstruct = CStruct()
        #: option ids whose commit-visibility has been applied (exactly-once).
        self.executed: set = set()
        #: option ids whose abort-visibility arrived — *final* rejections.
        #: (Tentative local ✗ decisions live only in the cstruct statuses;
        #: a master's classic round may overrule those, but never these.)
        self.rejected: set = set()
        #: demarcation base value X per attribute (§3.4.2), set lazily at
        #: first commutative accept and refreshed by master classic rounds.
        self.base_values: Dict[str, float] = {}
        #: physical visibilities waiting for an earlier version (vread -> option)
        self._deferred_physical: Dict[int, Option] = {}
        #: commutative visibilities waiting for the record to exist
        self._deferred_deltas: List[Option] = []
        #: memoized demarcation windows keyed by everything they derive
        #: from — cleared whenever the bases reset (refresh/era close).
        self._limits_cache: Dict[tuple, "DemarcationLimits"] = {}
        #: ``hook(reason, attribute)`` invoked at the demarcation decision
        #: site when an escrow window rejects a delta.  Set by the storage
        #: node only while tracing is on; ``None`` costs one attribute
        #: check on the (already exceptional) reject path.
        self.trace_hook = None

    # ------------------------------------------------------------------
    # Mode / ballot queries
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Committed version = the record's current Paxos instance number."""
        return self.record.current_version

    def effective_range(self) -> BallotRange:
        return self.mastership.effective_range(self.record.current_version)

    def effective_ballot(self) -> Ballot:
        if not self.mastership.ranges:
            # No grants ever made: the implicit default fast ballot.
            return INITIAL_FAST_BALLOT
        return self.mastership.effective_range(self.record.current_version).ballot

    @property
    def is_fast(self) -> bool:
        return self.effective_ballot().fast

    # ------------------------------------------------------------------
    # Pending bookkeeping
    # ------------------------------------------------------------------
    def pending_options(self) -> List[Option]:
        """Accepted options whose visibility has not yet arrived."""
        executed = self.executed
        rejected = self.rejected
        accepted = OptionStatus.ACCEPTED
        return [
            option
            for option in self.cstruct.commands
            if option.status is accepted
            and option.option_id not in executed
            and option.option_id not in rejected
        ]

    def has_pending(self) -> bool:
        return bool(self.pending_options())

    def has_pending_physical(self) -> bool:
        """Any pending option a commutative delta cannot slide past: a
        physical write (changes the whole record) or a read validation
        (a delta's execution would invalidate the validated read)."""
        return any(not option.is_commutative for option in self.pending_options())

    def pending_deltas(self, attribute: str) -> List[float]:
        out = []
        for option in self.pending_options():
            if option.is_commutative:
                delta = option.update.delta_for(attribute)
                if delta != 0.0:
                    out.append(delta)
        return out

    # ------------------------------------------------------------------
    # SetCompatible (Algorithm 3, lines 83-99)
    # ------------------------------------------------------------------
    def decide(self, option: Option, classic_mode: bool = False) -> OptionStatus:
        """The active accept/reject decision for a newly proposed option.

        ``classic_mode`` relaxes the demarcation slack to plain escrow: in
        a classic ballot the chosen cstruct requires identical votes from a
        classic quorum, so local-order divergence — the reason demarcation
        exists — cannot occur.
        """
        if option.option_id in self.executed:
            return OptionStatus.ACCEPTED  # idempotent re-delivery
        if option.option_id in self.rejected:
            return OptionStatus.REJECTED
        if isinstance(option.update, CommutativeUpdate):
            return self._decide_commutative(option.update, classic_mode)
        if isinstance(option.update, ReadValidation):
            return self._decide_validation(option.update)
        return self._decide_physical(option.update)

    def _decide_physical(self, update: PhysicalUpdate) -> OptionStatus:
        valid_read = update.vread == self.record.current_version
        valid_single = not self.has_pending()
        valid_value = update.is_delete or self.schema.check_value(update.new_value)
        if valid_read and valid_single and valid_value:
            return OptionStatus.ACCEPTED
        return OptionStatus.REJECTED

    def _decide_validation(self, update: ReadValidation) -> OptionStatus:
        """OCC read-set check (§4.4): the read is still current and no
        state-changing option could invalidate it before visibility.
        Pending validations do not conflict — reads never block reads."""
        valid_read = update.vread == self.record.current_version
        valid_single = all(o.is_validation for o in self.pending_options())
        if valid_read and valid_single:
            return OptionStatus.ACCEPTED
        return OptionStatus.REJECTED

    def _decide_commutative(
        self, update: CommutativeUpdate, classic_mode: bool
    ) -> OptionStatus:
        if not self.record.exists:
            return OptionStatus.REJECTED
        # One pass over the cstruct serves both the physical-conflict check
        # and the per-attribute escrow tallies below.
        pending = self.pending_options()
        for pending_option in pending:
            if not pending_option.is_commutative:
                # Deltas do not commute with an in-flight physical write.
                return OptionStatus.REJECTED
        record = self.record
        # In classic mode the full escrow window is available (fast quorum
        # slack collapses to zero: N - N = 0).  Disabling demarcation
        # (ablation) also collapses the slack — leaving the unsafe plain
        # escrow the paper's Figure 2 warns about.
        use_plain_escrow = classic_mode or not self.demarcation
        spec = self.spec
        spec_n = spec.n
        effective_fast_quorum = spec_n if use_plain_escrow else spec.fast_size
        for attribute, delta in update.deltas:
            constraint = self.schema.constraint(attribute)
            if constraint is None:
                continue
            current = record.peek(attribute, 0)
            if not isinstance(current, (int, float)):
                return OptionStatus.REJECTED
            base = self.base_values.setdefault(attribute, float(current))
            limits_key = (attribute, base, spec_n, effective_fast_quorum)
            limits = self._limits_cache.get(limits_key)
            if limits is None:
                limits = demarcation_limits(
                    spec_n, effective_fast_quorum, base, constraint
                )
                self._limits_cache[limits_key] = limits
            # Every pending option is commutative here (physical conflicts
            # were rejected above), so read their deltas directly.
            pending_deltas = []
            for pending_option in pending:
                d = pending_option.update.delta_for(attribute)
                if d != 0.0:
                    pending_deltas.append(d)
            if not escrow_accepts(
                float(current), pending_deltas, delta, limits
            ):
                if self.trace_hook is not None:
                    self.trace_hook("demarcation-limit", attribute)
                return OptionStatus.REJECTED
        return OptionStatus.ACCEPTED

    # ------------------------------------------------------------------
    # Acceptance paths
    # ------------------------------------------------------------------
    def accept_fast(self, option: Option) -> Option:
        """Phase2bFast (lines 78-82): decide, append, return ω(up, status)."""
        cstruct = self.cstruct
        if option.option_id in cstruct.ids:
            return cstruct.command(option.option_id)  # duplicate propose
        decided = option.with_status(self.decide(option))
        self.cstruct = cstruct.append(decided)
        effective = self.effective_ballot()
        accepted = self.accepted_ballot
        # Identity check first: the default fast ballot is a singleton, so
        # the common steady state never reaches the tuple comparison.
        if accepted is None or (effective is not accepted and effective > accepted):
            self.accepted_ballot = effective
        return decided

    def adopt(self, proposed: CStruct, ballot: Ballot, classic_mode: bool = True) -> CStruct:
        """Phase2bClassic (lines 72-77): vala ← v, then SetCompatible.

        Options arriving with a decided status keep it (the master's
        arbitration is authoritative); PENDING options are decided locally;
        options this replica already executed stay executed.

        Decisions are made *incrementally*: each PENDING option is
        validated against the partially adopted cstruct, so two conflicting
        options in the same proposal cannot both pass validSingle.
        """
        # Grown via append() (which goes through CStruct._make): the
        # proposed cstruct is already duplicate-free, so re-validating the
        # partial prefix on every iteration is pure overhead.
        cstruct = _EMPTY_CSTRUCT
        executed = self.executed
        rejected = self.rejected
        for option in proposed:
            # Make earlier options of this proposal visible to decide().
            self.cstruct = cstruct
            oid = option.option_id
            if oid in executed:
                decided = option.with_status(OptionStatus.ACCEPTED)
            elif oid in rejected:
                # Abort-visibility already applied: final, never resurrected.
                decided = option.with_status(OptionStatus.REJECTED)
            elif option.status is OptionStatus.PENDING:
                decided = option.with_status(self.decide(option, classic_mode))
            else:
                decided = option
            cstruct = cstruct.append(decided)
        self.cstruct = cstruct
        self.accepted_ballot = ballot
        return self.cstruct

    # ------------------------------------------------------------------
    # ApplyVisibility (lines 100-103)
    # ------------------------------------------------------------------
    def apply_visibility(self, option: Option, committed: bool) -> bool:
        """Execute or discard an option; returns True if state changed."""
        if option.option_id in self.executed:
            return False
        if not committed:
            return self._mark_rejected(option)
        if isinstance(option.update, CommutativeUpdate):
            return self._execute_commutative(option)
        if isinstance(option.update, ReadValidation):
            return self._execute_validation(option)
        return self._execute_physical(option)

    def _execute_validation(self, option: Option) -> bool:
        """A committed read validation executes as a no-op: it asserted
        state, it does not change it.  The committed version chain does not
        advance — concurrent validated readers all commit against the same
        version."""
        self.executed.add(option.option_id)
        self.rejected.discard(option.option_id)
        self._drop_from_cstruct(option.option_id)
        return True

    def _mark_rejected(self, option: Option) -> bool:
        self.rejected.add(option.option_id)
        if self.cstruct.contains_id(option.option_id):
            self.cstruct = self.cstruct.replace(
                option.with_status(OptionStatus.REJECTED)
            )
        return True

    def _execute_commutative(self, option: Option) -> bool:
        if option.option_id in self.record.applied_ids:
            # Already folded into this replica's value via catch-up; the
            # late visibility must not re-apply the delta.
            self.executed.add(option.option_id)
            self.rejected.discard(option.option_id)
            self._drop_from_cstruct(option.option_id)
            return False
        if not self.record.exists:
            # Replica missed the insert; defer until the record appears.
            self._deferred_deltas.append(option)
            return False
        update: CommutativeUpdate = option.update
        first = True
        for attribute, delta in update.deltas:
            self.record.commit_delta(
                attribute, delta, option_id=option.option_id if first else None
            )
            first = False
        self.executed.add(option.option_id)
        self.rejected.discard(option.option_id)
        self._drop_from_cstruct(option.option_id)
        return True

    def _execute_physical(self, option: Option) -> bool:
        update: PhysicalUpdate = option.update
        current = self.record.current_version
        if current > update.vread:
            # Already superseded here (applied earlier or caught up).
            self.executed.add(option.option_id)
            self._drop_from_cstruct(option.option_id)
            return False
        if current < update.vread:
            # Missed an earlier commit; hold until the gap fills.
            self._deferred_physical[update.vread] = option
            return False
        if update.is_delete:
            self.record.commit_delete(option_id=option.option_id)
        else:
            self.record.commit_value(update.new_value, option_id=option.option_id)
        self.executed.add(option.option_id)
        self._close_era()
        self._drain_deferred()
        return True

    def catch_up(
        self,
        version: int,
        value: Optional[Dict[str, object]],
        applied_ids: tuple = (),
    ) -> bool:
        """Adopt authoritative committed state from the master.

        ``applied_ids`` — the option ids folded into the adopted value —
        become executed here, so their late visibilities are no-ops."""
        changed = self.record.catch_up(version, value, applied_ids=applied_ids)
        if changed:
            for option_id in applied_ids:
                self.executed.add(option_id)
                self.rejected.discard(option_id)
                self._drop_from_cstruct(option_id)
            self._close_era()
            self._drain_deferred()
        return changed

    def refresh_base(self, new_base: Optional[Dict[str, float]] = None) -> None:
        """Set demarcation bases (master classic round writes a new base)."""
        self._limits_cache.clear()
        if new_base is None:
            self.base_values = {}
            return
        self.base_values = dict(new_base)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _close_era(self) -> None:
        """A physical commit closed the instance: drop decided options and
        reset demarcation bases to the new committed value (lazily)."""
        executed = self.executed
        survivors = [
            option
            for option in self.cstruct
            if option.status is OptionStatus.ACCEPTED
            and option.option_id not in executed
        ]
        if not survivors:
            self.cstruct = _EMPTY_CSTRUCT
        else:
            # Survivor ids are a subset of the (duplicate-free) cstruct.
            self.cstruct = CStruct._make(
                tuple(survivors),
                frozenset([o.option_id for o in survivors]),
            )
        self.base_values = {}
        self._limits_cache.clear()

    def _drop_from_cstruct(self, option_id: str) -> None:
        cstruct = self.cstruct
        ids = cstruct.ids
        if option_id not in ids:
            return
        commands = cstruct.commands
        if len(commands) == 1:
            # The common case — one in-flight option per record instance.
            self.cstruct = _EMPTY_CSTRUCT
            return
        self.cstruct = CStruct._make(
            tuple([o for o in commands if o.option_id != option_id]),
            ids - {option_id},
        )

    def _drain_deferred(self) -> None:
        # Physical options whose read version has now been reached.
        progressed = True
        while progressed:
            progressed = False
            pending = self._deferred_physical.pop(self.record.current_version, None)
            if pending is not None and pending.option_id not in self.executed:
                if self._execute_physical(pending):
                    progressed = True
        if self.record.exists and self._deferred_deltas:
            deferred, self._deferred_deltas = self._deferred_deltas, []
            for option in deferred:
                if option.option_id not in self.executed:
                    self._execute_commutative(option)
