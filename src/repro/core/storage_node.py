"""The MDCC storage node: acceptor role (Algorithm 3) + hosted masters.

A storage node replicates a set of records (one partition of every table in
its data center), stores their committed version chains, participates in
the per-record Paxos instances, and — when the placement policy says so —
acts as the master for records whose master data center it lives in.

Handlers map one-to-one onto Algorithm 3's ``ReceiveAcceptorMessage``:

* ``ProposeFast``   → Phase2bFast (lines 78-82): decide & append in the
  current fast ballot, reply to the proposing learner.  In a classic era
  the proposal is *forwarded* to the record's master instead — this is how
  coordinators with stale mode hints are transparently redirected.
* ``MPhase1a``      → Phase1b (lines 68-71).
* ``MPhase2a``      → Phase2bClassic (lines 72-77).
* ``Visibility``    → ApplyVisibility (lines 100-103).
* ``ReadRequest``   → committed-state read with mode/master hints.
* ``StatusRequest`` → dangling-transaction reconstruction (§3.2.3).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.config import MDCCConfig
from repro.core.master import MasterRole
from repro.core.messages import (
    CatchUp,
    FastReply,
    MPhase1a,
    MPhase1b,
    MPhase2a,
    MPhase2b,
    ProposeClassic,
    ProposeFast,
    ReadReply,
    ReadRequest,
    RepairProbe,
    RepairReply,
    SnapshotAck,
    SnapshotChunk,
    SnapshotRequest,
    StartRecovery,
    StatusReply,
    StatusRequest,
    Visibility,
    VisibilityBatch,
)
from repro.core.options import Option, OptionStatus, RecordId
from repro.core.state import RecordState
from repro.core.topology import ReplicaMap
from repro.metrics import CounterSet
from repro.trace import runtime as trace_runtime
from repro.transport.base import Node, Transport
from repro.storage.store import RecordStore
from repro.storage.wal import WriteAheadLog

__all__ = ["MDCCStorageNode"]


class MDCCStorageNode(Node):
    """One simulated storage server of the MDCC deployment."""

    def __init__(
        self,
        transport: Transport,
        node_id: str,
        dc: str,
        placement: ReplicaMap,
        config: MDCCConfig,
        counters: Optional[CounterSet] = None,
    ) -> None:
        super().__init__(transport, node_id, dc)
        self.placement = placement
        self.config = config
        #: fixed at construction — a membership directory is attached to
        #: the ReplicaMap before any node is built.
        self._elastic = placement.is_elastic
        #: static clusters never change quorum sizes, so resolve once.
        self._static_spec = None if self._elastic else config.quorums
        self._fast_ballots = config.fast_ballots_enabled
        self.counters = trace_runtime.scoped_counters(
            node_id, counters if counters is not None else CounterSet()
        )
        self.tracer = trace_runtime.current_tracer()
        self.store = RecordStore()
        self.wal = WriteAheadLog()
        self.master = MasterRole(self, config)
        self._states: Dict[RecordId, RecordState] = {}
        #: all options ever seen, for status queries and recovery.
        self._option_log: Dict[str, Option] = {}
        #: in-flight snapshot-bootstrap streams this (joining) node receives:
        #: request_id -> {"seqs", "total", "adopted", "wal_cut", "reply_to"}.
        self._bootstrap_streams: Dict[int, Dict[str, object]] = {}

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------
    @property
    def spec(self):
        """Quorum sizes under the current membership epoch.

        Static clusters read the frozen config (resolved once at
        construction); elastic clusters derive sizes from the membership
        directory so an admit/retire resizes every quorum check instantly.
        """
        if self._elastic:
            return self.placement.quorums()
        return self._static_spec

    def _epoch(self) -> int:
        if not self._elastic:
            return 0
        return self.placement.epoch

    def _fence_stale(self, message_epoch: int) -> bool:
        """True (and counted) when a message predates the current epoch."""
        if message_epoch < self._epoch():
            self.counters.increment("reconfig.stale_epoch_dropped")
            return True
        return False

    def record_state(self, record: RecordId) -> RecordState:
        state = self._states.get(record)
        if state is None:
            state = self._states[record] = RecordState(
                record=self.store.record(record.table, record.key),
                schema=self.store.schema(record.table),
                spec=self.spec,
                demarcation=self.config.demarcation_enabled,
            )
            if self.tracer.enabled:
                state.trace_hook = self._demarcation_hook(record)
        if self._elastic:
            # Quorum sizes feed the escrow/demarcation windows; keep the
            # cached state on the current epoch's sizes.  quorums() is
            # memoized, so this is an identity-equal no-op between bumps.
            spec = self.spec
            if state.spec is not spec:
                state.spec = spec
        return state

    def is_master_for(self, record: RecordId) -> bool:
        return self.placement.master_node(record) == self.node_id

    def _demarcation_hook(self, record: RecordId):
        """Attribution at the §3.4.2 decision site (traced runs only):
        an escrow window rejecting a delta becomes a zero-duration
        ``demarcation-check`` span under whatever step evaluated it."""

        def hook(reason: str, attribute: str) -> None:
            ctx = trace_runtime.current_context()
            if ctx is None:
                return  # context-less evaluation (e.g. untraced timer work)
            span = self.tracer.start_span(
                "demarcation-check",
                self.node_id,
                self.now,
                parent=ctx,
                record=f"{record.table}/{record.key}",
                attribute=attribute,
            )
            span.finish(self.now, reason)

        return hook

    # ------------------------------------------------------------------
    # Fast path
    # ------------------------------------------------------------------
    def handle_propose_fast(self, message: ProposeFast, src_id: str) -> None:
        if self._fence_stale(message.epoch):
            # Proposed under an old configuration: accepting it would cast
            # a vote that could complete a quorum of the wrong size.  The
            # coordinator's learn timeout re-drives under the new epoch.
            if self.tracer.enabled:
                ctx = trace_runtime.current_context()
                if ctx is not None:
                    span = self.tracer.start_span(
                        "fast-accept",
                        self.node_id,
                        self.now,
                        parent=ctx,
                        txid=message.option.txid,
                        epoch=message.epoch,
                    )
                    span.finish(self.now, "stale-epoch")
            return
        option = message.option
        state = self.record_state(option.record)
        if not state.is_fast or not self._fast_ballots:
            # Classic era: redirect to the master (dedup happens there).
            self.counters.increment("acceptor.forwarded_to_master")
            self.send(
                self.placement.master_node(option.record),
                ProposeClassic(option=option, reply_to=message.reply_to),
            )
            return
        if self.tracer.enabled:
            self._traced_fast_accept(message, state)
            return
        decided = state.accept_fast(option)
        self._option_log[option.option_id] = decided
        self.wal.append(
            "option-learned",
            option_id=decided.option_id,
            txid=decided.txid,
            status=decided.status.value,
            writeset=[r._str for r in decided.writeset],
        )
        self.counters.increment("acceptor.fast_proposals")
        self.send(
            message.reply_to,
            FastReply(
                option_id=decided.option_id,
                txid=decided.txid,
                record=decided.record,
                status=decided.status,
                committed_version=state.version,
                is_fast_era=True,
                master_hint=self.placement.master_node(option.record),
                epoch=self._epoch(),
            ),
        )

    def _traced_fast_accept(self, message: ProposeFast, state: RecordState) -> None:
        """The Phase2bFast body with a ``fast-accept`` span around it.

        Kept separate so the untraced handler stays the PR-5-optimized
        straight line; the decide runs inside the span's context so a
        demarcation rejection stitches underneath it.
        """
        option = message.option
        span = self.tracer.start_span(
            "fast-accept",
            self.node_id,
            self.now,
            parent=trace_runtime.current_context(),
            txid=option.txid,
            record=f"{option.record.table}/{option.record.key}",
            ballot=repr(state.effective_ballot()),
            epoch=message.epoch,
        )
        previous = trace_runtime.set_context(span.ctx)
        try:
            decided = state.accept_fast(option)
            self._option_log[option.option_id] = decided
            self.wal.append(
                "option-learned",
                option_id=decided.option_id,
                txid=decided.txid,
                status=decided.status.value,
                writeset=[r._str for r in decided.writeset],
            )
            self.counters.increment("acceptor.fast_proposals")
            self.send(
                message.reply_to,
                FastReply(
                    option_id=decided.option_id,
                    txid=decided.txid,
                    record=decided.record,
                    status=decided.status,
                    committed_version=state.version,
                    is_fast_era=True,
                    master_hint=self.placement.master_node(option.record),
                    epoch=self._epoch(),
                ),
            )
        finally:
            trace_runtime.reset_context(previous)
        span.finish(
            self.now,
            "accepted" if decided.status is OptionStatus.ACCEPTED else "rejected",
        )

    # ------------------------------------------------------------------
    # Classic path (acceptor side)
    # ------------------------------------------------------------------
    def handle_m_phase1a(self, message: MPhase1a, src_id: str) -> None:
        if self._fence_stale(message.epoch):
            # A promise is a vote: granting a stale-epoch Phase1a could
            # establish a master over the old replica set.  The master's
            # Phase-1 timeout restarts the round under the new epoch.
            return
        state = self.record_state(message.record)
        granted = state.mastership.grant(message.grant)
        snapshot = state.record.snapshot()
        self.send(
            src_id,
            MPhase1b(
                record=message.record,
                ballot=message.ballot,
                granted=granted,
                promised=state.effective_ballot(),
                accepted_ballot=state.accepted_ballot,
                cstruct=state.cstruct if len(state.cstruct) else None,
                committed_version=snapshot.version,
                committed_value=snapshot.value,
                applied_ids=tuple(sorted(state.record.applied_ids)),
                epoch=self._epoch(),
            ),
        )
        self.counters.increment("acceptor.phase1b")

    def handle_m_phase2a(self, message: MPhase2a, src_id: str) -> None:
        if self._fence_stale(message.epoch):
            return
        state = self.record_state(message.record)
        effective = state.effective_ballot()
        if message.ballot < effective:
            self.send(
                src_id,
                MPhase2b(
                    record=message.record,
                    ballot=message.ballot,
                    accepted=False,
                    cstruct=None,
                    committed_version=state.version,
                    promised=effective,
                    epoch=self._epoch(),
                ),
            )
            return
        adopted = state.adopt(message.cstruct, message.ballot)
        for option in adopted:
            self._option_log.setdefault(option.option_id, option)
        if message.new_base is not None:
            state.refresh_base(message.new_base)
        if message.post_grant is not None:
            state.mastership.grant(message.post_grant)
        self.wal.append(
            "classic-adopt",
            record=str(message.record),
            ballot=repr(message.ballot),
            options=[o.option_id for o in adopted],
        )
        self.counters.increment("acceptor.phase2b_classic")
        self.send(
            src_id,
            MPhase2b(
                record=message.record,
                ballot=message.ballot,
                accepted=True,
                cstruct=adopted,
                committed_version=state.version,
                epoch=self._epoch(),
            ),
        )

    # ------------------------------------------------------------------
    # Visibility / catch-up
    # ------------------------------------------------------------------
    def handle_visibility(self, message: Visibility, src_id: str) -> None:
        option = message.option
        committed = message.committed
        state = self.record_state(option.record)
        self._option_log.setdefault(option.option_id, option)
        changed = state.apply_visibility(option, committed)
        self.wal.append(
            "visibility",
            option_id=option.option_id,
            committed=committed,
            applied=changed,
        )
        self.counters.increment(
            "acceptor.visibility_commit" if committed else "acceptor.visibility_abort"
        )

    def handle_visibility_batch(self, message: VisibilityBatch, src_id: str) -> None:
        """Unpack a §7 visibility batch: identical to delivering each
        visibility individually, in order."""
        for visibility in message.visibilities:
            self.handle_visibility(visibility, src_id)

    def handle_catch_up(self, message: CatchUp, src_id: str) -> None:
        state = self.record_state(message.record)
        value = message.value if message.exists else None
        if state.catch_up(message.version, value, applied_ids=message.applied_ids):
            self.counters.increment("acceptor.caught_up")

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def handle_read_request(self, message: ReadRequest, src_id: str) -> None:
        record = RecordId(message.table, message.key)
        state = self.record_state(record)
        snapshot = state.record.snapshot()
        self.counters.increment("acceptor.reads")
        self.send(
            src_id,
            ReadReply(
                request_id=message.request_id,
                table=message.table,
                key=message.key,
                exists=snapshot.exists,
                value=snapshot.value,
                version=snapshot.version,
                is_fast_era=state.is_fast,
                master_hint=self.placement.master_node(record),
            ),
        )

    def handle_repair_probe(self, message: RepairProbe, src_id: str) -> None:
        """Anti-entropy probe: committed state plus the applied-id set."""
        state = self.record_state(message.record)
        snapshot = state.record.snapshot()
        self.counters.increment("acceptor.repair_probes")
        self.send(
            src_id,
            RepairReply(
                request_id=message.request_id,
                record=message.record,
                exists=snapshot.exists,
                value=snapshot.value,
                version=snapshot.version,
                applied_ids=tuple(sorted(state.record.applied_ids)),
                pending=tuple(state.pending_options()),
            ),
        )

    # ------------------------------------------------------------------
    # Dangling-transaction status (§3.2.3)
    # ------------------------------------------------------------------
    def handle_status_request(self, message: StatusRequest, src_id: str) -> None:
        state = self.record_state(message.record)
        option_id = f"{message.txid}:{message.record}"
        option = self._option_log.get(option_id)
        status: Optional[OptionStatus] = None
        executed = option_id in state.executed
        if option is not None:
            if executed:
                status = OptionStatus.ACCEPTED
            elif option_id in state.rejected:
                status = OptionStatus.REJECTED
            else:
                in_cstruct = state.cstruct.command(option_id)
                status = in_cstruct.status if in_cstruct is not None else option.status
        self.send(
            src_id,
            StatusReply(
                request_id=message.request_id,
                txid=message.txid,
                record=message.record,
                known=option is not None,
                status=status,
                executed=executed,
                option=option,
                writeset=option.writeset if option is not None else (),
            ),
        )

    # ------------------------------------------------------------------
    # Snapshot bootstrap (elastic membership)
    # ------------------------------------------------------------------
    def handle_snapshot_request(self, message: SnapshotRequest, src_id: str) -> None:
        """Donor side: stream the whole store to a joining replica.

        The stream is cut at a WAL checkpoint — everything at or below
        the cut is inside the snapshot; writes after it reach the joiner
        through anti-entropy before admission.  Chunking keeps each
        message small so the transfer is individually subject to the
        fault model (a partition mid-stream loses chunks and the manager
        rotates donors).
        """
        from repro.reconfig.bootstrap import SNAPSHOT_CHUNK_RECORDS

        cut = self.wal.checkpoint()
        records = [
            (
                table,
                key,
                snapshot.version,
                snapshot.value if snapshot.exists else None,
                applied_ids,
            )
            for table, key, snapshot, applied_ids in self.store.snapshot()
        ]
        chunks = [
            records[i : i + SNAPSHOT_CHUNK_RECORDS]
            for i in range(0, len(records), SNAPSHOT_CHUNK_RECORDS)
        ] or [[]]
        for seq, chunk in enumerate(chunks):
            last = seq == len(chunks) - 1
            self.send(
                message.target,
                SnapshotChunk(
                    request_id=message.request_id,
                    seq=seq,
                    records=tuple(chunk),
                    last=last,
                    wal_cut=cut if last else 0,
                    reply_to=message.reply_to,
                ),
            )
        self.counters.increment("bootstrap.streams_served")
        self.counters.increment("bootstrap.records_streamed", amount=len(records))

    def handle_snapshot_chunk(self, message: SnapshotChunk, src_id: str) -> None:
        """Joiner side: adopt a donor's records via the catch-up rule.

        Adoption is version-guarded and idempotent, so duplicate or
        re-streamed chunks (donor rotation after a timeout) are harmless.
        The ack to the reconfig manager is held until every chunk of the
        stream arrived — chunks can be reordered in flight.
        """
        stream = self._bootstrap_streams.setdefault(
            message.request_id,
            {"seqs": set(), "total": None, "adopted": 0, "wal_cut": 0},
        )
        seqs: set = stream["seqs"]  # type: ignore[assignment]
        if message.seq in seqs:
            return
        seqs.add(message.seq)
        adopted = 0
        for table, key, version, value, applied_ids in message.records:
            state = self.record_state(RecordId(table, key))
            if state.catch_up(version, value, applied_ids=tuple(applied_ids)):
                adopted += 1
        stream["adopted"] = int(stream["adopted"]) + adopted
        if message.last:
            stream["total"] = message.seq + 1
            stream["wal_cut"] = message.wal_cut
        if stream["total"] is not None and len(seqs) == stream["total"]:
            self._bootstrap_streams.pop(message.request_id, None)
            self.wal.append(
                "snapshot-bootstrap",
                source=src_id,
                request_id=message.request_id,
                records=int(stream["adopted"]),
                wal_cut=int(stream["wal_cut"]),
            )
            self.counters.increment("bootstrap.streams_adopted")
            self.send(
                message.reply_to,
                SnapshotAck(
                    request_id=message.request_id,
                    node_id=self.node_id,
                    records_adopted=int(stream["adopted"]),
                    wal_cut=int(stream["wal_cut"]),
                ),
            )

    # ------------------------------------------------------------------
    # Master-role delegation
    # ------------------------------------------------------------------
    def handle_propose_classic(self, message: ProposeClassic, src_id: str) -> None:
        self.master.on_propose(message, src_id)

    def handle_start_recovery(self, message: StartRecovery, src_id: str) -> None:
        self.master.on_start_recovery(message, src_id)

    def handle_m_phase1b(self, message: MPhase1b, src_id: str) -> None:
        self.master.on_phase1b(message, src_id)

    def handle_m_phase2b(self, message: MPhase2b, src_id: str) -> None:
        self.master.on_phase2b(message, src_id)
