"""The MDCC storage node: acceptor role (Algorithm 3) + hosted masters.

A storage node replicates a set of records (one partition of every table in
its data center), stores their committed version chains, participates in
the per-record Paxos instances, and — when the placement policy says so —
acts as the master for records whose master data center it lives in.

Handlers map one-to-one onto Algorithm 3's ``ReceiveAcceptorMessage``:

* ``ProposeFast``   → Phase2bFast (lines 78-82): decide & append in the
  current fast ballot, reply to the proposing learner.  In a classic era
  the proposal is *forwarded* to the record's master instead — this is how
  coordinators with stale mode hints are transparently redirected.
* ``MPhase1a``      → Phase1b (lines 68-71).
* ``MPhase2a``      → Phase2bClassic (lines 72-77).
* ``Visibility``    → ApplyVisibility (lines 100-103).
* ``ReadRequest``   → committed-state read with mode/master hints.
* ``StatusRequest`` → dangling-transaction reconstruction (§3.2.3).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.config import MDCCConfig
from repro.core.master import MasterRole
from repro.core.messages import (
    CatchUp,
    FastReply,
    MPhase1a,
    MPhase1b,
    MPhase2a,
    MPhase2b,
    ProposeClassic,
    ProposeFast,
    ReadReply,
    ReadRequest,
    RepairProbe,
    RepairReply,
    StartRecovery,
    StatusReply,
    StatusRequest,
    Visibility,
    VisibilityBatch,
)
from repro.core.options import Option, OptionStatus, RecordId
from repro.core.state import RecordState
from repro.core.topology import ReplicaMap
from repro.sim.core import Simulator
from repro.sim.monitor import CounterSet
from repro.sim.network import Network
from repro.sim.node import Node
from repro.storage.store import RecordStore
from repro.storage.wal import WriteAheadLog

__all__ = ["MDCCStorageNode"]


class MDCCStorageNode(Node):
    """One simulated storage server of the MDCC deployment."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: str,
        dc: str,
        placement: ReplicaMap,
        config: MDCCConfig,
        counters: Optional[CounterSet] = None,
    ) -> None:
        super().__init__(sim, network, node_id, dc)
        self.placement = placement
        self.config = config
        self.spec = config.quorums
        self.counters = counters if counters is not None else CounterSet()
        self.store = RecordStore()
        self.wal = WriteAheadLog()
        self.master = MasterRole(self, config)
        self._states: Dict[RecordId, RecordState] = {}
        #: all options ever seen, for status queries and recovery.
        self._option_log: Dict[str, Option] = {}

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------
    def record_state(self, record: RecordId) -> RecordState:
        if record not in self._states:
            self._states[record] = RecordState(
                record=self.store.record(record.table, record.key),
                schema=self.store.schema(record.table),
                spec=self.spec,
                demarcation=self.config.demarcation_enabled,
            )
        return self._states[record]

    def is_master_for(self, record: RecordId) -> bool:
        return self.placement.master_node(record) == self.node_id

    # ------------------------------------------------------------------
    # Fast path
    # ------------------------------------------------------------------
    def handle_propose_fast(self, message: ProposeFast, src_id: str) -> None:
        option = message.option
        state = self.record_state(option.record)
        if not state.is_fast or not self.config.fast_ballots_enabled:
            # Classic era: redirect to the master (dedup happens there).
            self.counters.increment("acceptor.forwarded_to_master")
            self.send(
                self.placement.master_node(option.record),
                ProposeClassic(option=option, reply_to=message.reply_to),
            )
            return
        decided = state.accept_fast(option)
        self._option_log[option.option_id] = decided
        self.wal.append(
            "option-learned",
            option_id=decided.option_id,
            txid=decided.txid,
            status=decided.status.value,
            writeset=[str(r) for r in decided.writeset],
        )
        self.counters.increment("acceptor.fast_proposals")
        self.send(
            message.reply_to,
            FastReply(
                option_id=decided.option_id,
                txid=decided.txid,
                record=decided.record,
                status=decided.status,
                committed_version=state.version,
                is_fast_era=True,
                master_hint=self.placement.master_node(option.record),
            ),
        )

    # ------------------------------------------------------------------
    # Classic path (acceptor side)
    # ------------------------------------------------------------------
    def handle_m_phase1a(self, message: MPhase1a, src_id: str) -> None:
        state = self.record_state(message.record)
        granted = state.mastership.grant(message.grant)
        snapshot = state.record.snapshot()
        self.send(
            src_id,
            MPhase1b(
                record=message.record,
                ballot=message.ballot,
                granted=granted,
                promised=state.effective_ballot(),
                accepted_ballot=state.accepted_ballot,
                cstruct=state.cstruct if len(state.cstruct) else None,
                committed_version=snapshot.version,
                committed_value=snapshot.value,
                applied_ids=tuple(state.record.applied_ids),
            ),
        )
        self.counters.increment("acceptor.phase1b")

    def handle_m_phase2a(self, message: MPhase2a, src_id: str) -> None:
        state = self.record_state(message.record)
        effective = state.effective_ballot()
        if message.ballot < effective:
            self.send(
                src_id,
                MPhase2b(
                    record=message.record,
                    ballot=message.ballot,
                    accepted=False,
                    cstruct=None,
                    committed_version=state.version,
                    promised=effective,
                ),
            )
            return
        adopted = state.adopt(message.cstruct, message.ballot)
        for option in adopted:
            self._option_log.setdefault(option.option_id, option)
        if message.new_base is not None:
            state.refresh_base(message.new_base)
        if message.post_grant is not None:
            state.mastership.grant(message.post_grant)
        self.wal.append(
            "classic-adopt",
            record=str(message.record),
            ballot=repr(message.ballot),
            options=[o.option_id for o in adopted],
        )
        self.counters.increment("acceptor.phase2b_classic")
        self.send(
            src_id,
            MPhase2b(
                record=message.record,
                ballot=message.ballot,
                accepted=True,
                cstruct=adopted,
                committed_version=state.version,
            ),
        )

    # ------------------------------------------------------------------
    # Visibility / catch-up
    # ------------------------------------------------------------------
    def handle_visibility(self, message: Visibility, src_id: str) -> None:
        state = self.record_state(message.option.record)
        self._option_log.setdefault(message.option.option_id, message.option)
        changed = state.apply_visibility(message.option, message.committed)
        self.wal.append(
            "visibility",
            option_id=message.option.option_id,
            committed=message.committed,
            applied=changed,
        )
        self.counters.increment(
            "acceptor.visibility_commit" if message.committed else "acceptor.visibility_abort"
        )

    def handle_visibility_batch(self, message: VisibilityBatch, src_id: str) -> None:
        """Unpack a §7 visibility batch: identical to delivering each
        visibility individually, in order."""
        for visibility in message.visibilities:
            self.handle_visibility(visibility, src_id)

    def handle_catch_up(self, message: CatchUp, src_id: str) -> None:
        state = self.record_state(message.record)
        value = message.value if message.exists else None
        if state.catch_up(message.version, value, applied_ids=message.applied_ids):
            self.counters.increment("acceptor.caught_up")

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def handle_read_request(self, message: ReadRequest, src_id: str) -> None:
        record = RecordId(message.table, message.key)
        state = self.record_state(record)
        snapshot = state.record.snapshot()
        self.counters.increment("acceptor.reads")
        self.send(
            src_id,
            ReadReply(
                request_id=message.request_id,
                table=message.table,
                key=message.key,
                exists=snapshot.exists,
                value=snapshot.value,
                version=snapshot.version,
                is_fast_era=state.is_fast,
                master_hint=self.placement.master_node(record),
            ),
        )

    def handle_repair_probe(self, message: RepairProbe, src_id: str) -> None:
        """Anti-entropy probe: committed state plus the applied-id set."""
        state = self.record_state(message.record)
        snapshot = state.record.snapshot()
        self.counters.increment("acceptor.repair_probes")
        self.send(
            src_id,
            RepairReply(
                request_id=message.request_id,
                record=message.record,
                exists=snapshot.exists,
                value=snapshot.value,
                version=snapshot.version,
                applied_ids=tuple(state.record.applied_ids),
                pending=tuple(state.pending_options()),
            ),
        )

    # ------------------------------------------------------------------
    # Dangling-transaction status (§3.2.3)
    # ------------------------------------------------------------------
    def handle_status_request(self, message: StatusRequest, src_id: str) -> None:
        state = self.record_state(message.record)
        option_id = f"{message.txid}:{message.record}"
        option = self._option_log.get(option_id)
        status: Optional[OptionStatus] = None
        executed = option_id in state.executed
        if option is not None:
            if executed:
                status = OptionStatus.ACCEPTED
            elif option_id in state.rejected:
                status = OptionStatus.REJECTED
            else:
                in_cstruct = state.cstruct.command(option_id)
                status = in_cstruct.status if in_cstruct is not None else option.status
        self.send(
            src_id,
            StatusReply(
                request_id=message.request_id,
                txid=message.txid,
                record=message.record,
                known=option is not None,
                status=status,
                executed=executed,
                option=option,
                writeset=option.writeset if option is not None else (),
            ),
        )

    # ------------------------------------------------------------------
    # Master-role delegation
    # ------------------------------------------------------------------
    def handle_propose_classic(self, message: ProposeClassic, src_id: str) -> None:
        self.master.on_propose(message, src_id)

    def handle_start_recovery(self, message: StartRecovery, src_id: str) -> None:
        self.master.on_start_recovery(message, src_id)

    def handle_m_phase1b(self, message: MPhase1b, src_id: str) -> None:
        self.master.on_phase1b(message, src_id)

    def handle_m_phase2b(self, message: MPhase2b, src_id: str) -> None:
        self.master.on_phase2b(message, src_id)
