"""The app-server transaction manager (Algorithm 1).

The DB library is stateless; its commit logic lives here.  A coordinator

1. sends proposals for every update in the transaction's write-set —
   directly to the storage nodes in fast ballots, or to the record's
   master in classic ballots (``SendProposal``, lines 9-13);
2. learns each option: a fast quorum of matching acceptor decisions, or an
   ``OptionOutcome`` from the master after a collision (``Learn``, lines
   14-26);
3. is **not allowed to abort a proposed transaction** — the outcome is
   fully determined by the learned options (§3.2.1), which is what makes
   single-round-trip commits safe;
4. commits iff every option is learned accepted, then asynchronously sends
   ``Visibility`` messages to execute the options (lines 5-8).

Collisions (no fast quorum can agree) and timeouts escalate to the master
via ``StartRecovery``; rejected *commutative* options additionally trigger
a demarcation base refresh (lines 24-26).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import MDCCConfig
from repro.core.messages import (
    FastReply,
    OptionOutcome,
    ProposeClassic,
    ProposeFast,
    ReadReply,
    ReadRequest,
    StartRecovery,
    Visibility,
    VisibilityBatch,
)
from repro.core.options import (
    CommutativeUpdate,
    Option,
    OptionStatus,
    PhysicalUpdate,
    ReadValidation,
    RecordId,
    Update,
)
from repro.core.topology import ReplicaMap
from repro.metrics import CounterSet
from repro.trace import runtime as trace_runtime
from repro.transport.base import Future, Node, Transport

__all__ = ["MDCCCoordinator", "TransactionOutcome", "WriteSet"]


class WriteSet:
    """A transaction's buffered updates, keyed by record.

    Built by the DB library session during transaction execution and
    handed to :meth:`MDCCCoordinator.commit` at commit time ("transactions
    collect a write-set of records at the end of the transaction",
    §3.2.1).  At most one update per record.
    """

    def __init__(self) -> None:
        self._updates: Dict[RecordId, Update] = {}

    def put(self, table: str, key: str, vread: int, value: Dict[str, object]) -> None:
        """A version-guarded full write (update or insert when vread=0)."""
        self._set(RecordId(table, key), PhysicalUpdate(vread=vread, new_value=dict(value)))

    def delete(self, table: str, key: str, vread: int) -> None:
        self._set(
            RecordId(table, key),
            PhysicalUpdate(vread=vread, new_value=None, is_delete=True),
        )

    def add_delta(self, table: str, key: str, **deltas: float) -> None:
        """A commutative update, merging with an existing delta if present."""
        record = RecordId(table, key)
        existing = self._updates.get(record)
        if existing is None:
            self._updates[record] = CommutativeUpdate.of(**deltas)
            return
        if not isinstance(existing, CommutativeUpdate):
            raise ValueError(
                f"record {record} already has a physical update in this transaction"
            )
        merged = {name: delta for name, delta in existing.deltas}
        for name, delta in deltas.items():
            merged[name] = merged.get(name, 0.0) + delta
        self._updates[record] = CommutativeUpdate.of(**merged)

    def validate_read(self, table: str, key: str, vread: int) -> None:
        """An OCC read-set assertion (§4.4): commit only if (table, key)
        is still at version ``vread``.

        A no-op when the record already carries an update — every update
        type subsumes the read check (physical updates guard on vread;
        commutative deltas never read).
        """
        record = RecordId(table, key)
        if record in self._updates:
            return
        self._updates[record] = ReadValidation(vread=vread)

    def _set(self, record: RecordId, update: Update) -> None:
        if record in self._updates:
            raise ValueError(f"duplicate update for record {record} in one transaction")
        self._updates[record] = update

    @property
    def updates(self) -> Dict[RecordId, Update]:
        return dict(self._updates)

    def records(self) -> Tuple[RecordId, ...]:
        return tuple(sorted(self._updates))

    def __len__(self) -> int:
        return len(self._updates)

    def __bool__(self) -> bool:
        return bool(self._updates)


@dataclass(frozen=True)
class TransactionOutcome:
    """What the application learns about its transaction."""

    txid: str
    committed: bool
    started_at: float
    decided_at: float
    statuses: Dict[str, OptionStatus]
    fast_path: bool  # every option learned via fast quorum (no master round)

    @property
    def latency_ms(self) -> float:
        return self.decided_at - self.started_at


@dataclass
class _TxState:
    txid: str
    options: Dict[str, Option]
    future: Future
    started_at: float
    tallies: Dict[str, Dict[str, OptionStatus]] = field(default_factory=dict)
    #: membership epoch each option's fast tally was collected under; a
    #: bump wipes the tally so no vote straddles two configurations.
    tally_epochs: Dict[str, int] = field(default_factory=dict)
    learned: Dict[str, OptionStatus] = field(default_factory=dict)
    learned_via_master: bool = False
    recovery_round: int = 0
    recovery_sent: Dict[str, int] = field(default_factory=dict)
    finished: bool = False


class MDCCCoordinator(Node):
    """An app-server node hosting the DB library's commit protocol."""

    def __init__(
        self,
        transport: Transport,
        node_id: str,
        dc: str,
        placement: ReplicaMap,
        config: MDCCConfig,
        counters: Optional[CounterSet] = None,
    ) -> None:
        super().__init__(transport, node_id, dc)
        self.placement = placement
        self.config = config
        self._elastic = placement.is_elastic
        self._fast_ballots = config.fast_ballots_enabled
        #: static clusters never change quorum sizes, so resolve once.
        self._static_spec = None if self._elastic else config.quorums
        self.counters = trace_runtime.scoped_counters(
            node_id, counters if counters is not None else CounterSet()
        )
        self.tracer = trace_runtime.current_tracer()
        #: txid -> open root span (traced runs only; _TxState has slots-free
        #: fields fixed by the dataclass, so spans live here).
        self._tx_spans: Dict[str, object] = {}
        self._transactions: Dict[str, _TxState] = {}
        self._txid_seq = itertools.count(1)
        self._read_seq = itertools.count(1)
        self._pending_reads: Dict[int, Tuple[Future, ReadRequest, int]] = {}
        self.read_timeout_ms = 4 * config.learn_timeout_ms
        #: visibility batching (§7): destination -> buffered visibilities.
        self._visibility_buffer: Dict[str, List[Visibility]] = {}
        self._visibility_flush_scheduled = False

    @property
    def spec(self):
        """Quorum sizes under the current membership epoch."""
        if self._elastic:
            return self.placement.quorums()
        return self._static_spec

    def _home_dc(self) -> str:
        """This node's DC, or the first active DC once its own has been
        decommissioned (clients survive their data center's retirement —
        reads and recovery fail over to the remaining members)."""
        datacenters = self.placement.datacenters
        return self.dc if self.dc in datacenters else datacenters[0]

    # ------------------------------------------------------------------
    # Reads (local replica by default; see repro.db.reads for strategies)
    # ------------------------------------------------------------------
    def read(self, table: str, key: str, dc: Optional[str] = None) -> Future:
        """Read the committed state of (table, key) from one replica.

        Resolves with the :class:`~repro.core.messages.ReadReply`.  Fails
        over to the next data center if the replica does not answer.
        """
        request_id = next(self._read_seq)
        request = ReadRequest(table=table, key=key, request_id=request_id)
        future = self.future()
        self._pending_reads[request_id] = (future, request, 0)
        self._send_read(request, dc or self._home_dc())
        return future

    def _send_read(self, request: ReadRequest, dc: str) -> None:
        record = RecordId(request.table, request.key)
        replica = self.placement.replica_in(record, dc)
        self.send(replica, request)
        self.set_timer(self.read_timeout_ms, self._read_timeout, request.request_id, dc)

    def _read_timeout(self, request_id: int, tried_dc: str) -> None:
        entry = self._pending_reads.get(request_id)
        if entry is None:
            return
        future, request, attempt = entry
        datacenters = self.placement.datacenters
        if tried_dc in datacenters:
            next_dc = datacenters[(datacenters.index(tried_dc) + 1) % len(datacenters)]
        else:
            # The DC we tried was decommissioned while the read was in
            # flight; restart the rotation from the current membership.
            next_dc = datacenters[attempt % len(datacenters)]
        self._pending_reads[request_id] = (future, request, attempt + 1)
        if attempt + 1 < 2 * len(datacenters):
            self._send_read(request, next_dc)

    def handle_read_reply(self, message: ReadReply, src_id: str) -> None:
        entry = self._pending_reads.pop(message.request_id, None)
        if entry is None:
            return  # late duplicate after failover
        future, _request, _attempt = entry
        future.try_resolve(message)

    # ------------------------------------------------------------------
    # Commit (Algorithm 1, TransactionStart)
    # ------------------------------------------------------------------
    def next_txid(self) -> str:
        return f"{self.node_id}-tx{next(self._txid_seq)}"

    def commit(self, writeset: WriteSet, txid: Optional[str] = None) -> Future:
        """Run the commit protocol; resolves with a TransactionOutcome."""
        txid = txid or self.next_txid()
        future = self.future()
        if not writeset:
            # Read-only transaction: nothing to agree on.
            outcome = TransactionOutcome(
                txid=txid,
                committed=True,
                started_at=self.now,
                decided_at=self.now,
                statuses={},
                fast_path=True,
            )
            self.counters.increment("coordinator.readonly_commits")
            future.resolve(outcome)
            return future

        records = writeset.records()
        options = {}
        for record, update in writeset.updates.items():
            if not isinstance(update, ReadValidation):
                # Adaptive placement signal: this DC wrote this record.
                self.placement.note_write(record, self.dc, self.now)
            option = Option(
                txid=txid,
                record=record,
                update=update,
                writeset=records,
                status=OptionStatus.PENDING,
            )
            options[option.option_id] = option
        tx = _TxState(
            txid=txid,
            options=options,
            future=future,
            started_at=self.now,
        )
        self._transactions[txid] = tx
        if self.tracer.enabled:
            root = self.tracer.start_trace(
                txid, self.node_id, self.now, records=len(records)
            )
            self._tx_spans[txid] = root
            previous = trace_runtime.set_context(root.ctx)
            try:
                for option in options.values():
                    self._propose(tx, option)
            finally:
                trace_runtime.reset_context(previous)
        else:
            for option in options.values():
                self._propose(tx, option)
        self.set_timer(self.config.learn_timeout_ms, self._learn_timeout, txid)
        self.counters.increment("coordinator.transactions")
        return future

    def _propose(self, tx: _TxState, option: Option) -> None:
        if self._fast_ballots:
            replicas = self.placement.replicas(option.record)
            message = ProposeFast(
                option=option,
                reply_to=self.node_id,
                epoch=self.placement.epoch if self._elastic else 0,
            )
            self.broadcast(replicas, message)
            self.counters.increment("coordinator.fast_proposals")
        else:
            master = self.placement.master_node(option.record)
            self.send(master, ProposeClassic(option=option, reply_to=self.node_id))
            tx.learned_via_master = True
            self.counters.increment("coordinator.classic_proposals")
            # Figure-7 locality observability: was the master local to us?
            if self.placement.master_dc(option.record) == self.dc:
                self.counters.increment("coordinator.local_master_proposals")
            else:
                self.counters.increment("coordinator.remote_master_proposals")

    # ------------------------------------------------------------------
    # Learning (Algorithm 1, Learn)
    # ------------------------------------------------------------------
    def handle_fast_reply(self, message: FastReply, src_id: str) -> None:
        tx = self._transactions.get(message.txid)
        if tx is None or tx.finished or message.option_id in tx.learned:
            return
        epoch = self.placement.epoch if self._elastic else 0
        if message.epoch < epoch:
            # A vote cast under the previous configuration: dropping it is
            # what keeps a fast quorum from straddling a resize.
            self.counters.increment("reconfig.stale_epoch_dropped")
            if self.tracer.enabled:
                root = self._tx_spans.get(tx.txid)
                if root is not None:
                    root.event(
                        self.now,
                        "stale-epoch",
                        option_id=message.option_id,
                        vote_epoch=message.epoch,
                        epoch=epoch,
                    )
            return
        tally = tx.tallies.get(message.option_id)
        if tally is None:
            tally = tx.tallies[message.option_id] = {}
        if tx.tally_epochs.get(message.option_id, epoch) != epoch:
            # Votes gathered before the bump are void; start the tally
            # over under the new epoch (stragglers re-fill it, or the
            # learn timeout escalates to the master).
            tally.clear()
        tx.tally_epochs[message.option_id] = epoch
        tally[src_id] = message.status
        accepted = 0
        rejected = 0
        for status in tally.values():
            if status is OptionStatus.ACCEPTED:
                accepted += 1
            elif status is OptionStatus.REJECTED:
                rejected += 1
        spec = self.spec
        if accepted >= spec.fast_size:
            self._learn(tx, message.option_id, OptionStatus.ACCEPTED)
        elif rejected >= spec.fast_size:
            self._learn(tx, message.option_id, OptionStatus.REJECTED)
        elif spec.fast_unreachable(
            accepted, len(tally)
        ) and spec.fast_unreachable(rejected, len(tally)):
            # Neither outcome can reach a fast quorum: a collision.
            self._escalate(tx, message.option_id, "collision")

    def handle_option_outcome(self, message: OptionOutcome, src_id: str) -> None:
        tx = self._transactions.get(message.txid)
        if tx is None or tx.finished or message.option_id in tx.learned:
            return
        tx.learned_via_master = True
        self._learn(tx, message.option_id, message.status)

    def _learn(self, tx: _TxState, option_id: str, status: OptionStatus) -> None:
        tx.learned[option_id] = status
        option = tx.options[option_id]
        if (
            status is OptionStatus.REJECTED
            and option.is_commutative
            and self.config.fast_ballots_enabled
        ):
            # Lines 24-26: a rejected commutative option during a fast
            # ballot signals a demarcation limit hit — refresh the base.
            self._send_recovery(tx, option, "commutative-limit")
            self.counters.increment("coordinator.limit_recoveries")
        if len(tx.learned) == len(tx.options):
            self._finish(tx)

    def _escalate(self, tx: _TxState, option_id: str, reason: str) -> None:
        if tx.recovery_sent.get(option_id, -1) >= tx.recovery_round:
            return
        tx.recovery_sent[option_id] = tx.recovery_round
        option = tx.options[option_id]
        self._send_recovery(tx, option, reason)
        self.counters.increment("coordinator.collisions")

    def _send_recovery(self, tx: _TxState, option: Option, reason: str) -> None:
        candidates = self.placement.master_candidates(option.record)
        target = candidates[tx.recovery_round % len(candidates)]
        message = StartRecovery(
            record=option.record,
            reason=reason,
            option=option,
            reply_to=self.node_id,
        )
        if self.tracer.enabled:
            # Slow-path attribution at the decision site: the reason the
            # fast path was abandoned (collision / timeout /
            # commutative-limit) lands on the transaction's root span, and
            # the escalation itself becomes a span so the master's
            # phase1-takeover stitches under it.
            root = self._tx_spans.get(tx.txid)
            span = self.tracer.start_span(
                "recovery-escalation",
                self.node_id,
                self.now,
                parent=root.ctx if root is not None else None,
                txid=tx.txid,
                reason=reason,
                target=target,
                record=f"{option.record.table}/{option.record.key}",
            )
            if root is not None:
                root.event(self.now, reason, option_id=option.option_id)
            previous = trace_runtime.set_context(span.ctx)
            try:
                self.send(target, message)
            finally:
                trace_runtime.reset_context(previous)
            span.finish(self.now, "sent")
        else:
            self.send(target, message)

    def _learn_timeout(self, txid: str) -> None:
        tx = self._transactions.get(txid)
        if tx is None or tx.finished:
            return
        tx.recovery_round += 1
        for option_id, option in tx.options.items():
            if option_id not in tx.learned:
                tx.recovery_sent[option_id] = tx.recovery_round
                self._send_recovery(tx, option, "timeout")
                self.counters.increment("coordinator.timeout_recoveries")
        self.set_timer(self.config.recovery_timeout_ms, self._learn_timeout, txid)

    # ------------------------------------------------------------------
    # Outcome & visibility (Algorithm 1, lines 5-8)
    # ------------------------------------------------------------------
    def _finish(self, tx: _TxState) -> None:
        if tx.finished:
            return
        tx.finished = True
        committed = all(
            status is OptionStatus.ACCEPTED for status in tx.learned.values()
        )
        if self.tracer.enabled:
            root = self._tx_spans.pop(tx.txid, None)
            fanout = self.tracer.start_span(
                "visibility-fanout",
                self.node_id,
                self.now,
                parent=root.ctx if root is not None else None,
                txid=tx.txid,
                options=len(tx.options),
                committed=committed,
            )
            previous = trace_runtime.set_context(fanout.ctx)
            try:
                for option in tx.options.values():
                    visibility = Visibility(option=option, committed=committed)
                    for replica in self.placement.replicas_for_repair(option.record):
                        self._send_visibility(replica, visibility)
            finally:
                trace_runtime.reset_context(previous)
            fanout.finish(self.now, "sent")
            if root is not None:
                root.attrs["fast_path"] = not tx.learned_via_master
                root.finish(self.now, "committed" if committed else "aborted")
            trace_runtime.record_latency(
                self.node_id, self.now - tx.started_at, tx.started_at
            )
        else:
            for option in tx.options.values():
                visibility = Visibility(option=option, committed=committed)
                # Repair scope, not quorum scope: joining replicas receive
                # visibilities too, so a bootstrapping DC tracks live commits
                # instead of deferring everything to the catch-up sweeps.
                for replica in self.placement.replicas_for_repair(option.record):
                    self._send_visibility(replica, visibility)
        outcome = TransactionOutcome(
            txid=tx.txid,
            committed=committed,
            started_at=tx.started_at,
            decided_at=self.now,
            statuses=dict(tx.learned),
            fast_path=not tx.learned_via_master,
        )
        self.counters.increment(
            "coordinator.commits" if committed else "coordinator.aborts"
        )
        if committed and not tx.learned_via_master:
            self.counters.increment("coordinator.fast_commits")
        del self._transactions[tx.txid]
        tx.future.resolve(outcome)

    # ------------------------------------------------------------------
    # Visibility batching (§7's message-overhead reduction)
    # ------------------------------------------------------------------
    def _send_visibility(self, replica: str, visibility: Visibility) -> None:
        if self.config.visibility_batch_ms <= 0:
            self.send(replica, visibility)
            return
        self._visibility_buffer.setdefault(replica, []).append(visibility)
        if not self._visibility_flush_scheduled:
            self._visibility_flush_scheduled = True
            self.set_timer(self.config.visibility_batch_ms, self._flush_visibilities)

    def _flush_visibilities(self) -> None:
        self._visibility_flush_scheduled = False
        buffered, self._visibility_buffer = self._visibility_buffer, {}
        for replica, visibilities in buffered.items():
            if len(visibilities) == 1:
                self.send(replica, visibilities[0])
            else:
                self.send(replica, VisibilityBatch(visibilities=tuple(visibilities)))
                self.counters.increment(
                    "coordinator.visibility_batched", amount=len(visibilities) - 1
                )
