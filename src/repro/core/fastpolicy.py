"""Fast/classic mode policies (§3.3.2, and §5.3.2's future work).

The paper's default policy is static: "If we detect a collision, we set
the next γ instances (default 100) to classic.  After γ transactions,
fast instances are automatically tried again."  It then notes: "More
advanced models could explicitly calculate the conflict rate and remain
as future work", and §5.3.2 concludes "exploring policies to
automatically determine the best strategy remains as future work."

This module implements both:

* :class:`StaticGammaPolicy` — the paper's fixed-γ behaviour.
* :class:`AdaptiveGammaPolicy` — the future-work policy: the classic
  horizon adapts to the *observed collision spacing* per record.
  Collisions arriving in quick succession (within ``window_ms`` of the
  previous one) signal a contended record: the horizon doubles, keeping
  the record in cheap master-serialized classic mode for longer.  A
  collision after a quiet period resets the horizon to ``gamma_min`` so
  lightly contended records return to one-round-trip fast ballots almost
  immediately.

Masters only observe collisions (successful fast commits bypass them
entirely), so collision spacing is the conflict-rate signal available
without adding messages — exactly the trade-off the paper's design makes
elsewhere ("we trade-off reducing latency by using more CPU cycles to
make sophisticated decisions at each site").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Protocol

from repro.core.options import RecordId

__all__ = [
    "AdaptiveGammaPolicy",
    "GammaPolicy",
    "StaticGammaPolicy",
    "make_policy",
]


class GammaPolicy(Protocol):
    """How many classic instances to schedule after a collision."""

    def classic_horizon(self, record: RecordId, reason: str, now: float) -> int:
        """Called by the master when switching a record to classic mode."""
        ...


@dataclass(frozen=True)
class StaticGammaPolicy:
    """The paper's §3.3.2 policy: a fixed γ for every collision."""

    gamma: int = 100
    commutative_gamma: int = 100

    def classic_horizon(self, record: RecordId, reason: str, now: float) -> int:
        if reason == "commutative-limit":
            return max(self.commutative_gamma, 0)
        return max(self.gamma, 1)


class AdaptiveGammaPolicy:
    """Conflict-rate-driven horizons (the §5.3.2 future-work policy).

    Per record, the horizon starts at ``gamma_min``.  Each collision within
    ``window_ms`` of the previous one doubles it (capped at ``gamma_max``);
    a collision after a quiet gap resets it to ``gamma_min``.

    The result approximates the paper's guidance: "fast ballots can take
    advantage of master-less operation as long as the conflict rate is not
    very high.  When the conflict rate is too high, a master-based approach
    is more beneficial" — contended records converge to Multi-like
    behaviour, cold records stay fast.
    """

    def __init__(
        self,
        gamma_min: int = 8,
        gamma_max: int = 1_024,
        window_ms: float = 5_000.0,
    ) -> None:
        if gamma_min < 1:
            raise ValueError("gamma_min must be at least 1")
        if gamma_max < gamma_min:
            raise ValueError("gamma_max must be >= gamma_min")
        if window_ms <= 0:
            raise ValueError("window_ms must be positive")
        self.gamma_min = gamma_min
        self.gamma_max = gamma_max
        self.window_ms = window_ms
        self._horizons: Dict[RecordId, int] = {}
        self._last_collision: Dict[RecordId, float] = {}

    def classic_horizon(self, record: RecordId, reason: str, now: float) -> int:
        last = self._last_collision.get(record)
        self._last_collision[record] = now
        if last is not None and now - last <= self.window_ms:
            horizon = min(self._horizons.get(record, self.gamma_min) * 2, self.gamma_max)
        else:
            horizon = self.gamma_min
        self._horizons[record] = horizon
        return horizon

    def current_horizon(self, record: RecordId) -> int:
        """The record's last chosen horizon (``gamma_min`` if never hit)."""
        return self._horizons.get(record, self.gamma_min)


def make_policy(config) -> GammaPolicy:
    """Build the configured policy from an :class:`MDCCConfig`."""
    if config.gamma_policy == "adaptive":
        return AdaptiveGammaPolicy(
            gamma_min=config.adaptive_gamma_min,
            gamma_max=config.adaptive_gamma_max,
            window_ms=config.adaptive_window_ms,
        )
    return StaticGammaPolicy(
        gamma=config.gamma,
        commutative_gamma=config.effective_commutative_gamma,
    )
