"""Replica placement and master policies.

Deployment mirrors §5.1: "Each data center has a full replica of the data,
and within a data center, each table is range partitioned by key, and
distributed across several storage nodes."  A record therefore has one
replica per data center, hosted on the storage node that owns its
partition there.

Master policies (§2: "MDCC supports an individual master per record"):

* ``hash`` — each record's master data center is chosen by key hash,
  spreading mastership uniformly (the evaluation's Multi setup: "masters
  being uniformly distributed across all the data centers", §5.3.1).
* ``fixed:<dc>`` — all masters in one data center (the Megastore*-style
  setup, and the paper's insert default of one master per table).
* ``table`` — the table schema's ``default_master_dc``.
* ``adaptive`` — mastership starts out hash-placed but *moves*: write
  origins are tracked per record and the
  :mod:`repro.placement` subsystem migrates masters toward the dominant
  origin data center via Phase-1 ballot takeovers (§3.1.1: "the
  mastership can change by running Phase 1").  ``master_dc`` then
  consults the mutable, versioned
  :class:`~repro.placement.directory.PlacementDirectory`.

Elastic membership: when a
:class:`~repro.reconfig.directory.MembershipDirectory` is attached, the
data-center set (and with it the replica sets, quorum sizes and hash
master placement) is *dynamic* — every lookup reads the directory's
current epoch state, so a single ``admit``/``retire`` atomically resizes
quorums for every record.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.options import RecordId
from repro.paxos.quorum import QuorumSpec
from repro.storage.partition import stable_hash

__all__ = ["ReplicaMap", "MASTER_POLICIES"]

#: The named master policies (``fixed:<dc>`` is the parameterized one).
MASTER_POLICIES = ("hash", "table", "adaptive")


class ReplicaMap:
    """Maps records to replica storage nodes and master data centers."""

    def __init__(
        self,
        datacenters: Sequence[str],
        partitions_per_table: int = 1,
        master_policy: str = "hash",
        table_master_dc: Optional[Dict[str, str]] = None,
        tracker_halflife_ms: float = 10_000.0,
        membership=None,
    ) -> None:
        if not datacenters:
            raise ValueError("need at least one data center")
        if partitions_per_table < 1:
            raise ValueError("need at least one partition")
        self._datacenters: Tuple[str, ...] = tuple(datacenters)
        #: the elastic-membership directory (None for a static cluster).
        #: When set, the DC tuple (and everything derived from it) tracks
        #: the directory's epoch state instead of the build-time set.
        self.membership = membership
        if membership is not None and membership.active != self._datacenters:
            raise ValueError(
                "membership directory's active set does not match the "
                "build-time data centers"
            )
        self.partitions_per_table = partitions_per_table
        self.master_policy = master_policy
        self.table_master_dc = dict(table_master_dc or {})
        if master_policy.startswith("fixed:"):
            fixed_dc = master_policy.split(":", 1)[1]
            if fixed_dc not in self.datacenters:
                raise ValueError(f"unknown fixed master DC {fixed_dc!r}")
        elif master_policy not in MASTER_POLICIES:
            raise ValueError(f"unknown master policy {master_policy!r}")
        #: memoized (n, QuorumSpec) — quorum sizing math and the frozen
        #: dataclass's intersection validation run once per resize, not
        #: once per message handled.
        self._quorum_cache: Optional[Tuple[int, QuorumSpec]] = None
        #: per-record placement caches, valid only while the mapping is
        #: immutable: a static DC set (no membership directory) and a
        #: non-adaptive master policy.  Under those policies every lookup
        #: is a pure function of the record id.
        self._static_placement = membership is None
        self._replicas_cache: Dict[RecordId, Tuple[str, ...]] = {}
        self._master_node_cache: Dict[RecordId, str] = {}
        #: adaptive-policy state (None under the static policies).  Imported
        #: lazily: repro.placement depends on repro.core, not vice versa.
        self.tracker = None
        self.directory = None
        if master_policy == "adaptive":
            from repro.placement.directory import PlacementDirectory
            from repro.placement.tracker import AccessTracker

            self.tracker = AccessTracker(halflife_ms=tracker_halflife_ms)
            self.directory = PlacementDirectory(fallback=self._hash_master_dc)

    # ------------------------------------------------------------------
    # Membership (static or epoch-versioned)
    # ------------------------------------------------------------------
    @property
    def datacenters(self) -> Tuple[str, ...]:
        """The quorum-member data centers under the current epoch."""
        if self.membership is not None:
            return self.membership.active
        return self._datacenters

    @property
    def joining_datacenters(self) -> Tuple[str, ...]:
        """DCs replicated-to but not yet in quorums (empty when static)."""
        if self.membership is not None:
            return self.membership.joining
        return ()

    @property
    def epoch(self) -> int:
        """The membership epoch protocol messages are fenced against.

        Always 0 for a static cluster, so the epoch checks throughout the
        protocol are no-ops unless a membership directory is attached.
        """
        if self.membership is not None:
            return self.membership.epoch
        return 0

    @property
    def is_elastic(self) -> bool:
        return self.membership is not None

    # ------------------------------------------------------------------
    # Node naming and placement
    # ------------------------------------------------------------------
    @staticmethod
    def storage_node_id(dc: str, partition: int) -> str:
        return f"store-{dc}-p{partition}"

    def all_storage_node_ids(self) -> List[str]:
        return [
            self.storage_node_id(dc, p)
            for dc in self.datacenters
            for p in range(self.partitions_per_table)
        ]

    def partition_of(self, table: str, key: str) -> int:
        return stable_hash(f"{table}:{key}") % self.partitions_per_table

    def replicas(self, record: RecordId) -> Sequence[str]:
        """One storage node per quorum-member data center, in DC order.

        Joining data centers are deliberately excluded: a replica being
        bootstrapped must never count toward a fast or classic quorum.
        """
        if self._static_placement:
            cached = self._replicas_cache.get(record)
            if cached is None:
                partition = self.partition_of(record.table, record.key)
                cached = tuple(
                    self.storage_node_id(dc, partition)
                    for dc in self._datacenters
                )
                self._replicas_cache[record] = cached
            return cached
        partition = self.partition_of(record.table, record.key)
        return [self.storage_node_id(dc, partition) for dc in self.datacenters]

    def replicas_for_repair(self, record: RecordId) -> List[str]:
        """Replicas including joining DCs — the anti-entropy sweep scope.

        Repair (CatchUp / visibility re-drive) is version-guarded and safe
        at any epoch, so sweeping a half-bootstrapped replica is how a
        joining DC catches up through writes that landed after its
        snapshot cut.
        """
        partition = self.partition_of(record.table, record.key)
        return [
            self.storage_node_id(dc, partition)
            for dc in (*self.datacenters, *self.joining_datacenters)
        ]

    def replica_in(self, record: RecordId, dc: str) -> str:
        partition = self.partition_of(record.table, record.key)
        return self.storage_node_id(dc, partition)

    @property
    def replication(self) -> int:
        return len(self.datacenters)

    def quorums(self) -> QuorumSpec:
        n = self.replication
        if self._quorum_cache is None or self._quorum_cache[0] != n:
            self._quorum_cache = (n, QuorumSpec.for_replication(n))
        return self._quorum_cache[1]

    def quorum_spec(self, config) -> QuorumSpec:
        """The quorum sizes a protocol role should use right now.

        The single source of the elastic-vs-static rule: an elastic
        cluster derives sizes from the membership directory's current DC
        count; a static cluster uses the frozen config.  Every role's
        ``spec`` property delegates here.
        """
        if self.is_elastic:
            return self.quorums()
        return config.quorums

    # ------------------------------------------------------------------
    # Mastership
    # ------------------------------------------------------------------
    def master_dc(self, record: RecordId) -> str:
        if self.master_policy.startswith("fixed:"):
            return self.master_policy.split(":", 1)[1]
        if self.master_policy == "table":
            dc = self.table_master_dc.get(record.table)
            if dc is None:
                raise ValueError(f"no default master DC for table {record.table!r}")
            return dc
        if self.master_policy == "adaptive":
            return self.directory.master_dc(record)
        return self._hash_master_dc(record)

    def _hash_master_dc(self, record: RecordId) -> str:
        index = stable_hash(f"master:{record.table}:{record.key}") % len(
            self.datacenters
        )
        return self.datacenters[index]

    @property
    def is_adaptive(self) -> bool:
        return self.master_policy == "adaptive"

    def note_write(self, record: RecordId, origin_dc: str, now: float) -> None:
        """Feed the access tracker; a no-op under static policies."""
        if self.tracker is not None:
            self.tracker.note(record, origin_dc, now)

    def master_node(self, record: RecordId) -> str:
        if self._static_placement and self.tracker is None:
            # Adaptive mastership migrates at runtime; everything else is a
            # pure function of the record id and can be looked up once.
            cached = self._master_node_cache.get(record)
            if cached is None:
                cached = self.replica_in(record, self.master_dc(record))
                self._master_node_cache[record] = cached
            return cached
        return self.replica_in(record, self.master_dc(record))

    def master_candidates(self, record: RecordId) -> List[str]:
        """Failover order: the record's master first, then the other
        replicas in data-center order (any node can take over mastership,
        §3.2.3)."""
        primary = self.master_node(record)
        rest = [node for node in self.replicas(record) if node != primary]
        return [primary] + rest
