"""Measurement instruments: latency recorders, counters, time series.

These feed the benchmark harness that regenerates the paper's figures:
Figure 3/5 need CDFs of response times, Figure 4 needs throughput counters,
Figure 6 needs commit/abort counts, Figure 7 needs boxplot statistics, and
Figure 8 needs a time series of latencies around a failure event.

The instruments are pure data structures with no dependency on the
simulator or any transport backend — protocol roles count commits the
same way whether they run above the discrete-event loop or as real
processes over TCP.  (:mod:`repro.sim` re-exports the common names for
convenience.)
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "BoxplotStats",
    "Counter",
    "CounterSet",
    "LatencyRecorder",
    "TimeSeries",
    "percentile",
]


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile of an ascending sequence.

    ``fraction`` is in [0, 1].  Matches numpy's default ("linear") method so
    harness output is comparable with any external analysis.
    """
    if not sorted_values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction out of range: {fraction}")
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    rank = fraction * (len(sorted_values) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return float(sorted_values[low])
    weight = rank - low
    return float(sorted_values[low] * (1.0 - weight) + sorted_values[high] * weight)


@dataclass
class BoxplotStats:
    """Five-number summary + mean, as drawn in Figure 7."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float
    count: int

    def as_row(self) -> Dict[str, float]:
        return {
            "min": self.minimum,
            "q1": self.q1,
            "median": self.median,
            "q3": self.q3,
            "max": self.maximum,
            "mean": self.mean,
            "count": self.count,
        }


class LatencyRecorder:
    """Collects latency samples (ms) with optional timestamps.

    Samples are kept raw; summaries are computed on demand over a sorted
    copy that is cached until the next insertion.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._values: List[float] = []
        self._timestamps: List[Optional[float]] = []
        self._sorted_cache: Optional[List[float]] = None

    def add(self, value: float, timestamp: Optional[float] = None) -> None:
        """Record one sample; ``timestamp`` stays ``None`` when omitted.

        A sample taken at simulated time zero is a real data point, so
        "no timestamp" must not collapse onto ``t=0.0`` — time-series
        consumers (:attr:`timestamped`) skip untimed samples instead.
        """
        self._values.append(float(value))
        self._timestamps.append(None if timestamp is None else float(timestamp))
        self._sorted_cache = None

    def extend(
        self,
        values: Iterable[float],
        timestamps: Optional[Iterable[float]] = None,
    ) -> None:
        """Bulk-record samples, optionally with matching timestamps.

        Without ``timestamps`` every sample is untimed (it contributes to
        percentiles but not to :attr:`timestamped`).  With ``timestamps``
        the two iterables are paired positionally and must have the same
        length.
        """
        if timestamps is None:
            for value in values:
                self.add(value)
            return
        values = list(values)
        timestamps = list(timestamps)
        if len(values) != len(timestamps):
            raise ValueError(
                f"extend() got {len(values)} values but "
                f"{len(timestamps)} timestamps"
            )
        for value, timestamp in zip(values, timestamps):
            self.add(value, timestamp)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> List[float]:
        return list(self._values)

    @property
    def timestamped(self) -> List[Tuple[float, float]]:
        """(timestamp, value) pairs in insertion order.

        Samples recorded without a timestamp are skipped — they have no
        place on a time axis; genuine ``t=0.0`` samples are kept.
        """
        return [
            (timestamp, value)
            for timestamp, value in zip(self._timestamps, self._values)
            if timestamp is not None
        ]

    def _sorted(self) -> List[float]:
        if self._sorted_cache is None:
            self._sorted_cache = sorted(self._values)
        return self._sorted_cache

    def percentile(self, fraction: float) -> float:
        return percentile(self._sorted(), fraction)

    @property
    def median(self) -> float:
        return self.percentile(0.5)

    @property
    def mean(self) -> float:
        if not self._values:
            raise ValueError("mean of empty recorder")
        return sum(self._values) / len(self._values)

    @property
    def minimum(self) -> float:
        return self._sorted()[0]

    @property
    def maximum(self) -> float:
        return self._sorted()[-1]

    def boxplot(self) -> BoxplotStats:
        return BoxplotStats(
            minimum=self.minimum,
            q1=self.percentile(0.25),
            median=self.median,
            q3=self.percentile(0.75),
            maximum=self.maximum,
            mean=self.mean,
            count=len(self),
        )

    def cdf_points(self, resolution: int = 100) -> List[Tuple[float, float]]:
        """(latency, cumulative fraction) pairs — the curves of Figures 3/5."""
        data = self._sorted()
        if not data:
            return []
        points: List[Tuple[float, float]] = []
        for step in range(resolution + 1):
            fraction = step / resolution
            points.append((percentile(data, fraction), fraction))
        return points

    def fraction_below(self, threshold: float) -> float:
        """Fraction of samples strictly below ``threshold``."""
        data = self._sorted()
        if not data:
            return 0.0
        return bisect.bisect_left(data, threshold) / len(data)

    def summary(self) -> Dict[str, float]:
        if not self._values:
            return {"count": 0}
        return {
            "count": len(self),
            "mean": self.mean,
            "p50": self.median,
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
            "min": self.minimum,
            "max": self.maximum,
        }


@dataclass
class Counter:
    """A single named monotonically increasing counter."""

    name: str
    value: int = 0

    def increment(self, amount: int = 1) -> None:
        self.value += amount


class CounterSet:
    """A bag of named counters (commits, aborts, collisions, rounds, ...)."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}

    def increment(self, name: str, amount: int = 1) -> None:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        counter.value += amount

    def get(self, name: str) -> int:
        counter = self._counters.get(name)
        return counter.value if counter else 0

    def as_dict(self) -> Dict[str, int]:
        return {name: counter.value for name, counter in sorted(self._counters.items())}

    def __contains__(self, name: str) -> bool:
        return name in self._counters


class TimeSeries:
    """Timestamped scalar samples bucketed into fixed windows.

    Used for Figure 8: per-transaction latencies over elapsed time around a
    simulated data center outage.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._points: List[Tuple[float, float]] = []

    def add(self, timestamp: float, value: float) -> None:
        self._points.append((float(timestamp), float(value)))

    def __len__(self) -> int:
        return len(self._points)

    @property
    def points(self) -> List[Tuple[float, float]]:
        return list(self._points)

    def bucket_means(self, bucket_ms: float) -> List[Tuple[float, float, int]]:
        """(bucket_start, mean_value, count) for each non-empty bucket."""
        buckets: Dict[int, List[float]] = {}
        for timestamp, value in self._points:
            buckets.setdefault(int(timestamp // bucket_ms), []).append(value)
        out = []
        for index in sorted(buckets):
            values = buckets[index]
            out.append((index * bucket_ms, sum(values) / len(values), len(values)))
        return out

    def mean_between(self, start: float, end: float) -> float:
        """Mean of samples whose timestamp lies in [start, end)."""
        values = [v for t, v in self._points if start <= t < end]
        if not values:
            raise ValueError(f"no samples in [{start}, {end})")
        return sum(values) / len(values)

    def bucket_counts(
        self, bucket_ms: float, start: float, end: float
    ) -> List[Tuple[float, int]]:
        """(bucket_start, sample_count) for EVERY bucket covering [start, end).

        Unlike :meth:`bucket_means`, empty buckets appear with count 0 —
        the chaos harness reads "zero commits landed in this window" as an
        unavailability verdict, so silence must be visible."""
        if bucket_ms <= 0:
            raise ValueError("bucket_ms must be positive")
        counts: Dict[int, int] = {}
        for timestamp, _value in self._points:
            if start <= timestamp < end:
                index = int((timestamp - start) // bucket_ms)
                counts[index] = counts.get(index, 0) + 1
        total = int(math.ceil((end - start) / bucket_ms))
        return [
            (start + index * bucket_ms, counts.get(index, 0))
            for index in range(total)
        ]
