"""Elastic membership: runtime data-center join/leave (reconfiguration).

The paper's deployment is frozen at cluster-build time — "each data
center has a full replica of the data" (§5.1) over a fixed DC set.  This
package makes the DC set *dynamic*: an epoch-versioned
:class:`~repro.reconfig.directory.MembershipDirectory` drives quorum
sizing and replica placement, a snapshot bootstrap streams committed
state to a joining data center, and a graceful decommission evacuates a
leaving data center's record masterships through the same §3.1.1
Phase-1 takeover the placement subsystem uses.
"""

from repro.reconfig.directory import MembershipDirectory
from repro.reconfig.manager import ReconfigManager

__all__ = ["MembershipDirectory", "ReconfigManager"]
