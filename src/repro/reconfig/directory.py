"""The epoch-versioned data-center membership map.

The analogue of :class:`~repro.placement.directory.PlacementDirectory`
one level up: where the placement directory maps *records* to master
data centers, the membership directory maps the *cluster* to its current
data-center set.  Everything that depends on the DC set — replica
enumeration, classic/fast quorum sizes, hash master placement — derives
from it, so a single epoch bump atomically reconfigures all of them.

Epochs are the fencing token of §3.1.1 generalized to membership: just
as a mastership change "can change by running Phase 1" under a higher
ballot, a membership change happens under a higher epoch, and protocol
messages stamped with a stale epoch are rejected by their receivers so
no quorum vote can straddle two configurations.

Lifecycle of one data center::

    (unknown) --begin_join--> joining --admit--> active --retire--> (gone)
                  joining --abort_join--> (unknown)

``joining`` DCs host replicas (the snapshot bootstrap streams state to
them and anti-entropy repairs them) but are excluded from quorums until
admitted — a half-bootstrapped replica must never count toward a fast or
classic quorum.  Only :meth:`admit` and :meth:`retire` bump the epoch:
they are the transitions that change quorum membership.

Like the placement directory, the simulation shares one membership
object; the epoch stands in for the configuration number a distributed
deployment would agree on through its own consensus instance.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["MembershipDirectory", "MembershipError"]


class MembershipError(RuntimeError):
    """Raised for invalid membership transitions (double join, unknown DC)."""


class MembershipDirectory:
    """Epoch counter + the active and joining data-center sets."""

    def __init__(self, datacenters: Sequence[str]) -> None:
        if not datacenters:
            raise MembershipError("need at least one initial data center")
        if len(set(datacenters)) != len(tuple(datacenters)):
            raise MembershipError("duplicate data center in initial membership")
        self._active: Tuple[str, ...] = tuple(datacenters)
        self._joining: Tuple[str, ...] = ()
        #: bumped on every quorum-membership change (admit / retire).
        self.epoch = 0
        #: JSON-friendly audit trail of every transition.
        self.history: List[Dict[str, object]] = []

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def active(self) -> Tuple[str, ...]:
        """Quorum members, in join order (initial order, then admissions)."""
        return self._active

    @property
    def joining(self) -> Tuple[str, ...]:
        """DCs being bootstrapped: replicated to, but not counted in quorums."""
        return self._joining

    def is_active(self, dc: str) -> bool:
        return dc in self._active

    def is_joining(self, dc: str) -> bool:
        return dc in self._joining

    def as_dict(self) -> Dict[str, object]:
        return {
            "epoch": self.epoch,
            "datacenters": list(self._active),
            "joining": list(self._joining),
            "history": list(self.history),
        }

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def _note(self, now: float, event: str, dc: str) -> None:
        self.history.append(
            {"t_ms": round(now, 3), "epoch": self.epoch, "event": event, "dc": dc}
        )

    def begin_join(self, dc: str, now: float = 0.0) -> None:
        """Start bootstrapping ``dc``.  No epoch bump: quorums are unchanged."""
        if dc in self._active:
            raise MembershipError(f"DC {dc!r} is already an active member")
        if dc in self._joining:
            raise MembershipError(f"DC {dc!r} is already joining")
        self._joining = self._joining + (dc,)
        self._note(now, "join-started", dc)

    def admit(self, dc: str, now: float = 0.0) -> int:
        """Promote a bootstrapped ``dc`` into the quorum set; returns the
        new epoch.  From this epoch on, every quorum includes ``dc``'s
        replicas and stale-epoch votes are fenced out."""
        if dc not in self._joining:
            raise MembershipError(f"DC {dc!r} is not joining")
        self._joining = tuple(d for d in self._joining if d != dc)
        self._active = self._active + (dc,)
        self.epoch += 1
        self._note(now, "admitted", dc)
        return self.epoch

    def abort_join(self, dc: str, now: float = 0.0) -> None:
        """Abandon an in-progress bootstrap (donor unreachable, operator
        cancel).  No epoch bump: the DC never entered any quorum."""
        if dc not in self._joining:
            raise MembershipError(f"DC {dc!r} is not joining")
        self._joining = tuple(d for d in self._joining if d != dc)
        self._note(now, "join-aborted", dc)

    def retire(self, dc: str, now: float = 0.0) -> int:
        """Remove an active ``dc`` from the membership; returns the new
        epoch.  Quorums shrink immediately; the caller (the reconfig
        manager) evacuates masterships and then drops the replicas."""
        if dc not in self._active:
            raise MembershipError(f"DC {dc!r} is not an active member")
        if len(self._active) == 1:
            raise MembershipError("cannot retire the last data center")
        self._active = tuple(d for d in self._active if d != dc)
        self.epoch += 1
        self._note(now, "retired", dc)
        return self.epoch

    def __len__(self) -> int:
        return len(self._active)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        joining = f" +{','.join(self._joining)}" if self._joining else ""
        return (
            f"<MembershipDirectory epoch={self.epoch} "
            f"active={','.join(self._active)}{joining}>"
        )
