"""The membership control plane: join, bootstrap, admit; retire, evacuate.

A :class:`ReconfigManager` is a simulated node (like
:class:`~repro.placement.manager.PlacementManager`) that drives the two
membership operations end to end:

**Join** (:meth:`join`) — scale-out or disaster replacement:

1. wire the new data center into the network fabric (runtime RTT
   registration; a replacement DC clones its template's link profile);
2. ``begin_join`` in the :class:`~repro.reconfig.directory.
   MembershipDirectory` — the DC now hosts replicas but joins no quorum;
3. build its storage nodes and stream a **snapshot bootstrap** from a
   donor DC: per partition, the donor walks its store
   (:meth:`~repro.storage.store.RecordStore.snapshot`) and streams
   chunks cut at a WAL checkpoint
   (:meth:`~repro.storage.wal.WriteAheadLog.checkpoint`);
4. run anti-entropy **catch-up sweeps** over the joining replicas until
   nothing lags (writes that landed after the snapshot cut);
5. ``admit`` — the epoch bumps, quorums grow, and stale-epoch votes from
   the old configuration are fenced out everywhere.

**Decommission** (:meth:`decommission`) — graceful leave:

1. compute the records the leaving DC masters, then ``retire`` it — the
   epoch bumps, quorums shrink, and hash mastership re-routes;
2. **evacuate** each such record by sending
   ``StartRecovery(reason="migration")`` to its new master, whose
   embedded :class:`~repro.core.master.MasterRole` runs the §3.1.1
   Phase-1 ballot takeover (the same fencing primitive the placement
   subsystem uses) and acknowledges with ``MastershipTaken``;
3. once every takeover acknowledged (or the evacuation timeout forces
   the issue — lazy per-record recovery covers stragglers), drop the
   leaving DC's replicas from the network.

Correctness never rests on the manager: epochs fence quorum votes and
ballots fence mastership; the manager only sequences the transitions and
accelerates what on-demand recovery would do lazily.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from repro.core.messages import MastershipTaken, SnapshotAck, SnapshotRequest, StartRecovery
from repro.core.options import RecordId
from repro.reconfig.bootstrap import (
    DecommissionOperation,
    JoinOperation,
    PartitionTransfer,
)
from repro.reconfig.directory import MembershipDirectory, MembershipError
from repro.metrics import CounterSet
from repro.transport.base import Future, Node, Transport

__all__ = ["ReconfigManager"]


class ReconfigManager(Node):
    """Runtime data-center join/leave orchestration for one cluster."""

    def __init__(
        self,
        transport: Transport,
        node_id: str,
        dc: str,
        cluster,
        membership: MembershipDirectory,
        counters: Optional[CounterSet] = None,
        sweep_rounds: int = 3,
        bootstrap_timeout_ms: float = 15_000.0,
        evac_timeout_ms: float = 12_000.0,
        replacement_rtt_ms: float = 25.0,
    ) -> None:
        super().__init__(transport, node_id, dc)
        self.cluster = cluster
        self.membership = membership
        self.counters = counters if counters is not None else CounterSet()
        self.sweep_rounds = sweep_rounds
        self.bootstrap_timeout_ms = bootstrap_timeout_ms
        self.evac_timeout_ms = evac_timeout_ms
        #: RTT assumed between a replacement DC and the (likely dead)
        #: template whose link profile it clones — "same region, new
        #: building".
        self.replacement_rtt_ms = replacement_rtt_ms
        self._request_seq = itertools.count(1)
        self._joins: Dict[str, JoinOperation] = {}
        self._transfers: Dict[int, Tuple[JoinOperation, PartitionTransfer]] = {}
        self._decommissions: Dict[str, DecommissionOperation] = {}
        #: JSON-friendly operation log (mirrors the chaos controller's).
        self.log: List[Dict[str, object]] = []
        self._antientropy = None

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _record(self, event: str, **details: object) -> None:
        self.log.append(
            {"t_ms": round(self.now, 3), "event": event, **details}
        )

    def _ae_agent(self):
        if self._antientropy is None:
            self._antientropy = self.cluster.add_anti_entropy_agent(
                self.dc, name=f"{self.node_id}-antientropy"
            )
        return self._antientropy

    def _all_keys_by_table(self) -> Dict[str, List[str]]:
        """Every (table, key) any active replica has committed state for."""
        tables: Dict[str, set] = {}
        for node in self.cluster.storage_nodes.values():
            for table, key, _snapshot, _ids in node.store.snapshot():
                tables.setdefault(table, set()).add(key)
        return {table: sorted(keys) for table, keys in sorted(tables.items())}

    # ------------------------------------------------------------------
    # Join
    # ------------------------------------------------------------------
    def join(
        self,
        dc: str,
        rtts: Optional[Dict[str, float]] = None,
        like: Optional[str] = None,
        donor_dc: Optional[str] = None,
    ) -> Future:
        """Bring ``dc`` into the running cluster; resolves with a report.

        ``rtts`` wires the new DC's links explicitly; without it, the DC
        clones ``like``'s link profile (default: the donor) — the
        disaster-replacement case, where the new DC stands where the dead
        one stood.  ``donor_dc`` chooses who streams the snapshot
        (default: the first active DC).
        """
        existing = self._joins.get(dc)
        if existing is not None and not existing.done:
            return existing.future
        now = self.now
        active = self.membership.active
        # Validate BEFORE mutating anything: a join of an already-active
        # DC must not get as far as healing that DC's scheduled faults.
        if self.membership.is_active(dc):
            raise MembershipError(f"DC {dc!r} is already an active member")
        if self.membership.is_joining(dc):
            raise MembershipError(f"DC {dc!r} is already joining")
        donor = donor_dc if donor_dc is not None else active[0]
        if donor not in active:
            raise MembershipError(f"donor DC {donor!r} is not an active member")
        residual = sorted(
            node_id
            for node_id, node in self.cluster.storage_nodes.items()
            if node.dc == dc
        )
        if residual:
            # A rejoin racing its own decommission: the old incarnation's
            # replicas are still registered, so building new ones would
            # collide on node ids — reject before touching anything.
            raise MembershipError(
                f"DC {dc!r} still has registered replicas {residual} "
                "(decommission not finished?)"
            )
        if not self.cluster.network.latency.knows_datacenter(dc):
            if rtts is None:
                template = like if like is not None else donor
                rtts = dict(self.cluster.network.latency.rtts_from(template))
                rtts[template] = self.replacement_rtt_ms
            self.cluster.network.add_datacenter(dc, rtts)
        else:
            # A rejoin under a previously used name (scale-in then
            # scale-out of the same region): the new incarnation must not
            # inherit its dead predecessor's outage or link faults.
            self.cluster.network.reset_datacenter_faults(dc)
        self.membership.begin_join(dc, now)
        try:
            node_ids = self.cluster.add_datacenter_nodes(dc)
        except Exception:
            # Never strand the directory in `joining` — a stuck entry
            # poisons replicas_for_repair() and blocks every later
            # join of the same DC for the rest of the run.  Partitions
            # built before a mid-loop failure must go too, or the
            # residual-replicas guard above blocks every retry.
            self.cluster.drop_datacenter_nodes(dc)
            self.membership.abort_join(dc, now)
            raise
        op = JoinOperation(
            dc=dc, donor_dc=donor, future=self.future(), started_at=now
        )
        self._joins[dc] = op
        for partition, target in enumerate(node_ids):
            transfer = PartitionTransfer(
                partition=partition,
                target=target,
                donor=self.cluster.placement.storage_node_id(donor, partition),
                request_id=next(self._request_seq),
            )
            op.transfers.append(transfer)
            self._transfers[transfer.request_id] = (op, transfer)
            self._request_snapshot(transfer)
        self._record("join-started", dc=dc, donor=donor, partitions=len(node_ids))
        self.counters.increment("reconfig.joins_started")
        self.set_timer(self.bootstrap_timeout_ms, self._bootstrap_check, op)
        return op.future

    def _request_snapshot(self, transfer: PartitionTransfer) -> None:
        self.send(
            transfer.donor,
            SnapshotRequest(
                request_id=transfer.request_id,
                target=transfer.target,
                reply_to=self.node_id,
            ),
        )

    def handle_snapshot_ack(self, message: SnapshotAck, src_id: str) -> None:
        entry = self._transfers.get(message.request_id)
        if entry is None:
            return  # late ack from a donor we already rotated away from
        op, transfer = entry
        if op.done or transfer.acked:
            return
        transfer.acked = True
        transfer.records = message.records_adopted
        transfer.wal_cut = message.wal_cut
        self.counters.increment("reconfig.snapshot_acks")
        if op.bootstrapped:
            self._record(
                "snapshot-complete",
                dc=op.dc,
                records=op.records_streamed,
            )
            self._start_sweep_round(op, 0)

    def _bootstrap_check(self, op: JoinOperation) -> None:
        """Re-drive unacked partition streams from a rotated donor."""
        if op.done or op.bootstrapped:
            return
        op.retries += 1
        candidates = [d for d in self.membership.active if d != op.dc]
        if op.retries > 2 * len(candidates) + 2:
            self._abort_join(op, reason="bootstrap-unreachable")
            return
        base = candidates.index(op.donor_dc) if op.donor_dc in candidates else 0
        for transfer in op.transfers:
            if transfer.acked:
                continue
            donor = candidates[(base + op.retries) % len(candidates)]
            self._transfers.pop(transfer.request_id, None)
            transfer.donor = self.cluster.placement.storage_node_id(
                donor, transfer.partition
            )
            transfer.request_id = next(self._request_seq)
            self._transfers[transfer.request_id] = (op, transfer)
            self._request_snapshot(transfer)
        self.counters.increment("reconfig.bootstrap_retries")
        self.set_timer(self.bootstrap_timeout_ms, self._bootstrap_check, op)

    def _abort_join(self, op: JoinOperation, reason: str) -> None:
        if op.done:
            return
        op.done = True
        for transfer in op.transfers:
            self._transfers.pop(transfer.request_id, None)
        self.membership.abort_join(op.dc, self.now)
        dropped = self.cluster.drop_datacenter_nodes(op.dc)
        self._record("join-aborted", dc=op.dc, reason=reason, dropped=len(dropped))
        self.counters.increment("reconfig.joins_aborted")
        report = op.report(ok=False, epoch=self.membership.epoch, now=self.now)
        report["aborted"] = reason
        op.future.try_resolve(report)

    # -- catch-up sweeps -------------------------------------------------
    def _start_sweep_round(self, op: JoinOperation, round_index: int) -> None:
        if op.done:
            return
        if not op.key_cache:
            op.key_cache = self._all_keys_by_table()
        tables = op.key_cache
        if not tables:
            self._admit(op, caught_up=True)
            return
        self._sweep_tables(
            op, round_index, list(tables.items()), lag=0, unreachable=set()
        )

    def _sweep_tables(
        self,
        op: JoinOperation,
        round_index: int,
        remaining: List[Tuple[str, List[str]]],
        lag: int,
        unreachable: set,
    ) -> None:
        if op.done:
            return
        if not remaining:
            joiner_nodes = {
                transfer.target for transfer in op.transfers
            }
            joiner_dark = bool(unreachable & joiner_nodes)
            op.sweep_reports.append(
                {
                    "round": round_index,
                    "records_with_lag": lag,
                    "unreachable_nodes": sorted(unreachable),
                }
            )
            if lag == 0 and not joiner_dark:
                self._admit(op, caught_up=not unreachable)
            elif round_index + 1 < self.sweep_rounds:
                self._start_sweep_round(op, round_index + 1)
            elif joiner_dark:
                # The joiner itself stayed unreachable through every
                # round: admitting a dark replica into quorums would
                # silently shrink availability headroom.  Abort, like the
                # bootstrap phase does.  (Some OTHER replica being dark —
                # e.g. an outage elsewhere — does not block admission.)
                self._abort_join(op, reason="catchup-unreachable")
            else:
                # Reachable but still trailing live writes — a lagging
                # replica is safe (Paxos tolerates it; repair converges
                # it), so admit, but say so loudly in the report.
                self.counters.increment("reconfig.admitted_lagging")
                self._admit(op, caught_up=False)
            return
        table, keys = remaining[0]

        def on_swept(future) -> None:
            report = future.result()
            self._sweep_tables(
                op,
                round_index,
                remaining[1:],
                lag + report.records_with_lag,
                unreachable | report.unreachable_nodes,
            )

        self._ae_agent().sweep(table, keys).add_done_callback(on_swept)
        self.counters.increment("reconfig.catchup_sweeps")

    def _admit(self, op: JoinOperation, caught_up: bool) -> None:
        if op.done:
            return
        op.done = True
        epoch = self.membership.admit(op.dc, self.now)
        report = op.report(ok=True, epoch=epoch, now=self.now)
        report["caught_up"] = caught_up
        self._record("admitted", **report)
        self.counters.increment("reconfig.joins_completed")
        op.future.try_resolve(report)

    # ------------------------------------------------------------------
    # Decommission
    # ------------------------------------------------------------------
    def decommission(self, dc: str) -> Future:
        """Gracefully remove ``dc``; resolves with a report.

        Works for a healthy DC (planned scale-in) and for a dark one
        (disaster replacement): evacuation never needs the leaving DC —
        the Phase-1 takeovers run entirely among the survivors, whose
        shrunken quorums no longer require it.
        """
        existing = self._decommissions.get(dc)
        if existing is not None and not existing.done:
            return existing.future
        now = self.now
        placement = self.cluster.placement
        evacuees = [
            RecordId(table, key)
            for table, keys in self._all_keys_by_table().items()
            for key in keys
            if placement.master_dc(RecordId(table, key)) == dc
        ]
        epoch = self.membership.retire(dc, now)
        op = DecommissionOperation(
            dc=dc,
            epoch=epoch,
            future=self.future(),
            started_at=now,
            pending=set(evacuees),
            evacuated_total=len(evacuees),
        )
        self._decommissions[dc] = op
        self._record(
            "decommission-started", dc=dc, epoch=epoch, evacuees=len(evacuees)
        )
        self.counters.increment("reconfig.decommissions_started")
        for record in evacuees:
            self._evacuate(record, attempt=0)
        if not op.pending:
            self._finish_decommission(op)
        else:
            self.set_timer(self.evac_timeout_ms / 2.0, self._evac_redrive, op)
            self.set_timer(self.evac_timeout_ms, self._finish_decommission, op)
        return op.future

    def _evacuate(self, record: RecordId, attempt: int) -> None:
        """Ask a surviving replica to take the record's mastership over.

        Routing follows the post-retire placement; retries rotate through
        the failover candidates exactly like coordinator recovery does.
        """
        candidates = self.cluster.placement.master_candidates(record)
        target = candidates[attempt % len(candidates)]
        self.send(
            target,
            StartRecovery(record=record, reason="migration", reply_to=self.node_id),
        )

    def _evac_redrive(self, op: DecommissionOperation) -> None:
        if op.done or not op.pending:
            return
        op.redrives += 1
        self.counters.increment("reconfig.evac_redrives")
        for record in sorted(op.pending):
            self._evacuate(record, attempt=op.redrives)
        self.set_timer(self.evac_timeout_ms / 2.0, self._evac_redrive, op)

    def handle_mastership_taken(self, message: MastershipTaken, src_id: str) -> None:
        for op in self._decommissions.values():
            if not op.done and message.record in op.pending:
                op.pending.discard(message.record)
                if not op.pending:
                    self._finish_decommission(op)
                return
        # Not ours (e.g. a placement-manager takeover ack): ignore.

    def _finish_decommission(self, op: DecommissionOperation) -> None:
        """Drop the leaving DC's replicas — strictly after evacuation.

        Fires either when every takeover acknowledged or when the
        evacuation timeout expires; unacked records are covered by
        ordinary on-demand recovery (their new masters win Phase 1 the
        first time anyone escalates to them).
        """
        if op.done:
            return
        op.done = True
        dropped = self.cluster.drop_datacenter_nodes(op.dc)
        self._record(
            "decommissioned",
            dc=op.dc,
            epoch=op.epoch,
            unacked=len(op.pending),
            dropped=len(dropped),
        )
        self.counters.increment("reconfig.decommissions_completed")
        op.future.try_resolve(op.report(dropped_nodes=dropped, now=self.now))
