"""Bookkeeping for in-flight membership operations.

The reconfig manager is message-driven (like every simulated node), so a
join or decommission is a little state machine spread across handlers.
These dataclasses hold that state:

* :class:`PartitionTransfer` — one donor→joiner snapshot stream (one per
  partition of the joining data center).
* :class:`JoinOperation` — a whole join: every partition transfer, the
  catch-up sweep reports, and the future the caller awaits.
* :class:`DecommissionOperation` — a whole leave: the evacuated record
  masterships still awaiting their Phase-1 takeover acknowledgement.

The donor side streams records in fixed-size chunks
(:data:`SNAPSHOT_CHUNK_RECORDS`) so one bootstrap is many messages, each
individually subject to the network's latency and fault model — a
partition mid-stream loses chunks, the manager's timeout rotates to
another donor, and re-streamed records are adopted idempotently (the
catch-up rule ignores stale versions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.core.options import RecordId
from repro.transport.base import Future

__all__ = [
    "DecommissionOperation",
    "JoinOperation",
    "PartitionTransfer",
    "SNAPSHOT_CHUNK_RECORDS",
]

#: Records per SnapshotChunk message.  Small enough that a stream is many
#: messages (fault-realistic), large enough to stay cheap in the sim.
SNAPSHOT_CHUNK_RECORDS = 64


@dataclass
class PartitionTransfer:
    """One partition's snapshot stream from a donor to the joining node."""

    partition: int
    target: str          # joining storage node id
    donor: str           # donor storage node id (rotates on retry)
    request_id: int      # rotates with the donor on retry
    acked: bool = False
    records: int = 0
    wal_cut: int = 0


@dataclass
class JoinOperation:
    """State of one data-center join, from begin_join to admit."""

    dc: str
    donor_dc: str
    future: Future
    started_at: float
    transfers: List[PartitionTransfer] = field(default_factory=list)
    sweep_reports: List[Dict[str, object]] = field(default_factory=list)
    #: memoized table -> keys sweep scope (one full-store scan per join,
    #: not one per sweep round; keys born mid-join reach the joiner via
    #: live visibilities and ordinary repair).
    key_cache: Dict[str, List[str]] = field(default_factory=dict)
    retries: int = 0
    done: bool = False

    @property
    def bootstrapped(self) -> bool:
        return all(transfer.acked for transfer in self.transfers)

    @property
    def records_streamed(self) -> int:
        return sum(transfer.records for transfer in self.transfers)

    def report(self, ok: bool, epoch: int, now: float) -> Dict[str, object]:
        return {
            "ok": ok,
            "dc": self.dc,
            "donor_dc": self.donor_dc,
            "epoch": epoch,
            "records_streamed": self.records_streamed,
            "wal_cuts": {
                transfer.target: transfer.wal_cut for transfer in self.transfers
            },
            "sweeps": list(self.sweep_reports),
            "bootstrap_retries": self.retries,
            "duration_ms": round(now - self.started_at, 3),
        }


@dataclass
class DecommissionOperation:
    """State of one data-center leave, from retire to replica drop."""

    dc: str
    epoch: int
    future: Future
    started_at: float
    #: evacuated records still awaiting a MastershipTaken acknowledgement.
    pending: Set[RecordId] = field(default_factory=set)
    evacuated_total: int = 0
    redrives: int = 0
    done: bool = False

    def report(self, dropped_nodes: List[str], now: float) -> Dict[str, object]:
        return {
            "ok": True,
            "dc": self.dc,
            "epoch": self.epoch,
            "masterships_evacuated": self.evacuated_total - len(self.pending),
            "masterships_unacked": len(self.pending),
            "evacuation_redrives": self.redrives,
            "dropped_nodes": list(dropped_nodes),
            "duration_ms": round(now - self.started_at, 3),
        }
