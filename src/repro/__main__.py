"""``python -m repro`` — the command-line interface."""

import sys

from repro.cli import main

sys.exit(main())
