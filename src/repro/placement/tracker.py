"""Decayed per-record write-origin counters.

The signal behind adaptive placement: *where* do a record's writes come
from?  Coordinators call :meth:`AccessTracker.note` once per written
record at commit time, tagging the write with their own data center.
Weights decay exponentially (half-life ``halflife_ms``) so the tracker
follows a moving hotspot instead of averaging over history — a record
hammered from Tokyo this minute looks Tokyo-mastered even if it spent the
last hour being written from Virginia.

Decay is applied lazily (on read and on update), so an idle record costs
nothing; records whose total weight has decayed below ``prune_below`` are
dropped entirely on the next :meth:`prune` sweep.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.core.options import RecordId

__all__ = ["AccessTracker"]


class AccessTracker:
    """Exponentially decayed write-origin weights, per record per DC."""

    def __init__(self, halflife_ms: float = 10_000.0, prune_below: float = 0.05) -> None:
        if halflife_ms <= 0:
            raise ValueError("halflife_ms must be positive")
        if prune_below < 0:
            raise ValueError("prune_below must be non-negative")
        self.halflife_ms = halflife_ms
        self.prune_below = prune_below
        #: record -> dc -> decayed weight (as of the record's stamp).
        self._weights: Dict[RecordId, Dict[str, float]] = {}
        #: record -> sim time at which its weights were last decayed.
        self._stamps: Dict[RecordId, float] = {}

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def note(self, record: RecordId, dc: str, now: float) -> None:
        """Record one write to ``record`` originating in ``dc``."""
        weights = self._weights.get(record)
        if weights is None:
            self._weights[record] = {dc: 1.0}
            self._stamps[record] = now
            return
        self._decay(record, now)
        weights[dc] = weights.get(dc, 0.0) + 1.0

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def shares(self, record: RecordId, now: float) -> Tuple[Dict[str, float], float]:
        """``(normalized shares per DC, total decayed weight)``.

        Shares sum to 1.0 when the record has any weight; an unknown or
        fully decayed record returns ``({}, 0.0)``.
        """
        weights = self._weights.get(record)
        if weights is None:
            return {}, 0.0
        self._decay(record, now)
        total = sum(weights.values())
        if total <= 0.0:
            return {}, 0.0
        return {dc: weight / total for dc, weight in weights.items()}, total

    def total_weight(self, record: RecordId, now: float) -> float:
        return self.shares(record, now)[1]

    def tracked_records(self) -> List[RecordId]:
        """All records with live weight, in first-seen order (deterministic)."""
        return list(self._weights)

    def __iter__(self) -> Iterator[RecordId]:
        return iter(self.tracked_records())

    def __len__(self) -> int:
        return len(self._weights)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def prune(self, now: float) -> int:
        """Drop records whose total weight decayed below ``prune_below``."""
        stale = [
            record
            for record in self._weights
            if self.total_weight(record, now) < self.prune_below
        ]
        for record in stale:
            del self._weights[record]
            del self._stamps[record]
        return len(stale)

    def _decay(self, record: RecordId, now: float) -> None:
        stamp = self._stamps[record]
        if now <= stamp:
            return
        factor = 0.5 ** ((now - stamp) / self.halflife_ms)
        weights = self._weights[record]
        for dc in weights:
            weights[dc] *= factor
        self._stamps[record] = now
