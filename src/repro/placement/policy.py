"""When should a record's mastership move?

The policy is deliberately conservative: mastership migration costs a
classic Phase-1/Phase-2 round over the WAN and briefly queues the
record's proposals, so it should fire only when the write-origin
distribution has *clearly* shifted and stay quiet otherwise.  Three
guards provide the hysteresis that prevents ping-ponging:

* ``min_weight`` — ignore records without enough (decayed) write mass;
  a handful of stray writes must not move a master.
* ``dominance_threshold`` + ``improvement_margin`` — the candidate DC
  must both own an absolute majority-ish share of recent writes *and*
  beat the incumbent's share by a margin, so a 50/50 split between two
  regions (where moving gains nothing) never oscillates.
* ``cooldown_ms`` — a per-record floor between migrations, enforced via
  the directory's migration timestamps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["MigrationPolicy"]


@dataclass(frozen=True)
class MigrationPolicy:
    """Threshold + hysteresis rule for mastership migration.

    Attributes:
        dominance_threshold: minimum share of recent writes the candidate
            data center must hold (0.6 ⇒ 60% of decayed write weight).
        improvement_margin: how much the candidate's share must exceed
            the current master DC's share — the anti-ping-pong margin.
        min_weight: minimum total decayed weight before the record is
            considered at all (filters cold records and stray writes).
        cooldown_ms: minimum time between two migrations of the same
            record.
    """

    dominance_threshold: float = 0.6
    improvement_margin: float = 0.2
    min_weight: float = 2.0
    cooldown_ms: float = 8_000.0

    def __post_init__(self) -> None:
        if not 0.0 < self.dominance_threshold <= 1.0:
            raise ValueError("dominance_threshold must be in (0, 1]")
        if self.improvement_margin < 0:
            raise ValueError("improvement_margin must be non-negative")
        if self.min_weight <= 0:
            raise ValueError("min_weight must be positive")
        if self.cooldown_ms < 0:
            raise ValueError("cooldown_ms must be non-negative")

    def decide(
        self,
        current_dc: str,
        shares: Dict[str, float],
        total_weight: float,
        last_migration_at: Optional[float],
        now: float,
    ) -> Optional[str]:
        """The target data center, or None to leave mastership in place."""
        if total_weight < self.min_weight or not shares:
            return None
        if (
            last_migration_at is not None
            and now - last_migration_at < self.cooldown_ms
        ):
            return None
        # Deterministic dominant pick: highest share, ties broken by name.
        dominant = min(shares, key=lambda dc: (-shares[dc], dc))
        if dominant == current_dc:
            return None
        if shares[dominant] < self.dominance_threshold:
            return None
        if shares[dominant] < shares.get(current_dc, 0.0) + self.improvement_margin:
            return None
        return dominant
