"""The versioned record→master-DC map behind ``master_policy="adaptive"``.

:class:`~repro.core.topology.ReplicaMap` consults the directory instead
of its static hash when the adaptive policy is active.  Records without
an explicit assignment fall back to a caller-supplied default (the hash
placement), so an adaptive cluster starts out byte-identical to a
``hash`` cluster and diverges only as migrations land.

The directory is a *routing hint*, not the source of truth: correctness
of mastership rests on Paxos ballots (an old master's classic rounds are
fenced by the new master's Phase-1 grants), which is why
:class:`~repro.placement.manager.PlacementManager` only calls
:meth:`assign` after the takeover's classic round has completed.  Every
assignment bumps ``version`` — the simulation shares one directory
object, and the version stands in for the epoch number a distributed
deployment would gossip alongside routing updates.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.options import RecordId

__all__ = ["PlacementDirectory"]


class PlacementDirectory:
    """Mutable, versioned master placement with a static fallback."""

    def __init__(self, fallback: Callable[[RecordId], str]) -> None:
        self._fallback = fallback
        self._masters: Dict[RecordId, str] = {}
        self._migrated_at: Dict[RecordId, float] = {}
        #: bumped on every assignment; lets callers detect staleness.
        self.version = 0
        #: total assignments that changed a record's master.
        self.migrations = 0
        #: (time, record, from_dc, to_dc) — the audit trail.
        self.history: List[Tuple[float, RecordId, str, str]] = []

    def master_dc(self, record: RecordId) -> str:
        assigned = self._masters.get(record)
        return assigned if assigned is not None else self._fallback(record)

    def assign(self, record: RecordId, dc: str, now: float) -> bool:
        """Point ``record``'s mastership at ``dc``; True if it moved."""
        previous = self.master_dc(record)
        self._masters[record] = dc
        self._migrated_at[record] = now
        self.version += 1
        if dc == previous:
            return False
        self.migrations += 1
        self.history.append((now, record, previous, dc))
        return True

    def last_migration_at(self, record: RecordId) -> Optional[float]:
        return self._migrated_at.get(record)

    def assignments(self) -> Dict[RecordId, str]:
        """A snapshot of the explicit (non-fallback) assignments."""
        return dict(self._masters)

    def __len__(self) -> int:
        return len(self._masters)
