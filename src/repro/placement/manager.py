"""The placement control plane: scan, decide, migrate.

A :class:`PlacementManager` is a simulated node (like
:class:`~repro.core.recovery.RecoveryAgent`) that periodically

1. walks the :class:`~repro.placement.tracker.AccessTracker`'s live
   records,
2. asks the :class:`~repro.placement.policy.MigrationPolicy` whether any
   record's dominant write origin justifies moving its master, and
3. executes each migration by flipping the
   :class:`~repro.placement.directory.PlacementDirectory` and sending
   ``StartRecovery(reason="migration")`` to the record's replica in the
   target data center — whose embedded
   :class:`~repro.core.master.MasterRole` runs the ordinary Phase-1
   ballot takeover (§3.1.1: "the mastership can change by running
   Phase 1").

The directory flips at migration *start*, so new proposals route to the
incoming master immediately and queue behind its takeover round; stale
in-flight proposals still reach the outgoing master, which either decides
them under its not-yet-superseded ballot or — once the takeover's Phase 1
fences it — abdicates and forwards them (``MasterRole``'s deposed-master
check).  Correctness never rests on the directory: it is routing; the
ballots arbitrate.  ``MastershipTaken`` acknowledgements close the book
on an in-flight takeover (and a timeout reopens it, in case the target
data center went dark mid-migration).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.config import MDCCConfig
from repro.core.messages import MastershipTaken, StartRecovery
from repro.core.options import RecordId
from repro.placement.policy import MigrationPolicy
from repro.metrics import CounterSet
from repro.transport.base import Node, Transport

__all__ = ["PlacementManager"]


class PlacementManager(Node):
    """Periodic load-aware mastership migration over one cluster."""

    def __init__(
        self,
        transport: Transport,
        node_id: str,
        dc: str,
        placement,
        config: MDCCConfig,
        counters: Optional[CounterSet] = None,
        policy: Optional[MigrationPolicy] = None,
        scan_ms: float = 1_000.0,
        takeover_timeout_ms: float = 15_000.0,
    ) -> None:
        super().__init__(transport, node_id, dc)
        if placement.tracker is None or placement.directory is None:
            raise ValueError(
                "PlacementManager requires a ReplicaMap built with "
                'master_policy="adaptive"'
            )
        if scan_ms <= 0:
            raise ValueError("scan_ms must be positive")
        self.placement = placement
        self.config = config
        self.counters = counters if counters is not None else CounterSet()
        self.policy = policy or MigrationPolicy()
        self.scan_ms = scan_ms
        self.takeover_timeout_ms = takeover_timeout_ms
        self.tracker = placement.tracker
        self.directory = placement.directory
        #: record -> (target DC, start time) of an unacknowledged takeover.
        self._inflight: Dict[RecordId, tuple] = {}
        self._timer = None
        self._running = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin periodic scans (idempotent)."""
        if self._running:
            return
        self._running = True
        self._timer = self.set_timer(self.scan_ms, self._tick)

    def stop(self) -> None:
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # ------------------------------------------------------------------
    # The scan loop
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        if not self._running:
            return
        now = self.now
        self.counters.increment("placement.scans")
        for record, (target, started) in list(self._inflight.items()):
            # A takeover that never acknowledged (e.g. the target DC went
            # dark, or the exchange was lost) is re-driven: the directory
            # already routes to the target, so the policy would see
            # nothing to do — the manager itself must finish the job.
            if now - started > self.takeover_timeout_ms:
                self.counters.increment("placement.takeover_timeouts")
                self._migrate(record, target)
        for record in self.tracker.tracked_records():
            if record in self._inflight:
                continue
            shares, total = self.tracker.shares(record, now)
            current = self.placement.master_dc(record)
            target = self.policy.decide(
                current_dc=current,
                shares=shares,
                total_weight=total,
                last_migration_at=self.directory.last_migration_at(record),
                now=now,
            )
            if target is None:
                continue
            self._migrate(record, target)
        self.tracker.prune(now)
        self._timer = self.set_timer(self.scan_ms, self._tick)

    def _migrate(self, record: RecordId, target_dc: str) -> None:
        self._inflight[record] = (target_dc, self.now)
        self.directory.assign(record, target_dc, self.now)
        new_master = self.placement.replica_in(record, target_dc)
        self.send(
            new_master,
            StartRecovery(record=record, reason="migration", reply_to=self.node_id),
        )
        self.counters.increment("placement.migrations_started")

    # ------------------------------------------------------------------
    # Takeover acknowledgements
    # ------------------------------------------------------------------
    def handle_mastership_taken(self, message: MastershipTaken, src_id: str) -> None:
        pending = self._inflight.get(message.record)
        if pending is not None and pending[0] == message.master_dc:
            del self._inflight[message.record]
            self.counters.increment("placement.migrations")
        else:
            # Duplicate/late acknowledgement from an older takeover; it
            # must not erase tracking of a newer in-flight takeover.
            self.counters.increment("placement.migrations_stale_ack")

    @property
    def migrations(self) -> int:
        """Directory flips that moved a record's master (counted at
        migration start; the ``placement.migrations`` counter tracks
        acknowledged takeover completions)."""
        return self.directory.migrations
