"""Adaptive master placement: load-aware per-record mastership migration.

The paper's Figure 7 (§5.3.3) shows that master-routed commits (the Multi
configuration) live or die by *master locality*: "even when 80% of the
updates are local, the median Multi response time (242ms) is slower than
the median MDCC response time (231ms)".  The reproduction's
:class:`~repro.core.topology.ReplicaMap` historically fixed mastership at
cluster build time (``hash`` / ``fixed:<dc>`` / ``table``); this package
makes it *dynamic*, exploiting §2's "MDCC supports an individual master
per record" and §3.1.1's note that "the mastership can change by running
Phase 1" — the very machinery our
:class:`~repro.core.master.MasterRole` already implements and tests.

Components:

* :class:`~repro.placement.tracker.AccessTracker` — exponentially decayed
  per-record counters of write-origin data centers, fed by coordinators
  at commit time (no extra messages: the coordinator already knows its
  own data center and write-set).
* :class:`~repro.placement.policy.MigrationPolicy` — the dominance
  threshold + hysteresis rule deciding when a record's mastership should
  move to the data center issuing most of its writes.
* :class:`~repro.placement.directory.PlacementDirectory` — a versioned,
  mutable record→master-DC map that replaces the static ``master_dc``
  lookup when the cluster runs with ``master_policy="adaptive"``.
* :class:`~repro.placement.manager.PlacementManager` — the control-plane
  node that periodically scans the tracker, asks the policy, and executes
  migrations through a Phase-1 ballot takeover on the target storage
  node.  The directory only flips *after* the takeover's classic round
  completes, so routing never points at a master that does not hold the
  ballot.
"""

from repro.placement.directory import PlacementDirectory
from repro.placement.manager import PlacementManager
from repro.placement.policy import MigrationPolicy
from repro.placement.tracker import AccessTracker

__all__ = [
    "AccessTracker",
    "MigrationPolicy",
    "PlacementDirectory",
    "PlacementManager",
]
