"""Workloads of the paper's evaluation (§5).

* :mod:`repro.workloads.micro` — the §5.3 micro-benchmark: a buy
  transaction over 3 uniformly random items, each decremented by 1-3
  under a stock ≥ 0 constraint, with hot-spot and master-locality knobs.
* :mod:`repro.workloads.tpcw` — the TPC-W transactional web benchmark
  (database part of the 14 web interactions, write-heavy ordering mix).
* :mod:`repro.workloads.geoshift` — the follow-the-sun workload: the
  dominant write-origin data center rotates over simulated time
  (exercises :mod:`repro.placement`'s adaptive mastership).
* :mod:`repro.workloads.generator` — closed-loop client processes and the
  statistics they produce (latency CDFs, commit/abort counts, time series).
"""

from repro.workloads.generator import ClientPool, WorkloadStats
from repro.workloads.geoshift import GeoShiftBenchmark
from repro.workloads.micro import MicroBenchmark
from repro.workloads.tpcw import TPCWBenchmark, TPCW_MIX

__all__ = [
    "ClientPool",
    "GeoShiftBenchmark",
    "MicroBenchmark",
    "TPCWBenchmark",
    "TPCW_MIX",
    "WorkloadStats",
]
