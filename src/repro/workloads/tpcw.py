"""TPC-W: the transactional web benchmark of §5.2.

"TPC-W defines a total of 14 web interactions (WI), each of which are web
page requests that issue several database queries. ... We implemented all
the web interactions using our own SQL-like language but forego the HTML
rendering part of the benchmark to focus on the database part. ... we
forego the wait-time between requests and only use the most write-heavy
profile to stress the system."

This module implements the *database part* of all 14 web interactions
against the reproduction's client API:

========================  =====  ========================================
Web interaction           kind   database work
========================  =====  ========================================
Home                      read   customer + promotional items
New Products              read   item list scan (sampled)
Best Sellers              read   item list scan (sampled)
Product Detail            read   one item
Search Request            read   none (form render) — modeled as 1 read
Search Results            read   item sample
Shopping Cart             write  read cart, add/update lines
Customer Registration     write  insert/refresh customer
Buy Request               write  read customer+cart, stamp cart
Buy Confirm               write  decrement stock per line (constraint
                                 stock >= 0), insert order + cc_xact,
                                 clear cart  — the commutative showcase
Order Inquiry             read   customer's latest order
Order Display             read   order + lines
Admin Request             read   one item
Admin Confirm             write  update item price/related (physical)
========================  =====  ========================================

The mix is the TPC-W **ordering** profile (the write-heaviest one) as used
by the paper.  Probabilities follow the TPC-W specification's transition
targets.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from repro.db.checkers import UpdateLedger
from repro.storage.schema import Constraint, TableSchema
from repro.workloads.generator import ClientPool, WorkloadStats

__all__ = ["TPCWBenchmark", "TPCW_MIX"]

#: The TPC-W ordering-mix web interaction frequencies (percent).
TPCW_MIX: Dict[str, float] = {
    "home": 9.12,
    "new_products": 0.46,
    "best_sellers": 0.46,
    "product_detail": 12.35,
    "search_request": 14.53,
    "search_results": 13.08,
    "shopping_cart": 13.53,
    "customer_registration": 12.86,
    "buy_request": 12.73,
    "buy_confirm": 10.18,
    "order_inquiry": 0.25,
    "order_display": 0.22,
    "admin_request": 0.12,
    "admin_confirm": 0.11,
}

WRITE_INTERACTIONS = {
    "shopping_cart",
    "customer_registration",
    "buy_request",
    "buy_confirm",
    "admin_confirm",
}


class TPCWBenchmark:
    """Schema, population and web-interaction logic for TPC-W."""

    def __init__(
        self,
        num_items: int = 10_000,
        cart_items_max: int = 3,
        min_stock: int = 10,
        max_stock: int = 30,
        restock: bool = False,
        mix: Optional[Dict[str, float]] = None,
    ) -> None:
        if num_items < 1:
            raise ValueError("need at least one item")
        self.num_items = num_items
        self.num_customers = max(10, num_items // 10)
        self.cart_items_max = cart_items_max
        self.min_stock = min_stock
        self.max_stock = max_stock
        self.restock = restock
        self.mix = dict(mix or TPCW_MIX)
        total = sum(self.mix.values())
        self._cumulative: List[Tuple[float, str]] = []
        acc = 0.0
        for name, weight in sorted(self.mix.items()):
            acc += weight / total
            self._cumulative.append((acc, name))
        self.ledger = UpdateLedger()
        self._item_keys = [f"item:{i:06d}" for i in range(num_items)]
        self._customer_keys = [f"cust:{i:06d}" for i in range(self.num_customers)]

    # ------------------------------------------------------------------
    # Schema & population
    # ------------------------------------------------------------------
    @staticmethod
    def schemas() -> List[TableSchema]:
        return [
            TableSchema("item", constraints={"i_stock": Constraint(minimum=0)}),
            TableSchema("customer"),
            TableSchema("cart"),
            TableSchema("orders"),
            TableSchema("cc_xacts"),
        ]

    def populate(self, cluster) -> None:
        for schema in self.schemas():
            cluster.register_table(schema)
        rng = cluster.rng.stream("tpcw.populate")
        for index, key in enumerate(self._item_keys):
            stock = rng.randint(self.min_stock, self.max_stock)
            cluster.load_record(
                "item",
                key,
                {
                    "i_stock": stock,
                    "i_price": round(rng.uniform(1.0, 100.0), 2),
                    "i_title": f"Title {index}",
                    "i_related": rng.randrange(self.num_items),
                },
            )
            self.ledger.track("item", key, "i_stock", stock)
        for index, key in enumerate(self._customer_keys):
            cluster.load_record(
                "customer",
                key,
                {"c_name": f"Customer {index}", "c_discount": rng.randint(0, 50)},
            )

    # ------------------------------------------------------------------
    # Interaction selection
    # ------------------------------------------------------------------
    def pick_interaction(self, rng) -> str:
        roll = rng.random()
        for cutoff, name in self._cumulative:
            if roll <= cutoff:
                return name
        return self._cumulative[-1][1]

    def random_item(self, rng) -> str:
        return self._item_keys[rng.randrange(self.num_items)]

    def random_customer(self, rng) -> str:
        return self._customer_keys[rng.randrange(self.num_customers)]

    # ------------------------------------------------------------------
    # The transaction factory
    # ------------------------------------------------------------------
    def transaction(self, cluster):
        """Returns the per-client generator for :class:`ClientPool`."""

        sessions: Dict[str, _Session] = {}

        def web_interaction(client, rng) -> Generator:
            session = sessions.setdefault(client.node_id, _Session(client.node_id))
            name = self.pick_interaction(rng)
            handler = getattr(self, f"_wi_{name}")
            committed, is_write = yield from handler(cluster, client, session, rng)
            return (committed, is_write, name)

        return web_interaction

    # ------------------------------------------------------------------
    # Read-only interactions
    # ------------------------------------------------------------------
    def _wi_home(self, cluster, client, session, rng):
        tx = cluster.begin(client)
        yield tx.read("customer", self.random_customer(rng))
        for _ in range(2):
            yield tx.read("item", self.random_item(rng))
        outcome = yield tx.commit()
        return outcome.committed, False

    def _wi_new_products(self, cluster, client, session, rng):
        tx = cluster.begin(client)
        for _ in range(5):
            yield tx.read("item", self.random_item(rng))
        outcome = yield tx.commit()
        return outcome.committed, False

    def _wi_best_sellers(self, cluster, client, session, rng):
        tx = cluster.begin(client)
        for _ in range(5):
            yield tx.read("item", self.random_item(rng))
        outcome = yield tx.commit()
        return outcome.committed, False

    def _wi_product_detail(self, cluster, client, session, rng):
        tx = cluster.begin(client)
        yield tx.read("item", self.random_item(rng))
        outcome = yield tx.commit()
        return outcome.committed, False

    def _wi_search_request(self, cluster, client, session, rng):
        tx = cluster.begin(client)
        yield tx.read("item", self.random_item(rng))
        outcome = yield tx.commit()
        return outcome.committed, False

    def _wi_search_results(self, cluster, client, session, rng):
        tx = cluster.begin(client)
        for _ in range(3):
            yield tx.read("item", self.random_item(rng))
        outcome = yield tx.commit()
        return outcome.committed, False

    def _wi_order_inquiry(self, cluster, client, session, rng):
        tx = cluster.begin(client)
        yield tx.read("customer", self.random_customer(rng))
        outcome = yield tx.commit()
        return outcome.committed, False

    def _wi_order_display(self, cluster, client, session, rng):
        tx = cluster.begin(client)
        if session.last_order_key is not None:
            yield tx.read("orders", session.last_order_key)
        else:
            yield tx.read("customer", self.random_customer(rng))
        outcome = yield tx.commit()
        return outcome.committed, False

    def _wi_admin_request(self, cluster, client, session, rng):
        tx = cluster.begin(client)
        yield tx.read("item", self.random_item(rng))
        outcome = yield tx.commit()
        return outcome.committed, False

    # ------------------------------------------------------------------
    # Write interactions
    # ------------------------------------------------------------------
    def _wi_shopping_cart(self, cluster, client, session, rng):
        """Add 1-cart_items_max items to the session cart (one record)."""
        tx = cluster.begin(client)
        cart_key = session.cart_key
        reply = yield tx.read("cart", cart_key)
        lines = dict(reply.value["lines"]) if reply.exists else {}
        for _ in range(rng.randint(1, self.cart_items_max)):
            item = self.random_item(rng)
            lines[item] = lines.get(item, 0) + rng.randint(1, 2)
        # Cap the cart at the max item count (drop oldest beyond cap).
        while len(lines) > self.cart_items_max:
            lines.pop(next(iter(lines)))
        tx.write("cart", cart_key, {"lines": lines, "status": "open"})
        outcome = yield tx.commit()
        return outcome.committed, True

    def _wi_customer_registration(self, cluster, client, session, rng):
        tx = cluster.begin(client)
        key = session.next_customer_key()
        tx.insert(
            "customer", key, {"c_name": f"New {key}", "c_discount": rng.randint(0, 50)}
        )
        outcome = yield tx.commit()
        return outcome.committed, True

    def _wi_buy_request(self, cluster, client, session, rng):
        tx = cluster.begin(client)
        yield tx.read("customer", self.random_customer(rng))
        reply = yield tx.read("cart", session.cart_key)
        if not reply.exists:
            outcome = yield tx.commit()  # nothing to stamp: read-only
            return outcome.committed, False
        value = dict(reply.value)
        value["status"] = "pending"
        tx.write("cart", session.cart_key, value)
        outcome = yield tx.commit()
        return outcome.committed, True

    def _wi_buy_confirm(self, cluster, client, session, rng):
        """The product-buy: decrement stock per cart line under the
        stock >= 0 constraint, insert the order, clear the cart."""
        tx = cluster.begin(client)
        cart_reply = yield tx.read("cart", session.cart_key)
        if cart_reply.exists and cart_reply.value.get("lines"):
            lines = dict(cart_reply.value["lines"])
        else:
            # Empty cart: buy a single random item (keeps the write mix).
            lines = {self.random_item(rng): rng.randint(1, 2)}
        # Read items (needed by non-commutative protocols for the RMW).
        for item_key in lines:
            yield tx.read("item", item_key)
        if not tx.commutative:
            # Client-side sanity: obviously-unavailable stock aborts early.
            for item_key, qty in lines.items():
                observed = tx.observed_value("item", item_key)
                if observed is None or observed.get("i_stock", 0) < qty:
                    outcome = yield tx.commit()  # commit as read-only
                    return False, True
        for item_key, qty in lines.items():
            tx.decrement("item", item_key, "i_stock", qty)
        order_key = session.next_order_key()
        tx.insert(
            "orders",
            order_key,
            {"lines": dict(lines), "status": "committed"},
        )
        tx.insert("cc_xacts", order_key, {"amount": sum(lines.values())})
        if cart_reply.exists:
            tx.write("cart", session.cart_key, {"lines": {}, "status": "empty"})
        outcome = yield tx.commit()
        if outcome.committed:
            session.last_order_key = order_key
            for item_key, qty in lines.items():
                self.ledger.record_delta("item", item_key, "i_stock", -qty)
        return outcome.committed, True

    def _wi_admin_confirm(self, cluster, client, session, rng):
        tx = cluster.begin(client)
        item_key = self.random_item(rng)
        reply = yield tx.read("item", item_key)
        if not reply.exists:
            outcome = yield tx.commit()
            return outcome.committed, False
        value = dict(reply.value)
        value["i_price"] = round(rng.uniform(1.0, 100.0), 2)
        value["i_related"] = rng.randrange(self.num_items)
        tx.write("item", item_key, value)
        outcome = yield tx.commit()
        if outcome.committed:
            # The physical write resets the stock expectation to what this
            # transaction observed (it rewrote the whole record).
            self.ledger.record_write(
                "item", item_key, "i_stock", value.get("i_stock", 0)
            )
        return outcome.committed, True

    # ------------------------------------------------------------------
    # Convenience runner
    # ------------------------------------------------------------------
    def run(
        self,
        cluster,
        num_clients: int = 100,
        warmup_ms: float = 10_000.0,
        measure_ms: float = 60_000.0,
        client_dcs=None,
    ) -> Tuple[WorkloadStats, ClientPool]:
        self.populate(cluster)
        pool = ClientPool(
            cluster,
            num_clients=num_clients,
            transaction_factory=self.transaction(cluster),
            client_dcs=client_dcs,
        )
        stats = pool.run(warmup_ms=warmup_ms, measure_ms=measure_ms)
        pool.drain()
        return stats, pool

    @property
    def item_keys(self) -> List[str]:
        return list(self._item_keys)


class _Session:
    """Per-client browsing session: cart key and id counters."""

    def __init__(self, client_id: str) -> None:
        self.client_id = client_id
        self.cart_key = f"cart:{client_id}"
        self.last_order_key: Optional[str] = None
        self._order_seq = 0
        self._customer_seq = 0

    def next_order_key(self) -> str:
        self._order_seq += 1
        return f"order:{self.client_id}:{self._order_seq}"

    def next_customer_key(self) -> str:
        self._customer_seq += 1
        return f"cust:{self.client_id}:{self._customer_seq}"
