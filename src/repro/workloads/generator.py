"""Closed-loop client processes and workload statistics.

The evaluation drives every protocol with the same client model (§5.1):
clients "evenly distributed across all five data centers", each issuing
transactions back-to-back ("we forego the wait-time between requests").
:class:`ClientPool` spawns one simulated process per client; each runs the
workload's transaction generator in a closed loop until the measurement
window ends.

Statistics follow the paper's reporting: committed-write response-time
distributions (Figures 3 and 5 report only *write* transactions and only
*committed* ones for response times), commit/abort counts (Figure 6),
throughput (Figure 4), and a latency time series (Figure 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, Optional, Sequence

from repro.metrics import CounterSet, LatencyRecorder, TimeSeries

__all__ = ["ClientPool", "WorkloadStats"]


@dataclass
class WorkloadStats:
    """Everything the benchmark harness reads after a run."""

    write_latencies: LatencyRecorder = field(
        default_factory=lambda: LatencyRecorder("write-tx")
    )
    read_latencies: LatencyRecorder = field(
        default_factory=lambda: LatencyRecorder("read-tx")
    )
    abort_latencies: LatencyRecorder = field(
        default_factory=lambda: LatencyRecorder("aborted-tx")
    )
    latency_series: TimeSeries = field(default_factory=lambda: TimeSeries("latency"))
    counters: CounterSet = field(default_factory=CounterSet)
    measure_start: float = 0.0
    measure_end: float = 0.0

    def note_outcome(
        self,
        now: float,
        latency_ms: float,
        committed: bool,
        is_write: bool,
        measuring: bool,
        interaction: str = "",
    ) -> None:
        if not measuring:
            return
        kind = "write" if is_write else "read"
        if committed:
            self.counters.increment(f"{kind}_commits")
            if interaction:
                self.counters.increment(f"wi.{interaction}.commits")
            if is_write:
                self.write_latencies.add(latency_ms, timestamp=now)
                self.latency_series.add(now, latency_ms)
            else:
                self.read_latencies.add(latency_ms, timestamp=now)
        else:
            self.counters.increment(f"{kind}_aborts")
            if interaction:
                self.counters.increment(f"wi.{interaction}.aborts")
            if is_write:
                self.abort_latencies.add(latency_ms, timestamp=now)

    @property
    def commits(self) -> int:
        return self.counters.get("write_commits")

    @property
    def aborts(self) -> int:
        return self.counters.get("write_aborts")

    def throughput_tps(self) -> float:
        """Committed write transactions per (simulated) second."""
        window = (self.measure_end - self.measure_start) / 1000.0
        if window <= 0:
            raise ValueError("empty measurement window")
        return self.commits / window


class ClientPool:
    """Spawns closed-loop clients over a cluster and collects statistics.

    ``transaction_factory(client, rng)`` must return a simulation
    generator (see :class:`repro.sim.core.Process`) that runs ONE
    transaction and returns ``(committed, is_write, interaction_name)``.
    """

    def __init__(
        self,
        cluster,
        num_clients: int,
        transaction_factory: Callable,
        client_dcs: Optional[Sequence[str]] = None,
        stats: Optional[WorkloadStats] = None,
        admission: Optional[Callable] = None,
    ) -> None:
        """``admission(client, rng, now)`` — optional gate called before
        each transaction: return 0/None to proceed, or a pause in ms to
        keep the client idle (re-checked after the pause).  Pauses happen
        *outside* the latency measurement; the geoshift workload uses this
        to rotate the active client population across data centers."""
        self.cluster = cluster
        self.stats = stats or WorkloadStats()
        self._admission = admission
        datacenters = list(client_dcs or cluster.placement.datacenters)
        self.clients = [
            cluster.add_client(datacenters[i % len(datacenters)])
            for i in range(num_clients)
        ]
        self._factory = transaction_factory
        self._rngs = [
            cluster.rng.stream(f"workload.client.{i}") for i in range(num_clients)
        ]

    def run(self, warmup_ms: float, measure_ms: float) -> WorkloadStats:
        """Run the closed loop: warm-up, then the measurement window.

        The simulation is advanced to the end of the measurement window
        plus a drain period for in-flight visibilities.
        """
        sim = self.cluster.sim
        start = sim.now
        measure_start = start + warmup_ms
        measure_end = measure_start + measure_ms
        self.stats.measure_start = measure_start
        self.stats.measure_end = measure_end

        for index, client in enumerate(self.clients):
            sim.spawn(
                self._client_loop(client, self._rngs[index], measure_end),
                name=f"client-{index}",
            )
        sim.run(until=measure_end)
        return self.stats

    def drain(self, ms: float = 10_000.0) -> None:
        """Let in-flight messages (visibilities, acks) settle."""
        self.cluster.sim.run(until=self.cluster.sim.now + ms)

    def _client_loop(self, client, rng, stop_at: float) -> Generator:
        sim = self.cluster.sim
        while sim.now < stop_at:
            if self._admission is not None:
                pause = self._admission(client, rng, sim.now)
                if pause:
                    yield float(pause)
                    continue
            started = sim.now
            result = yield from self._factory(client, rng)
            committed, is_write, interaction = result
            measuring = (
                self.stats.measure_start <= started
                and sim.now <= self.stats.measure_end
            )
            self.stats.note_outcome(
                now=sim.now,
                latency_ms=sim.now - started,
                committed=committed,
                is_write=is_write,
                measuring=measuring,
                interaction=interaction,
            )
