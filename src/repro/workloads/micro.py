"""The §5.3 micro-benchmark.

"The data for the micro-benchmark is a single table of items, with
randomly chosen stock values and a constraint on the stock attribute that
it has to be at least 0.  The benchmark defines a simple buy transaction,
that chooses 3 random items uniformly, and for each item, decrements the
stock value by an amount between 1 and 3 (a commutative operation).
Unless stated otherwise, we use 100 geo-distributed clients, and a
pre-populated product table with 10,000 items sharded on 2 storage nodes
per data center."

Two knobs reproduce the sensitivity studies:

* **hot-spot size** (§5.3.2 / Figure 6): accesses go to a hot-spot of the
  given fraction of the table with probability 0.9;
* **master locality** (§5.3.3 / Figure 7): a given percentage of
  transactions picks only items whose master is in the client's own data
  center.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from repro.core.options import RecordId
from repro.db.checkers import UpdateLedger
from repro.storage.schema import Constraint, TableSchema
from repro.workloads.generator import ClientPool, WorkloadStats

__all__ = ["MicroBenchmark"]

ITEMS_TABLE = "items"


class MicroBenchmark:
    """Builder + transaction factory for the micro-benchmark."""

    def __init__(
        self,
        num_items: int = 10_000,
        items_per_tx: int = 3,
        min_delta: int = 1,
        max_delta: int = 3,
        min_stock: int = 10,
        max_stock: int = 30,
        hotspot_fraction: Optional[float] = None,
        hotspot_probability: float = 0.9,
        locality: Optional[float] = None,
        read_before_buy: bool = True,
    ) -> None:
        if num_items < items_per_tx:
            raise ValueError("need at least items_per_tx items")
        if hotspot_fraction is not None and not 0 < hotspot_fraction <= 1:
            raise ValueError("hotspot_fraction must be in (0, 1]")
        if locality is not None and not 0 <= locality <= 1:
            raise ValueError("locality must be in [0, 1]")
        self.num_items = num_items
        self.items_per_tx = items_per_tx
        self.min_delta = min_delta
        self.max_delta = max_delta
        self.min_stock = min_stock
        self.max_stock = max_stock
        self.hotspot_fraction = hotspot_fraction
        self.hotspot_probability = hotspot_probability
        self.locality = locality
        self.read_before_buy = read_before_buy
        self.ledger = UpdateLedger()
        self._keys: List[str] = [f"item:{i:06d}" for i in range(num_items)]
        self._keys_by_master_dc: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    @staticmethod
    def schema() -> TableSchema:
        return TableSchema(
            ITEMS_TABLE, constraints={"stock": Constraint(minimum=0)}
        )

    def populate(self, cluster) -> None:
        """Register the table, pre-load items, index masters for locality."""
        cluster.register_table(self.schema())
        rng = cluster.rng.stream("micro.populate")
        for key in self._keys:
            stock = rng.randint(self.min_stock, self.max_stock)
            cluster.load_record(ITEMS_TABLE, key, {"stock": stock})
            self.ledger.track(ITEMS_TABLE, key, "stock", stock)
        if self.locality is not None:
            for key in self._keys:
                dc = cluster.placement.master_dc(RecordId(ITEMS_TABLE, key))
                self._keys_by_master_dc.setdefault(dc, []).append(key)

    # ------------------------------------------------------------------
    # Key selection
    # ------------------------------------------------------------------
    def _pick_keys(self, rng, client_dc: str) -> List[str]:
        chosen: List[str] = []
        while len(chosen) < self.items_per_tx:
            key = self._pick_one(rng, client_dc)
            if key not in chosen:
                chosen.append(key)
        return chosen

    def _pick_one(self, rng, client_dc: str) -> str:
        if self.locality is not None and self._keys_by_master_dc:
            local = self._keys_by_master_dc.get(client_dc, [])
            if local and rng.random() < self.locality:
                return rng.choice(local)
            remote_pools = [
                keys
                for dc, keys in self._keys_by_master_dc.items()
                if dc != client_dc and keys
            ]
            pool = rng.choice(remote_pools) if remote_pools else local
            return rng.choice(pool)
        if self.hotspot_fraction is not None:
            hot_count = max(1, int(self.num_items * self.hotspot_fraction))
            if rng.random() < self.hotspot_probability:
                return self._keys[rng.randrange(hot_count)]
            if hot_count < self.num_items:
                return self._keys[rng.randrange(hot_count, self.num_items)]
            return self._keys[rng.randrange(self.num_items)]
        return self._keys[rng.randrange(self.num_items)]

    # ------------------------------------------------------------------
    # The buy transaction
    # ------------------------------------------------------------------
    def transaction(self, cluster):
        """Returns the transaction factory for :class:`ClientPool`."""

        def buy(client, rng) -> Generator:
            keys = self._pick_keys(rng, client.dc)
            amounts = [
                rng.randint(self.min_delta, self.max_delta) for _ in keys
            ]
            tx = cluster.begin(client)
            if self.read_before_buy or not tx.commutative:
                for key in keys:
                    yield tx.read(ITEMS_TABLE, key)
            for key, amount in zip(keys, amounts):
                tx.decrement(ITEMS_TABLE, key, "stock", amount)
            outcome = yield tx.commit()
            if outcome.committed:
                for key, amount in zip(keys, amounts):
                    self.ledger.record_delta(ITEMS_TABLE, key, "stock", -amount)
            return (outcome.committed, True, "buy")

        return buy

    # ------------------------------------------------------------------
    # Convenience runner
    # ------------------------------------------------------------------
    def run(
        self,
        cluster,
        num_clients: int = 100,
        warmup_ms: float = 10_000.0,
        measure_ms: float = 60_000.0,
        client_dcs=None,
    ) -> Tuple[WorkloadStats, ClientPool]:
        self.populate(cluster)
        pool = ClientPool(
            cluster,
            num_clients=num_clients,
            transaction_factory=self.transaction(cluster),
            client_dcs=client_dcs,
        )
        stats = pool.run(warmup_ms=warmup_ms, measure_ms=measure_ms)
        pool.drain()
        return stats, pool

    def audit(self, cluster) -> List[str]:
        """Lost-update / phantom-write audit over the whole table.

        Only meaningful for transactional protocols; quorum writes are
        expected to fail it.
        """
        return self.ledger.audit(cluster)

    @property
    def keys(self) -> List[str]:
        return list(self._keys)
