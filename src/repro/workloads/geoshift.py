"""The follow-the-sun workload: a write hotspot that orbits the planet.

The paper's evaluation fixes each client in one data center for the whole
run, which is why master locality (Figure 7) could be studied only as a
static knob.  Real multi-DC services see something the static knob cannot
express: *diurnal* load.  Users wake up region by region, so the dominant
write-origin data center rotates — Tokyo's evening peak hands off to
Europe's morning, which hands off to the US.

:class:`GeoShiftBenchmark` models that: clients live in all five EC2
regions, but only the region currently "in daylight" runs at full
intensity; the others issue a trickle of off-peak traffic.  Every
``phase_ms`` of simulated time the sun advances to the next region in
``rotation``.  All transactions draw keys from the same shared item table
(a global catalogue), so a record's *dominant write origin* rotates while
its contents stay put — exactly the scenario where static hash placement
pays a wide-area master detour forever and adaptive placement
(:mod:`repro.placement`) re-homes mastership behind the sun.

The schema, population and buy transaction are inherited unchanged from
the §5.3 micro-benchmark (:class:`~repro.workloads.micro.MicroBenchmark`
with uniform key selection), so results compare directly with Figures
5-7; only the *client activity gate* is new.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.workloads.generator import ClientPool, WorkloadStats
from repro.workloads.micro import MicroBenchmark

__all__ = ["GeoShiftBenchmark"]


class GeoShiftBenchmark(MicroBenchmark):
    """The micro-benchmark driven by a rotating client population.

    Args:
        num_items: size of the shared item table (every item is "hot" for
            the region in daylight — the hotspot is *where writes come
            from*, not which keys they touch).
        phase_ms: how long the sun stays over one region.
        rotation: the region order the sun follows (default: the
            cluster's data centers in west-to-east paper order).
        offpeak_activity: probability that an off-peak client wakes and
            issues a transaction when it checks in (night-time traffic).
        offpeak_pause_ms: how long an idle off-peak client sleeps between
            checks.  Pauses happen outside latency measurement.
    """

    def __init__(
        self,
        num_items: int = 200,
        items_per_tx: int = 3,
        min_delta: int = 1,
        max_delta: int = 3,
        min_stock: int = 500,
        max_stock: int = 1_000,
        phase_ms: float = 20_000.0,
        rotation: Optional[Sequence[str]] = None,
        offpeak_activity: float = 0.05,
        offpeak_pause_ms: float = 400.0,
        read_before_buy: bool = True,
    ) -> None:
        if phase_ms <= 0:
            raise ValueError("phase_ms must be positive")
        if not 0 <= offpeak_activity <= 1:
            raise ValueError("offpeak_activity must be in [0, 1]")
        if offpeak_pause_ms <= 0:
            raise ValueError("offpeak_pause_ms must be positive")
        super().__init__(
            num_items=num_items,
            items_per_tx=items_per_tx,
            min_delta=min_delta,
            max_delta=max_delta,
            min_stock=min_stock,
            max_stock=max_stock,
            read_before_buy=read_before_buy,
        )
        self.phase_ms = phase_ms
        self.rotation: Optional[Tuple[str, ...]] = (
            tuple(rotation) if rotation is not None else None
        )
        self.offpeak_activity = offpeak_activity
        self.offpeak_pause_ms = offpeak_pause_ms

    # ------------------------------------------------------------------
    # The sun
    # ------------------------------------------------------------------
    def active_dc(self, now: float) -> str:
        """The region in daylight at simulated time ``now``."""
        if self.rotation is None:
            raise ValueError("rotation unset; call populate() or pass one")
        return self.rotation[int(now // self.phase_ms) % len(self.rotation)]

    def phase_index(self, now: float) -> int:
        return int(now // self.phase_ms)

    def _admission(self, client, rng, now: float):
        """ClientPool gate: full speed in daylight, a trickle at night."""
        if client.dc == self.active_dc(now):
            return 0
        if rng.random() < self.offpeak_activity:
            return 0
        return self.offpeak_pause_ms

    # ------------------------------------------------------------------
    # Population / running
    # ------------------------------------------------------------------
    def populate(self, cluster) -> None:
        super().populate(cluster)
        if self.rotation is None:
            self.rotation = tuple(cluster.placement.datacenters)

    def run(
        self,
        cluster,
        num_clients: int = 25,
        warmup_ms: float = 5_000.0,
        measure_ms: float = 60_000.0,
        client_dcs=None,
    ) -> Tuple[WorkloadStats, ClientPool]:
        """Run clients evenly spread over the DCs, gated by the sun."""
        self.populate(cluster)
        pool = ClientPool(
            cluster,
            num_clients=num_clients,
            transaction_factory=self.transaction(cluster),
            client_dcs=client_dcs,
            admission=self._admission,
        )
        stats = pool.run(warmup_ms=warmup_ms, measure_ms=measure_ms)
        pool.drain()
        return stats, pool
