"""The chaos controller: interprets a :class:`FaultSchedule` over a cluster.

The controller is the bridge between declarative fault timelines and the
simulation substrate.  At :meth:`install` time it schedules one simulator
event per fault event; at fire time it drives the
:class:`~repro.sim.network.Network` fault API (outages, N-way partitions,
link policies, node crashes) or runs the two protocol-level faults that
need more than the network:

* **master crash** — resolve the master storage node of a workload record
  and fail it; re-election happens through the normal coordinator failover
  path (escalation to the next master candidate, Phase-1 takeover).
* **coordinator crash mid-commit** — run a probe transaction through a
  coordinator whose ``_finish`` is swallowed (options proposed and
  possibly learned, visibilities never sent), then dispatch two racing
  :class:`~repro.core.recovery.RecoveryAgent` instances from different
  data centers and record their verdicts.  Probe records live in a
  dedicated ``chaos_probe`` table so workload ledgers stay exact.

Every effective network transition is captured through the network's
subscriber hook into :attr:`log` — one merged, deterministic event log the
scenario result serializes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.coordinator import MDCCCoordinator
from repro.core.options import RecordId
from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.sim.core import SimulationError
from repro.sim.network import LinkPolicy
from repro.storage.schema import TableSchema

__all__ = ["ChaosController", "CHAOS_TABLE"]

#: Probe records for coordinator-crash faults live in their own table so
#: the workload's update ledger never sees out-of-band writes.
CHAOS_TABLE = "chaos_probe"

class _DanglingCoordinator(MDCCCoordinator):
    """A coordinator that dies right before sending visibilities.

    Options are proposed (and possibly learned) but no Visibility ever
    goes out — the §3.2.3 dangling-transaction scenario.  ``tx.finished``
    is set so the learn-timeout loop stops retrying, mirroring a process
    that is simply gone.
    """

    def _finish(self, tx) -> None:
        tx.finished = True


class ChaosController:
    """Drives one :class:`FaultSchedule` against one cluster.

    Args:
        cluster: the deployment under test.
        schedule: the fault timeline.
        workload_source: ``() -> (table, keys)`` resolved lazily at event
            time (workload tables are populated after the controller is
            built) — used by ``crash-master`` to pick a victim record.
    """

    def __init__(
        self,
        cluster,
        schedule: FaultSchedule,
        workload_source: Optional[Callable[[], Tuple[str, List[str]]]] = None,
    ) -> None:
        self.cluster = cluster
        self.schedule = schedule
        self._workload_source = workload_source
        #: merged event log: controller actions + network transitions.
        self.log: List[Dict[str, object]] = []
        #: one entry per recovery-agent verdict on a dangling transaction.
        self.recovery_outcomes: List[Dict[str, object]] = []
        #: probe key -> expectation record (initial/written values, verdicts).
        self.probe_expectations: Dict[str, Dict[str, object]] = {}
        self._crashed_nodes: List[str] = []
        self._probe_seq = 0
        self._installed = False
        cluster.network.subscribe(self._on_network_event)

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def install(self) -> None:
        """Schedule every fault event and pre-load probe records."""
        if self._installed:
            raise RuntimeError("ChaosController.install() called twice")
        self._installed = True
        crashes = self.schedule.count("crash-coordinator")
        if crashes and self.cluster.descriptor.supports_recovery:
            self.cluster.register_table(TableSchema(CHAOS_TABLE))
            for index in range(crashes):
                self.cluster.load_record(
                    CHAOS_TABLE, self._probe_key(index), {"value": 0}
                )
        for event in self.schedule.sorted_events():
            self.cluster.sim.schedule_at(event.at_ms, self._apply, event)

    @staticmethod
    def _probe_key(index: int) -> str:
        return f"probe:{index:03d}"

    @property
    def probe_keys(self) -> List[str]:
        return sorted(self.probe_expectations)

    # ------------------------------------------------------------------
    # Event application
    # ------------------------------------------------------------------
    def _apply(self, event: FaultEvent) -> None:
        params = event.params_dict
        handler = getattr(self, "_do_" + event.action.replace("-", "_"), None)
        if handler is None:  # pragma: no cover - schedule builder guards this
            raise ValueError(f"unknown fault action {event.action!r}")
        handler(params)

    def _record(self, action: str, **details: object) -> None:
        self.log.append(
            {"t_ms": round(self.cluster.sim.now, 3), "event": action, **details}
        )

    def _on_network_event(self, now: float, event: str, details: Dict[str, object]) -> None:
        self.log.append({"t_ms": round(now, 3), "event": event, **details})

    def _do_fail_dc(self, params: Dict[str, object]) -> None:
        self.cluster.network.fail_datacenter(params["dc"])

    def _do_recover_dc(self, params: Dict[str, object]) -> None:
        self.cluster.network.recover_datacenter(params["dc"])

    def _do_partition_pair(self, params: Dict[str, object]) -> None:
        self.cluster.network.partition(*params["pair"])

    def _do_heal_pair(self, params: Dict[str, object]) -> None:
        self.cluster.network.heal_partition(*params["pair"])

    def _do_partition_groups(self, params: Dict[str, object]) -> None:
        self.cluster.network.partition_groups(params["groups"])

    def _do_clear_groups(self, params: Dict[str, object]) -> None:
        self.cluster.network.clear_partition_groups()

    def _do_degrade_link(self, params: Dict[str, object]) -> None:
        self.cluster.network.set_link_policy(
            *params["pair"],
            LinkPolicy(
                extra_latency_ms=params.get("extra_latency_ms", 0.0),
                jitter_sigma=params.get("jitter_sigma", 0.0),
                drop_rate=params.get("drop_rate", 0.0),
            ),
        )

    def _do_restore_link(self, params: Dict[str, object]) -> None:
        self.cluster.network.clear_link_policy(*params["pair"])

    def _do_drop_rate(self, params: Dict[str, object]) -> None:
        self.cluster.network.set_drop_rate(params["rate"])
        self._record("drop-rate", rate=params["rate"])

    # ------------------------------------------------------------------
    # Membership events (elastic clusters)
    # ------------------------------------------------------------------
    def _do_decommission_dc(self, params: Dict[str, object]) -> None:
        from repro.reconfig.directory import MembershipError

        manager = self.cluster.reconfig
        if manager is None:
            self._record(
                "decommission-skipped", dc=params["dc"], reason="not-elastic"
            )
            return
        try:
            future = manager.decommission(params["dc"])
        except (MembershipError, SimulationError) as exc:
            # A mis-scripted schedule (retiring a non-member, or the last
            # DC) must not crash the scenario mid-run.
            self._record(
                "decommission-failed", dc=params["dc"], reason=str(exc)
            )
            return
        future.add_done_callback(
            lambda fut: self._record("dc-decommissioned", **fut.result())
        )

    def _do_join_dc(self, params: Dict[str, object]) -> None:
        from repro.reconfig.directory import MembershipError

        manager = self.cluster.reconfig
        if manager is None:
            self._record("join-skipped", dc=params["dc"], reason="not-elastic")
            return
        try:
            future = manager.join(
                params["dc"],
                like=params.get("like"),
                donor_dc=params.get("donor"),
            )
        except (MembershipError, SimulationError) as exc:
            # Beyond membership validation, join wires the new DC into the
            # network, which rejects bad templates (a `like` clone that
            # leaves links uncovered, a node-id collision) with
            # SimulationError — record those as join-failed too.
            self._record("join-failed", dc=params["dc"], reason=str(exc))
            return
        future.add_done_callback(self._on_join_done)

    def _on_join_done(self, future) -> None:
        report = future.result()
        # An aborted bootstrap/catch-up resolves with ok=False — log it
        # as a failure, not a join.
        event = "dc-joined" if report.get("ok") else "dc-join-failed"
        self._record(event, **report)

    # ------------------------------------------------------------------
    # Master crash
    # ------------------------------------------------------------------
    def _do_crash_master(self, params: Dict[str, object]) -> None:
        dc = params.get("dc")
        target = self._find_master_node(dc)
        if target is None:
            self._record("crash-master-skipped", dc=dc, reason="no-target")
            return
        record, node_id = target
        self._crashed_nodes.append(node_id)
        self.cluster.network.fail_node(node_id)
        self._record(
            "master-crashed",
            node_id=node_id,
            record=f"{record.table}/{record.key}",
            dc=dc,
        )

    def _find_master_node(self, dc: Optional[str]) -> Optional[Tuple[RecordId, str]]:
        if self._workload_source is None:
            return None
        table, keys = self._workload_source()
        placement = self.cluster.placement
        for key in keys:
            record = RecordId(table, key)
            if dc is None or placement.master_dc(record) == dc:
                return record, placement.master_node(record)
        return None

    def _do_restore_masters(self, params: Dict[str, object]) -> None:
        for node_id in self._crashed_nodes:
            self.cluster.network.recover_node(node_id)
        self._crashed_nodes = []

    # ------------------------------------------------------------------
    # Coordinator crash mid-commit
    # ------------------------------------------------------------------
    def _do_crash_coordinator(self, params: Dict[str, object]) -> None:
        if not self.cluster.descriptor.supports_recovery:
            self._record(
                "coordinator-crash-skipped",
                reason=f"no recovery agent for protocol {self.cluster.protocol}",
            )
            return
        index = self._probe_seq
        self._probe_seq += 1
        key = self._probe_key(index)
        txid = f"chaos-dangling-{index}"
        written = {"value": index + 1}
        self.probe_expectations[key] = {
            "txid": txid,
            "initial": {"value": 0},
            "written": written,
            "verdicts": [],
        }
        datacenters = self.cluster.placement.datacenters
        home = datacenters[index % len(datacenters)]
        coordinator = _DanglingCoordinator(
            self.cluster.transport,
            f"chaos-crash-{index}",
            home,
            placement=self.cluster.placement,
            config=self.cluster.config,
            counters=self.cluster.counters,
        )
        record = RecordId(CHAOS_TABLE, key)
        self._record("coordinator-crash", txid=txid, key=key, dc=home)

        def dangling_commit():
            tx = self.cluster.begin(coordinator)
            yield tx.read(CHAOS_TABLE, key)
            tx.write(CHAOS_TABLE, key, written)
            tx.commit(txid=txid)
            # The coordinator "crashes" here: _finish never runs, so the
            # learned options are never driven to visibility.

        self.cluster.sim.spawn(dangling_commit(), name=f"chaos-dangling-{index}")
        recover_after = params.get("recover_after_ms", 6_000.0)
        self.cluster.sim.schedule(
            recover_after, self._dispatch_recovery, index, txid, record, home
        )

    def _dispatch_recovery(
        self, index: int, txid: str, record: RecordId, home: str
    ) -> None:
        """Two recovery agents in different DCs race on the same txid."""
        datacenters = self.cluster.placement.datacenters
        agent_dcs = (
            datacenters[(datacenters.index(home) + 1) % len(datacenters)],
            datacenters[(datacenters.index(home) + 3) % len(datacenters)],
        )
        self._record("recovery-dispatched", txid=txid, agents=agent_dcs)
        for agent_dc in agent_dcs:
            agent = self.cluster.add_recovery_agent(
                agent_dc, name=f"chaos-recovery-{index}-{agent_dc}"
            )
            future = agent.recover(txid, record)
            future.add_done_callback(
                lambda fut, dc=agent_dc: self._on_recovered(txid, record, dc, fut)
            )

    def _on_recovered(self, txid: str, record: RecordId, agent_dc: str, future) -> None:
        committed = bool(future.result())
        outcome = {
            "txid": txid,
            "agent_dc": agent_dc,
            "committed": committed,
            "t_ms": round(self.cluster.sim.now, 3),
        }
        self.recovery_outcomes.append(outcome)
        self.probe_expectations[record.key]["verdicts"].append(committed)
        self._record("recovery-decided", **outcome)

    # ------------------------------------------------------------------
    # Teardown and verdicts
    # ------------------------------------------------------------------
    def heal_all(self) -> None:
        """Lift every standing fault (scheduled or leftover)."""
        self.cluster.network.heal_all()
        self._crashed_nodes = []

    def probe_problems(self) -> List[str]:
        """Dangling-transaction verdicts that violate convergence.

        Checks that (a) racing recovery agents agreed per transaction,
        (b) every dispatched recovery decided, and (c) each probe record's
        committed value matches the verdict on every replica."""
        problems: List[str] = []
        for key in self.probe_keys:
            expectation = self.probe_expectations[key]
            verdicts = expectation["verdicts"]
            if not verdicts:
                problems.append(f"{key}: no recovery verdict arrived")
                continue
            if len(set(verdicts)) > 1:
                problems.append(f"{key}: racing recovery agents disagreed")
                continue
            expected = (
                expectation["written"] if verdicts[0] else expectation["initial"]
            )
            for node_id, snapshot in self.cluster.committed_snapshots(
                CHAOS_TABLE, key
            ).items():
                actual = snapshot.value if snapshot.exists else None
                if actual != expected:
                    problems.append(
                        f"{key} @ {node_id}: expected {expected}, found {actual}"
                    )
        return problems

    def log_as_rows(self) -> List[Dict[str, object]]:
        """The merged event log, already JSON-friendly."""
        return list(self.log)
