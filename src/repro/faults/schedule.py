"""Declarative, replayable fault schedules.

A :class:`FaultSchedule` is a seed-independent *timeline of fault events*
— "at t=20s, kill us-east; at t=40s, bring it back" — that the
:class:`~repro.faults.controller.ChaosController` interprets against a
running cluster.  Schedules are plain data: they can be built fluently,
serialized to JSON, compared, and replayed bit-identically, which is what
lets CI gate on "variant X survives schedule Y" (§5.3.4 generalized from
one figure to a scenario matrix).

The five named schedules cover the failure modes a multi-data-center
protocol differentiates under:

* ``dc-outage`` — the paper's Figure 8: one full data-center outage and
  recovery.
* ``rolling-partitions`` — successive N-way splits of the fabric: a 2/3
  split, then an isolated data center, then pairwise link cuts.
* ``flaky-wan`` — no clean failure at all: added latency, jitter, random
  loss and a flapping link on the busiest routes.
* ``coordinator-crash`` — app servers die mid-commit, leaving dangling
  transactions for the recovery agents (§3.2.3) to finish.
* ``follow-the-sun-outage`` — the data center currently "in daylight"
  (and being migrated *toward* by adaptive placement) goes dark:
  placement migration racing a partition.
* ``dc-replace`` — the disaster-replacement lifecycle over an *elastic*
  cluster (:mod:`repro.reconfig`): a data center goes dark, is
  decommissioned (epoch-fenced quorum shrink + mastership evacuation),
  and a replacement joins via snapshot bootstrap and is admitted.

Event times are absolute simulated milliseconds.  :func:`named_schedule`
builds the named ones proportionally to a (start, duration) window so the
same scenario shape scales from a 10-second smoke test to a full run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "FaultEvent",
    "FaultSchedule",
    "NAMED_SCHEDULES",
    "named_schedule",
]


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault action.

    ``params`` is stored as a sorted key/value tuple so events are
    hashable and serialize deterministically.
    """

    at_ms: float
    action: str
    params: Tuple[Tuple[str, object], ...] = ()

    @property
    def params_dict(self) -> Dict[str, object]:
        return dict(self.params)

    def as_dict(self) -> Dict[str, object]:
        return {
            "at_ms": self.at_ms,
            "action": self.action,
            "params": self.params_dict,
        }


@dataclass
class FaultSchedule:
    """A named timeline of fault events plus scenario hints.

    ``workload`` and ``master_policy`` are *hints* the harness uses when
    the caller does not override them — e.g. ``follow-the-sun-outage``
    only makes sense over the geoshift workload with adaptive placement.
    ``settle_ms`` is how long the harness lets the cluster drain after the
    measurement window (and after :meth:`ChaosController.heal_all`) before
    running the invariant checkers.
    """

    name: str
    description: str = ""
    events: List[FaultEvent] = field(default_factory=list)
    workload: str = "micro"
    master_policy: Optional[str] = None
    settle_ms: float = 30_000.0
    #: fraction of measurement-window buckets that must see >= 1 commit for
    #: the scenario to count as "bounded unavailability".
    min_availability: float = 0.8

    # ------------------------------------------------------------------
    # Fluent builders (each returns self)
    # ------------------------------------------------------------------
    def _add(self, at_ms: float, action: str, **params: object) -> "FaultSchedule":
        if at_ms < 0:
            raise ValueError(f"negative event time: {at_ms}")
        self.events.append(
            FaultEvent(
                at_ms=float(at_ms),
                action=action,
                params=tuple(sorted(params.items())),
            )
        )
        return self

    def fail_dc(self, at_ms: float, dc: str) -> "FaultSchedule":
        return self._add(at_ms, "fail-dc", dc=dc)

    def recover_dc(self, at_ms: float, dc: str) -> "FaultSchedule":
        return self._add(at_ms, "recover-dc", dc=dc)

    def partition_pair(self, at_ms: float, dc_a: str, dc_b: str) -> "FaultSchedule":
        return self._add(at_ms, "partition-pair", pair=tuple(sorted((dc_a, dc_b))))

    def heal_pair(self, at_ms: float, dc_a: str, dc_b: str) -> "FaultSchedule":
        return self._add(at_ms, "heal-pair", pair=tuple(sorted((dc_a, dc_b))))

    def partition_groups(
        self, at_ms: float, groups: Sequence[Sequence[str]]
    ) -> "FaultSchedule":
        """An N-way split; DCs absent from every group form the remainder."""
        return self._add(
            at_ms,
            "partition-groups",
            groups=tuple(tuple(sorted(group)) for group in groups),
        )

    def clear_partition_groups(self, at_ms: float) -> "FaultSchedule":
        return self._add(at_ms, "clear-groups")

    def degrade_link(
        self,
        at_ms: float,
        dc_a: str,
        dc_b: str,
        extra_latency_ms: float = 0.0,
        jitter_sigma: float = 0.0,
        drop_rate: float = 0.0,
    ) -> "FaultSchedule":
        return self._add(
            at_ms,
            "degrade-link",
            pair=tuple(sorted((dc_a, dc_b))),
            extra_latency_ms=extra_latency_ms,
            jitter_sigma=jitter_sigma,
            drop_rate=drop_rate,
        )

    def restore_link(self, at_ms: float, dc_a: str, dc_b: str) -> "FaultSchedule":
        return self._add(at_ms, "restore-link", pair=tuple(sorted((dc_a, dc_b))))

    def flap_link(
        self,
        start_ms: float,
        dc_a: str,
        dc_b: str,
        period_ms: float,
        cycles: int,
    ) -> "FaultSchedule":
        """A link that goes fully dark and comes back, ``cycles`` times.

        Expands to alternating degrade(drop=1.0)/restore events — the
        schedule stays plain data, no special runtime support needed.
        """
        if period_ms <= 0:
            raise ValueError("period_ms must be positive")
        if cycles < 1:
            raise ValueError("need at least one flap cycle")
        for cycle in range(cycles):
            down = start_ms + cycle * period_ms
            self.degrade_link(down, dc_a, dc_b, drop_rate=1.0)
            self.restore_link(down + period_ms / 2.0, dc_a, dc_b)
        return self

    def set_drop_rate(self, at_ms: float, rate: float) -> "FaultSchedule":
        return self._add(at_ms, "drop-rate", rate=rate)

    def decommission_dc(self, at_ms: float, dc: str) -> "FaultSchedule":
        """Gracefully remove ``dc`` from a running *elastic* cluster:
        retire it from the membership (epoch bump, quorum shrink),
        evacuate its record masterships via Phase-1 takeovers, then drop
        its replicas.  Requires the cluster to be built elastic."""
        return self._add(at_ms, "decommission-dc", dc=dc)

    def join_dc(
        self,
        at_ms: float,
        dc: str,
        like: Optional[str] = None,
        donor: Optional[str] = None,
    ) -> "FaultSchedule":
        """Join ``dc`` to a running *elastic* cluster: wire its links
        (cloning ``like``'s RTT profile when it is a brand-new DC),
        snapshot-bootstrap its replicas from ``donor``, catch up through
        anti-entropy, then admit it to quorums (epoch bump)."""
        return self._add(at_ms, "join-dc", dc=dc, like=like, donor=donor)

    def crash_master(self, at_ms: float, dc: Optional[str] = None) -> "FaultSchedule":
        """Crash the master storage node of a workload record.

        The controller resolves the target at event time: the first
        workload key (in key order) whose master lives in ``dc`` (or the
        first key outright when ``dc`` is None).  Re-election happens
        through the normal failover path — coordinators escalate to the
        next master candidate, which wins a Phase-1 takeover."""
        return self._add(at_ms, "crash-master", dc=dc)

    def restore_masters(self, at_ms: float) -> "FaultSchedule":
        return self._add(at_ms, "restore-masters")

    def crash_coordinator(
        self, at_ms: float, recover_after_ms: float = 6_000.0
    ) -> "FaultSchedule":
        """An app server dies mid-commit, leaving a dangling transaction.

        The controller runs a probe transaction whose coordinator never
        sends visibilities, then — ``recover_after_ms`` later — dispatches
        two racing recovery agents (§3.2.3) from different data centers
        and records their verdicts."""
        return self._add(
            at_ms, "crash-coordinator", recover_after_ms=float(recover_after_ms)
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def horizon_ms(self) -> float:
        """Time of the last scheduled event (0 for an empty schedule)."""
        return max((event.at_ms for event in self.events), default=0.0)

    @property
    def needs_reconfig(self) -> bool:
        """True when the timeline contains membership events — the
        harness then builds the cluster elastic automatically."""
        return any(
            event.action in ("join-dc", "decommission-dc")
            for event in self.events
        )

    def count(self, action: str) -> int:
        return sum(1 for event in self.events if event.action == action)

    def sorted_events(self) -> List[FaultEvent]:
        return sorted(self.events, key=lambda e: (e.at_ms, e.action, e.params))

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "description": self.description,
            "workload": self.workload,
            "master_policy": self.master_policy,
            "settle_ms": self.settle_ms,
            "min_availability": self.min_availability,
            "events": [event.as_dict() for event in self.sorted_events()],
        }


# ----------------------------------------------------------------------
# Named schedules
# ----------------------------------------------------------------------
def _dc_outage(t0: float, d: float) -> FaultSchedule:
    schedule = FaultSchedule(
        "dc-outage",
        description="Figure 8's scenario: one full data-center outage and "
        "recovery (us-east, the DC closest to us-west clients).",
        min_availability=0.8,
    )
    schedule.fail_dc(t0 + 0.30 * d, "us-east")
    schedule.recover_dc(t0 + 0.65 * d, "us-east")
    return schedule


def _rolling_partitions(t0: float, d: float) -> FaultSchedule:
    schedule = FaultSchedule(
        "rolling-partitions",
        description="Successive N-way splits: a 2/3 continental split, an "
        "isolated EU, then pairwise trans-ocean link cuts.",
        min_availability=0.6,
    )
    schedule.partition_groups(
        t0 + 0.15 * d,
        [["us-west", "us-east"], ["eu-west", "ap-southeast", "ap-northeast"]],
    )
    schedule.clear_partition_groups(t0 + 0.35 * d)
    schedule.partition_groups(
        t0 + 0.40 * d,
        [["eu-west"], ["us-west", "us-east", "ap-southeast", "ap-northeast"]],
    )
    schedule.clear_partition_groups(t0 + 0.55 * d)
    schedule.partition_pair(t0 + 0.60 * d, "us-west", "eu-west")
    schedule.partition_pair(t0 + 0.60 * d, "us-east", "ap-northeast")
    schedule.heal_pair(t0 + 0.75 * d, "us-west", "eu-west")
    schedule.heal_pair(t0 + 0.75 * d, "us-east", "ap-northeast")
    return schedule


def _flaky_wan(t0: float, d: float) -> FaultSchedule:
    schedule = FaultSchedule(
        "flaky-wan",
        description="No clean failure: degraded trans-US link (latency, "
        "jitter, loss), a flapping EU link, background loss everywhere.",
        min_availability=0.8,
    )
    schedule.degrade_link(
        t0 + 0.20 * d,
        "us-west",
        "us-east",
        extra_latency_ms=40.0,
        jitter_sigma=0.3,
        drop_rate=0.10,
    )
    schedule.set_drop_rate(t0 + 0.25 * d, 0.02)
    schedule.flap_link(
        t0 + 0.30 * d, "eu-west", "us-east", period_ms=0.075 * d, cycles=4
    )
    schedule.set_drop_rate(t0 + 0.65 * d, 0.0)
    schedule.restore_link(t0 + 0.70 * d, "us-west", "us-east")
    return schedule


def _coordinator_crash(t0: float, d: float) -> FaultSchedule:
    schedule = FaultSchedule(
        "coordinator-crash",
        description="App servers die mid-commit; racing recovery agents "
        "(§3.2.3) must converge every dangling transaction to one outcome. "
        "A master crash rides along to exercise re-election.",
        min_availability=0.9,
    )
    schedule.crash_coordinator(t0 + 0.25 * d, recover_after_ms=0.10 * d)
    schedule.crash_master(t0 + 0.40 * d, dc="us-east")
    schedule.crash_coordinator(t0 + 0.50 * d, recover_after_ms=0.10 * d)
    schedule.restore_masters(t0 + 0.65 * d)
    return schedule


def _follow_the_sun_outage(t0: float, d: float) -> FaultSchedule:
    schedule = FaultSchedule(
        "follow-the-sun-outage",
        description="Geoshift workload under adaptive placement: the DC "
        "currently in daylight — the one mastership is migrating toward — "
        "goes dark mid-migration, then recovers.",
        workload="geoshift",
        master_policy="adaptive",
        min_availability=0.6,
    )
    # With the default rotation the sun sits over us-east during the second
    # phase; fail it while adaptive placement is pulling masters there.
    schedule.fail_dc(t0 + 0.35 * d, "us-east")
    schedule.recover_dc(t0 + 0.60 * d, "us-east")
    return schedule


def _dc_replace(
    t0: float,
    d: float,
    victim: str = "us-east",
    replacement: str = "us-east-2",
    donor: str = "us-west",
) -> FaultSchedule:
    if victim == donor:
        raise ValueError("dc-replace victim cannot be the snapshot donor")
    if replacement in (victim, donor):
        raise ValueError(
            "dc-replace replacement must be a brand-new data center, not "
            "the victim or the donor"
        )
    schedule = FaultSchedule(
        "dc-replace",
        description="Disaster replacement over an elastic cluster: "
        f"{victim} goes dark, is decommissioned (quorums shrink, "
        "masterships evacuate), and a replacement joins via snapshot "
        "bootstrap and is admitted (quorums grow).",
        min_availability=0.5,
    )
    schedule.fail_dc(t0 + 0.15 * d, victim)
    schedule.decommission_dc(t0 + 0.35 * d, victim)
    schedule.join_dc(t0 + 0.50 * d, replacement, like=victim, donor=donor)
    return schedule


_FACTORIES = {
    "dc-outage": _dc_outage,
    "rolling-partitions": _rolling_partitions,
    "flaky-wan": _flaky_wan,
    "coordinator-crash": _coordinator_crash,
    "follow-the-sun-outage": _follow_the_sun_outage,
    "dc-replace": _dc_replace,
}

#: The named schedules, in presentation order.
NAMED_SCHEDULES: Tuple[str, ...] = tuple(_FACTORIES)


def named_schedule(
    name: str,
    start_ms: float = 5_000.0,
    duration_ms: float = 60_000.0,
    **params: object,
) -> FaultSchedule:
    """Build a named schedule scaled to a (start, duration) window.

    ``start_ms`` is typically the warmup length; fault times land at fixed
    fractions of ``duration_ms`` so the scenario shape survives scaling.
    Extra keyword ``params`` parameterize schedules that accept them
    (``dc-replace`` takes ``victim``, ``replacement``, ``donor``).
    """
    factory = _FACTORIES.get(name)
    if factory is None:
        raise ValueError(
            f"unknown schedule {name!r}; choose from {', '.join(NAMED_SCHEDULES)}"
        )
    if duration_ms <= 0:
        raise ValueError("duration_ms must be positive")
    if params:
        import inspect

        accepted = set(inspect.signature(factory).parameters) - {"t0", "d"}
        unknown = sorted(set(params) - accepted)
        if unknown:
            raise ValueError(
                f"schedule {name!r} does not accept parameter(s) "
                f"{', '.join(unknown)}"
                + (f"; it accepts {', '.join(sorted(accepted))}" if accepted else "")
            )
    return factory(float(start_ms), float(duration_ms), **params)
