"""Chaos engineering for the reproduction: declarative fault schedules.

The paper's §5.3.4 evaluates exactly one fault (a full data-center
outage); this package generalizes it into a scenario engine.  A
:class:`~repro.faults.schedule.FaultSchedule` declares a replayable
timeline of faults; a :class:`~repro.faults.controller.ChaosController`
interprets it against a running cluster;
:func:`repro.bench.harness.run_scenario` wires both to any workload and
protocol variant and returns availability-over-time plus invariant
verdicts.  ``python -m repro chaos <schedule>`` is the CLI entry point.
"""

from repro.faults.controller import CHAOS_TABLE, ChaosController
from repro.faults.schedule import (
    NAMED_SCHEDULES,
    FaultEvent,
    FaultSchedule,
    named_schedule,
)

__all__ = [
    "CHAOS_TABLE",
    "ChaosController",
    "FaultEvent",
    "FaultSchedule",
    "NAMED_SCHEDULES",
    "named_schedule",
]
