"""Classic and fast quorum sizing and intersection predicates.

Fast ballots are only safe when quorums satisfy (§3.3.1):

(i)  any two quorums have a non-empty intersection, and
(ii) any two **fast** quorums and any one **classic** quorum have a
     non-empty three-way intersection.

For replication factor 5 the paper's setting is a classic quorum of 3 and a
fast quorum of 4 — :func:`QuorumSpec.for_replication` derives exactly that,
and the minimum fast quorum for any N.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from functools import lru_cache
from typing import FrozenSet, Iterable, Iterator, Sequence, Tuple

__all__ = ["QuorumSpec", "classic_quorum_size", "min_fast_quorum_size"]


def classic_quorum_size(n: int) -> int:
    """Smallest majority of ``n`` replicas."""
    if n < 1:
        raise ValueError("replication factor must be positive")
    return n // 2 + 1


def min_fast_quorum_size(n: int, classic_size: int) -> int:
    """Smallest fast quorum satisfying requirement (ii).

    Two fast quorums of size F miss at most ``2*(n-F)`` members of any
    classic quorum C; a three-way intersection needs
    ``2F + C - 2n >= 1``, i.e. ``F >= (2n - C + 1) / 2``.
    """
    if not 1 <= classic_size <= n:
        raise ValueError(f"classic quorum size {classic_size} out of range for n={n}")
    return math.ceil((2 * n - classic_size + 1) / 2)


@dataclass(frozen=True)
class QuorumSpec:
    """Quorum sizes for one replication group."""

    n: int
    classic_size: int
    fast_size: int

    def __post_init__(self) -> None:
        if not 1 <= self.classic_size <= self.n:
            raise ValueError("classic quorum size out of range")
        if not 1 <= self.fast_size <= self.n:
            raise ValueError("fast quorum size out of range")
        if 2 * self.classic_size <= self.n:
            raise ValueError(
                "classic quorums must intersect: need 2*classic > n "
                f"(got classic={self.classic_size}, n={self.n})"
            )
        if self.fast_size + self.classic_size <= self.n:
            raise ValueError("a fast and a classic quorum must intersect")
        if 2 * self.fast_size + self.classic_size <= 2 * self.n:
            raise ValueError(
                "two fast quorums and a classic quorum must intersect: "
                f"need 2*fast + classic > 2n (fast={self.fast_size}, "
                f"classic={self.classic_size}, n={self.n})"
            )

    @classmethod
    @lru_cache(maxsize=None)
    def for_replication(cls, n: int) -> "QuorumSpec":
        """Minimal sizes for ``n`` replicas — (3, 4) at the paper's n=5.

        Under elastic membership this is re-derived from the directory's
        current data-center count on every quorum check, so an epoch bump
        (admit/retire) resizes classic and fast quorums cluster-wide in
        one step — there is never a mixed-size quorum, because votes
        stamped with the old epoch are fenced out by their receivers.
        """
        classic = classic_quorum_size(n)
        fast = min_fast_quorum_size(n, classic)
        return cls(n=n, classic_size=classic, fast_size=fast)

    def as_dict(self) -> dict:
        """JSON-friendly sizes for results/CLI reporting."""
        return {"n": self.n, "classic": self.classic_size, "fast": self.fast_size}

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def is_classic_quorum(self, members: Iterable[object]) -> bool:
        return len(set(members)) >= self.classic_size

    def is_fast_quorum(self, members: Iterable[object]) -> bool:
        return len(set(members)) >= self.fast_size

    def fast_unreachable(self, positive: int, total_responses: int) -> bool:
        """True once a fast quorum can no longer agree on one outcome.

        ``positive`` of ``total_responses`` replicas (out of ``n``) agree so
        far.  If even with every outstanding replica agreeing the count
        cannot reach ``fast_size``, the fast round has collided.
        """
        outstanding = self.n - total_responses
        return positive + outstanding < self.fast_size

    # ------------------------------------------------------------------
    # Enumeration (used by collision recovery)
    # ------------------------------------------------------------------
    def possible_fast_quorums(
        self, acceptors: Sequence[str]
    ) -> Iterator[FrozenSet[str]]:
        """All minimal fast quorums over ``acceptors`` (size ``fast_size``).

        Collision recovery must consider every fast quorum the losing round
        *could* have completed: "all potential intersections with a fast
        quorum must be computed from the responses" (§3.3.1).
        """
        if len(acceptors) != self.n:
            raise ValueError(
                f"expected {self.n} acceptors, got {len(acceptors)}"
            )
        for combo in itertools.combinations(sorted(acceptors), self.fast_size):
            yield frozenset(combo)

    def fast_intersections_with(
        self, classic_quorum: Iterable[str], acceptors: Sequence[str]
    ) -> Iterator[Tuple[FrozenSet[str], FrozenSet[str]]]:
        """(fast_quorum, fast_quorum ∩ classic_quorum) pairs."""
        classic = frozenset(classic_quorum)
        for fast_quorum in self.possible_fast_quorums(acceptors):
            yield fast_quorum, fast_quorum & classic
