"""Paxos building blocks: ballots, quorums, cstructs, and the four variants.

MDCC composes the whole Paxos family (§3): Classic Paxos as the recovery
fallback, Multi-Paxos to reserve mastership over instance ranges, Fast
Paxos to bypass the master, and Generalized Paxos to let commutative
updates share a ballot.  This package implements each piece from scratch:

* :mod:`repro.paxos.ballot` — fast/classic ballot numbers and instance-range
  mastership metadata ``[StartInstance, EndInstance, Fast, Ballot]``.
* :mod:`repro.paxos.quorum` — classic/fast quorum sizing and the
  intersection requirements that make fast ballots safe.
* :mod:`repro.paxos.cstruct` — Generalized Paxos command structures with
  the ⊑ / ⊓ / ⊔ trace-lattice operations.
* :mod:`repro.paxos.classic` — a standalone single-decree Classic Paxos.
* :mod:`repro.paxos.multi` — mastership/lease bookkeeping for Multi-Paxos.
* :mod:`repro.paxos.fast` — Fast Paxos collision detection and the
  recovery value-selection rule (§3.3.1's intersection example).
* :mod:`repro.paxos.generalized` — ProvedSafe over cstructs (Algorithm 2).
"""

from repro.paxos.ballot import Ballot, BallotRange, INITIAL_FAST_BALLOT
from repro.paxos.cstruct import CStruct, Command
from repro.paxos.quorum import QuorumSpec

__all__ = [
    "Ballot",
    "BallotRange",
    "CStruct",
    "Command",
    "INITIAL_FAST_BALLOT",
    "QuorumSpec",
]
