"""Ballot numbers and instance-range mastership metadata.

Two details from the paper shape this module:

* Ballots are either **fast** or **classic**, and "it is important that
  classic ballot numbers are always higher ranked than fast ballot numbers
  to resolve collisions and save the correct value" (§3.3.1).  A classic
  ballot therefore outranks a fast ballot with the same round number.
* Proposal numbers "must be unique for each master ... To ensure uniqueness
  we concatenate the requester's ip-address" (§3.1.1) — we carry a proposer
  id as the final tie-breaker.
* Multi-Paxos mastership is granted over *instance ranges* with the
  metadata ``[StartInstance, EndInstance, Fast, Ballot]`` (§3.1.2, §3.3.1),
  and "the default meta-data for all instances and all records are pre-set
  to fast with [0, ∞, fast=true, ballot=0]" (§3.3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["Ballot", "BallotRange", "INITIAL_FAST_BALLOT"]


@dataclass(frozen=True, order=False, slots=True)
class Ballot:
    """A totally ordered ballot number.

    Ordering: by ``round`` first; at equal round a classic ballot outranks
    a fast one; the proposer id breaks remaining ties deterministically.
    """

    round: int
    fast: bool
    proposer: str = ""

    def sort_key(self) -> Tuple[int, int, str]:
        return (self.round, 0 if self.fast else 1, self.proposer)

    def __lt__(self, other: "Ballot") -> bool:
        return self.sort_key() < other.sort_key()

    def __le__(self, other: "Ballot") -> bool:
        return self.sort_key() <= other.sort_key()

    def __gt__(self, other: "Ballot") -> bool:
        return self.sort_key() > other.sort_key()

    def __ge__(self, other: "Ballot") -> bool:
        return self.sort_key() >= other.sort_key()

    @property
    def is_classic(self) -> bool:
        return not self.fast

    def next_classic(self, proposer: str) -> "Ballot":
        """The smallest classic ballot outranking this one for ``proposer``.

        Used when a master starts collision recovery: "a new unique ballot
        number greater than m" (Algorithm 2, line 35).
        """
        if self.fast:
            # Classic outranks fast at the same round.
            return Ballot(round=self.round, fast=False, proposer=proposer)
        return Ballot(round=self.round + 1, fast=False, proposer=proposer)

    def next_fast(self, proposer: str = "") -> "Ballot":
        """The smallest fast ballot strictly above this one."""
        return Ballot(round=self.round + 1, fast=True, proposer=proposer)

    def __repr__(self) -> str:
        kind = "F" if self.fast else "C"
        suffix = f"@{self.proposer}" if self.proposer else ""
        return f"Ballot({self.round}{kind}{suffix})"


#: The implicit ballot every fresh record starts in: any proposer may send
#: options straight to the storage nodes (fast, round 0, no owner).
INITIAL_FAST_BALLOT = Ballot(round=0, fast=True, proposer="")


@dataclass(frozen=True, slots=True)
class BallotRange:
    """Mastership metadata ``[StartInstance, EndInstance, Fast, Ballot]``.

    ``end_instance=None`` encodes ∞ — the paper's default range is
    ``[0, ∞, fast=true, ballot=0]``, which never needs to be stored
    per-record ("As the default meta-data for all records is the same, it
    does not need to be stored per record", §3.3.2).
    """

    start_instance: int
    end_instance: Optional[int]  # None = unbounded (∞)
    ballot: Ballot

    def __post_init__(self) -> None:
        if self.start_instance < 0:
            raise ValueError("start_instance must be non-negative")
        if self.end_instance is not None and self.end_instance < self.start_instance:
            raise ValueError("end_instance precedes start_instance")

    @property
    def fast(self) -> bool:
        return self.ballot.fast

    def covers(self, instance: int) -> bool:
        """Whether ``instance`` falls inside this range."""
        if instance < self.start_instance:
            return False
        return self.end_instance is None or instance <= self.end_instance

    @classmethod
    def default(cls) -> "BallotRange":
        """The paper's implicit default: ``[0, ∞, fast=true, ballot=0]``."""
        return _DEFAULT_RANGE

    def __repr__(self) -> str:
        end = "∞" if self.end_instance is None else str(self.end_instance)
        return f"BallotRange([{self.start_instance},{end}] {self.ballot!r})"


#: The shared default-range instance — immutable, so every record's "no
#: explicit mastership" state can be the same object, exactly as the paper
#: stores the default metadata once rather than per record (§3.3.2).
_DEFAULT_RANGE = BallotRange(
    start_instance=0, end_instance=None, ballot=INITIAL_FAST_BALLOT
)
