"""Multi-Paxos mastership over instance ranges.

"If the master is reasonably stable, using Multi-Paxos makes it possible to
avoid Phase 1 by reserving the mastership for several instances" (§3.1.2).
The reservation is the metadata ``[StartInstance, EndInstance, Ballot]``
(extended with a fast flag in §3.3.1); "the database stores this meta-data
including the current version number as part of the record, which enables a
separate Paxos instance per record".

:class:`MastershipState` is that per-record metadata as an acceptor stores
it; :class:`MastershipTable` holds one state per record with the
default-range optimization ("As the default meta-data for all records is
the same, it does not need to be stored per record", §3.3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.paxos.ballot import Ballot, BallotRange

__all__ = ["MastershipState", "MastershipTable"]


@dataclass
class MastershipState:
    """Per-record promise state: which ranges are granted to which ballot.

    Later grants shadow earlier ones on the instances they cover.  The
    implicit base is the paper's default ``[0, ∞, fast, ballot=0]``.
    """

    ranges: List[BallotRange] = field(default_factory=list)

    def grant(self, new_range: BallotRange) -> bool:
        """Try to promise ``new_range``; True if granted.

        A grant succeeds when no instance it covers is already promised to
        a *strictly higher* ballot — the acceptor applies "the same
        semantics for each individual instance as defined in Phase1b, but
        ... in a single message" (§3.1.2).  An equal-ballot grant is the
        same master re-scoping its own lease and is accepted idempotently.

        An accepted grant *supersedes* the instances it covers: overlapping
        equal-or-lower-ballot ranges are truncated to the instances before
        the new range.  This is what makes §3.3.2's γ horizon work — the
        recovery's open-ended Phase 1 promise ``[v, ∞, classic]`` is cut
        down by the post-recovery grant ``[v, v+γ-1, classic]``, so
        instances past the horizon revert to the default fast ballot
        ("after γ transactions, fast instances are automatically tried
        again").  Instances beyond the current version hold no accepted
        values yet (a new instance starts only after the previous one is
        decided), so re-scoping them never un-promises an accepted value.
        """
        overlapping = self._overlapping(new_range)
        for existing in overlapping:
            if existing.ballot > new_range.ballot:
                return False
        survivors = []
        for granted in self.ranges:
            if granted not in overlapping:
                survivors.append(granted)
                continue
            if granted.start_instance < new_range.start_instance:
                # Keep the head the new grant does not cover.
                survivors.append(
                    BallotRange(
                        granted.start_instance,
                        new_range.start_instance - 1,
                        granted.ballot,
                    )
                )
        survivors.append(new_range)
        self.ranges = survivors
        return True

    def effective_range(self, instance: int) -> BallotRange:
        """The highest-ballot range covering ``instance`` (default if none)."""
        ranges = self.ranges
        if not ranges:
            # The common case: a record that never left the default fast
            # ballot stores no ranges at all (§3.3.2).
            return BallotRange.default()
        best: Optional[BallotRange] = None
        for granted in ranges:
            if granted.covers(instance):
                if best is None or granted.ballot > best.ballot:
                    best = granted
        return best if best is not None else BallotRange.default()

    def effective_ballot(self, instance: int) -> Ballot:
        return self.effective_range(instance).ballot

    def is_fast(self, instance: int) -> bool:
        """Whether ``instance`` currently runs as a fast ballot."""
        return self.effective_range(instance).fast

    def _overlapping(self, new_range: BallotRange) -> List[BallotRange]:
        out = []
        for existing in self.ranges:
            if _ranges_overlap(existing, new_range):
                out.append(existing)
        return out

    def compact(self, below_instance: int) -> int:
        """Drop ranges entirely below ``below_instance`` (closed instances)."""
        before = len(self.ranges)
        self.ranges = [
            granted
            for granted in self.ranges
            if granted.end_instance is None or granted.end_instance >= below_instance
        ]
        return before - len(self.ranges)


def _ranges_overlap(a: BallotRange, b: BallotRange) -> bool:
    a_end = float("inf") if a.end_instance is None else a.end_instance
    b_end = float("inf") if b.end_instance is None else b.end_instance
    return a.start_instance <= b_end and b.start_instance <= a_end


class MastershipTable:
    """Mastership states for many records, storing only non-default ones."""

    def __init__(self) -> None:
        self._states: Dict[Tuple[str, str], MastershipState] = {}

    def state(self, table: str, key: str) -> MastershipState:
        record_id = (table, key)
        if record_id not in self._states:
            self._states[record_id] = MastershipState()
        return self._states[record_id]

    def peek(self, table: str, key: str) -> Optional[MastershipState]:
        """The state if explicitly created (i.e. diverged from default)."""
        return self._states.get((table, key))

    def is_fast(self, table: str, key: str, instance: int) -> bool:
        state = self.peek(table, key)
        if state is None:
            return True  # implicit default: [0, ∞, fast=true, ballot=0]
        return state.is_fast(instance)

    def __len__(self) -> int:
        return len(self._states)
