"""Generalized Paxos: the ProvedSafe computation over cstructs.

Algorithm 2 (lines 49–57) of the paper:

    49: procedure ProvedSafe(Q, m)
    50:   k ≡ max{i | (i < m) ∧ (∃a ∈ Q : vala[i] ≠ none)}
    51:   R ≡ {R ∈ Quorum(k) | ∀a ∈ Q ∩ R : vala[k] ≠ none}
    52:   γ(R) ≡ ⊓{vala[k] | a ∈ Q ∩ R}, for all R ∈ R
    53:   Γ ≡ {γ(R) | R ∈ R}
    54:   if R = ∅ then
    55:     return {vala[k] | (a ∈ Q) ∧ (vala[k] ≠ none)}
    56:   else
    57:     return {⊔Γ}

The leader calls this after Phase 1 of a recovery ballot: the returned
cstruct is guaranteed to extend anything a fast quorum may have already
chosen, so proposing it (plus new options) can never lose a learned value.

When line 55 applies (no quorum could have chosen anything), any reported
cstruct is safe; we deterministically merge what was reported so that
in-flight options survive recovery whenever possible.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.paxos.ballot import Ballot
from repro.paxos.cstruct import CStruct
from repro.paxos.quorum import QuorumSpec

__all__ = ["CStructReport", "proved_safe", "deterministic_merge"]


@dataclass(frozen=True)
class CStructReport:
    """One acceptor's Phase1b content for a cstruct instance."""

    acceptor: str
    ballot: Optional[Ballot]   # ballot of the accepted cstruct (None = none)
    value: Optional[CStruct]   # the accepted cstruct at that ballot


def proved_safe(
    reports: Sequence[CStructReport],
    spec: QuorumSpec,
    all_acceptors: Sequence[str],
) -> CStruct:
    """The safe cstruct a recovery leader must start from.

    Args:
        reports: Phase1b contents from the responding classic quorum Q.
        spec: quorum sizes.
        all_acceptors: full acceptor group (to enumerate Quorum(k)).
    """
    if len(reports) < spec.classic_size:
        raise ValueError(
            f"ProvedSafe needs a classic quorum of {spec.classic_size}, "
            f"got {len(reports)}"
        )
    voted = [r for r in reports if r.ballot is not None and r.value is not None]
    if not voted:
        return CStruct()

    # Line 50: the highest ballot any quorum member voted in.
    k = max(r.ballot for r in voted)
    at_k: Dict[str, CStruct] = {r.acceptor: r.value for r in voted if r.ballot == k}

    # Quorum(k): the quorums that could have chosen a value at ballot k —
    # fast quorums for a fast ballot, classic quorums otherwise.
    if k.fast:
        quorums = list(spec.possible_fast_quorums(all_acceptors))
    else:
        quorums = [
            frozenset(combo)
            for combo in itertools.combinations(
                sorted(all_acceptors), spec.classic_size
            )
        ]

    responded = {r.acceptor for r in reports}
    gammas: List[CStruct] = []
    possible = False
    for quorum in quorums:
        intersection = quorum & responded
        if not intersection:
            continue
        if not intersection <= set(at_k):
            # Some responder in the intersection did not vote at k, so this
            # quorum cannot have chosen anything at k.
            continue
        possible = True
        gammas.append(CStruct.glb([at_k[a] for a in sorted(intersection)]))

    if not possible:
        # Line 55: nothing possibly chosen — merge what was reported.
        return deterministic_merge([r.value for r in voted if r.ballot == k])

    merged = CStruct.lub(gammas)
    if merged is None:
        # The theory guarantees compatibility of the γ(R); incompatibility
        # means acceptor state was corrupted.  Fall back to a deterministic
        # merge rather than losing liveness, mirroring how a real system
        # would prefer progress + alarms over a stall.
        return deterministic_merge(gammas)
    return merged


def deterministic_merge(cstructs: Sequence[Optional[CStruct]]) -> CStruct:
    """Merge possibly incompatible cstructs into one deterministic cstruct.

    Starts from the glb (the agreed part) and appends the remaining
    commands in sorted command-id order, skipping commands whose id was
    already placed.  Used only when nothing was provably chosen, where any
    safe extension is allowed.
    """
    present = [c for c in cstructs if c is not None]
    if not present:
        return CStruct()
    if len(present) == 1:
        return present[0]
    base = CStruct.glb(present)
    placed = set(base.ids)
    extras = {}
    for cstruct in present:
        for command in cstruct.commands:
            if command.command_id not in placed and command.command_id not in extras:
                extras[command.command_id] = command
    result = base
    for command_id in sorted(extras):
        result = result.append(extras[command_id])
    return result
