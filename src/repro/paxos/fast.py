"""Fast Paxos collision detection and recovery value selection.

Fast ballots let "any app-server propose an option directly to the storage
nodes" (§3.3.1) at the price of possible *collisions*: concurrent proposals
reaching acceptors in different orders so that no fast quorum agrees.  A
collision is resolved by a classic ballot whose leader must determine which
value — if any — may already have been chosen by a fast quorum.

:func:`select_recovery_value` implements the rule exactly as the paper
states it (§3.3.1, with the worked example): after receiving Phase1b
responses from a classic quorum Q,

    "all potential intersections with a fast quorum must be computed from
    the responses.  If the intersection consists of all the members having
    the highest ballot number, and all agree with some option v, then v
    must be proposed next.  Otherwise, no option was previously agreed
    upon, so any new option can be proposed."

Safety sketch: if some value w *was* chosen by a fast quorum R_w, every
member of R_w voted w at the highest ballot k, so for any candidate value u
derived from a fast quorum R_u the three-way intersection R_u ∩ R_w ∩ Q is
non-empty and its members voted w — hence u = w.  At most one candidate can
exist when something was chosen, and it is the chosen value.  When nothing
was chosen every candidate is merely a safe conservative choice, so ties
are broken deterministically (largest supporting intersection, then value
identity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.paxos.ballot import Ballot
from repro.paxos.quorum import QuorumSpec

__all__ = ["Phase1bReport", "RecoveryChoice", "select_recovery_value"]


@dataclass(frozen=True)
class Phase1bReport:
    """One acceptor's Phase1b content for a single-value instance."""

    acceptor: str
    ballot: Optional[Ballot]  # highest ballot at which it accepted (None = never)
    value: Any                # the value accepted at that ballot


@dataclass(frozen=True)
class RecoveryChoice:
    """The outcome of recovery analysis.

    ``forced`` is the value that must be re-proposed, or ``None`` when the
    leader is free to propose anything.
    """

    forced: Optional[Any]
    is_free: bool

    @classmethod
    def free(cls) -> "RecoveryChoice":
        return cls(forced=None, is_free=True)

    @classmethod
    def must_propose(cls, value: Any) -> "RecoveryChoice":
        return cls(forced=value, is_free=False)


def select_recovery_value(
    reports: Sequence[Phase1bReport],
    spec: QuorumSpec,
    all_acceptors: Sequence[str],
) -> RecoveryChoice:
    """Apply the paper's Fast Paxos recovery rule to Phase1b responses.

    Args:
        reports: Phase1b contents from the responding classic quorum Q.
        spec: quorum sizes for the replication group.
        all_acceptors: the full acceptor group (needed to enumerate every
            potential fast quorum, including non-responders).

    Raises:
        ValueError: if fewer than a classic quorum responded.
    """
    if len(reports) < spec.classic_size:
        raise ValueError(
            f"recovery needs a classic quorum of {spec.classic_size}, "
            f"got {len(reports)} responses"
        )
    voted = [r for r in reports if r.ballot is not None]
    if not voted:
        return RecoveryChoice.free()

    highest = max(r.ballot for r in voted)
    at_highest: Dict[str, Phase1bReport] = {
        r.acceptor: r for r in voted if r.ballot == highest
    }

    # candidate value key -> (best supporting intersection size, value)
    candidates: Dict[Tuple[str, str], Tuple[int, Any]] = {}
    for fast_quorum in spec.possible_fast_quorums(all_acceptors):
        intersection = fast_quorum & set(at_highest)
        if not intersection:
            continue
        values: List[Any] = [at_highest[a].value for a in sorted(intersection)]
        keys = {_value_key(v) for v in values}
        if len(keys) != 1:
            continue
        key = _value_key(values[0])  # == the sole element of ``keys``
        size = len(intersection)
        if key not in candidates or candidates[key][0] < size:
            candidates[key] = (size, values[0])

    if not candidates:
        return RecoveryChoice.free()
    # Deterministic pick: largest supporting intersection, then value key.
    # (Multiple candidates imply nothing was actually chosen — see module
    # docstring — so any deterministic choice is safe.)
    best_key = max(candidates, key=lambda k: (candidates[k][0], k))
    return RecoveryChoice.must_propose(candidates[best_key][1])


def _value_key(value: Any) -> Tuple[str, str]:
    """A hashable identity for arbitrary proposal values."""
    return (type(value).__name__, repr(value))
