"""Command structures (cstructs) for Generalized Paxos.

Generalized Paxos "relaxes the constraint that every acceptor must agree on
the same exact sequence of values/commands.  Since some commands may
commute with each other, the acceptors only need to agree on sets of
commands which are compatible with each other" (§3.4.1).

A :class:`CStruct` is a sequence of appended commands considered *up to
reordering of commuting neighbours* — a Mazurkiewicz trace.  Commands are
unique (identified by ``command_id``; in MDCC an option's transaction id +
record key).  The module implements the lattice operations the protocol
needs, using the paper's notation:

* ``v • c`` — append (:meth:`CStruct.append`)
* ``v ⊑ w`` — prefix partial order (:meth:`CStruct.is_prefix_of`)
* ``⊓`` — greatest lower bound (:meth:`CStruct.glb`)
* ``⊔`` — least upper bound of *compatible* cstructs (:meth:`CStruct.lub`,
  returning ``None`` when incompatible — i.e. a Fast Paxos collision)

The dependence relation comes from each command's ``commutes_with``: MDCC
physical updates never commute (they conflict on the record version) while
commutative delta updates always do (§3.4).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Protocol, Sequence, Set, Tuple, runtime_checkable

__all__ = ["CStruct", "Command"]


@runtime_checkable
class Command(Protocol):
    """What a cstruct element must provide.

    ``commutes_with`` must be symmetric; ``command_id`` must be unique per
    logical command, and two command objects with equal ids must compare
    equal iff they are interchangeable (in MDCC: same update *and* same
    accept/reject flag).
    """

    @property
    def command_id(self) -> str: ...

    def commutes_with(self, other: "Command") -> bool: ...


def _enabled(commands: Sequence[Command]) -> List[Command]:
    """Commands with no earlier non-commuting command — the removable heads.

    In trace terms these are the minimal elements of the residual order; a
    cstruct is trace-equal to any of its enabled commands followed by the
    rest.
    """
    out: List[Command] = []
    for index, command in enumerate(commands):
        if all(commands[j].commutes_with(command) for j in range(index)):
            out.append(command)
    return out


class CStruct:
    """An immutable command structure.

    Instances are value objects: mutating operations return new cstructs.
    Equality (:meth:`trace_equal`) is equality *as traces*, not as raw
    sequences — ``[a, b]`` equals ``[b, a]`` when a and b commute.
    """

    __slots__ = ("_commands", "_ids")

    def __init__(self, commands: Iterable[Command] = ()) -> None:
        commands = tuple(commands)
        ids = [command.command_id for command in commands]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate command ids in cstruct: {ids}")
        self._commands = commands
        self._ids = frozenset(ids)

    @classmethod
    def _make(cls, commands: Tuple[Command, ...], ids: frozenset) -> "CStruct":
        """Internal constructor for operations that already know the id set
        is duplicate-free (append/replace) — skips re-hashing every command."""
        new = cls.__new__(cls)
        new._commands = commands
        new._ids = ids
        return new

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def commands(self) -> Tuple[Command, ...]:
        return self._commands

    @property
    def ids(self) -> frozenset:
        return self._ids

    def __len__(self) -> int:
        return len(self._commands)

    def __iter__(self):
        return iter(self._commands)

    def contains_id(self, command_id: str) -> bool:
        return command_id in self._ids

    def command(self, command_id: str) -> Optional[Command]:
        for cmd in self._commands:
            if cmd.command_id == command_id:
                return cmd
        return None

    # ------------------------------------------------------------------
    # The • operator
    # ------------------------------------------------------------------
    def append(self, command: Command) -> "CStruct":
        """``self • command`` — a new cstruct with ``command`` appended."""
        command_id = command.command_id
        if command_id in self._ids:
            raise ValueError(f"command {command_id!r} already present")
        return CStruct._make(
            self._commands + (command,), self._ids | {command_id}
        )

    def replace(self, command: Command) -> "CStruct":
        """A new cstruct with the same-id command swapped for ``command``.

        Used when an option's accept/reject flag is decided in place
        (Algorithm 3 line 101 updates ω(up, _) to ω(up, status)).
        """
        if command.command_id not in self._ids:
            raise ValueError(f"command {command.command_id!r} not present")
        replaced = tuple(
            command if cmd.command_id == command.command_id else cmd
            for cmd in self._commands
        )
        return CStruct._make(replaced, self._ids)

    # ------------------------------------------------------------------
    # Partial order ⊑
    # ------------------------------------------------------------------
    def is_prefix_of(self, other: "CStruct") -> bool:
        """``self ⊑ other``: other is reachable from self by appends.

        Consumes ``other`` in our order: each of our commands must appear
        in the residue of ``other``, be *equal* (same id, update and
        status), and be enabled there (every earlier residual command
        commutes with it).
        """
        if not self._ids <= other._ids:
            return False
        residue = list(other._commands)
        for command in self._commands:
            index = _find_enabled(residue, command)
            if index is None:
                return False
            del residue[index]
        return True

    def trace_equal(self, other: "CStruct") -> bool:
        """Equality modulo commuting reorderings."""
        return (
            self._ids == other._ids
            and self.is_prefix_of(other)
            and other.is_prefix_of(self)
        )

    # ------------------------------------------------------------------
    # ⊓ — greatest lower bound
    # ------------------------------------------------------------------
    @staticmethod
    def glb(cstructs: Sequence["CStruct"]) -> "CStruct":
        """Greatest lower bound of one or more cstructs."""
        if not cstructs:
            raise ValueError("glb of no cstructs")
        result = cstructs[0]
        for other in cstructs[1:]:
            result = _glb_pair(result, other)
        return result

    # ------------------------------------------------------------------
    # ⊔ — least upper bound (None = incompatible)
    # ------------------------------------------------------------------
    @staticmethod
    def lub(cstructs: Sequence["CStruct"]) -> Optional["CStruct"]:
        """Least upper bound, or ``None`` if the cstructs are incompatible.

        Incompatibility is exactly a Fast Paxos collision: the acceptors
        diverged on non-commuting commands (or on a command's status) and a
        classic round must arbitrate.
        """
        if not cstructs:
            raise ValueError("lub of no cstructs")
        result: Optional[CStruct] = cstructs[0]
        for other in cstructs[1:]:
            if result is None:
                return None
            result = _lub_pair(result, other)
        return result

    @staticmethod
    def compatible(cstructs: Sequence["CStruct"]) -> bool:
        """Whether a common upper bound exists."""
        return CStruct.lub(cstructs) is not None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(cmd.command_id for cmd in self._commands)
        return f"CStruct[{inner}]"


def _find_enabled(residue: List[Command], command: Command) -> Optional[int]:
    """Index of ``command`` in residue if present, equal and enabled."""
    for index, candidate in enumerate(residue):
        if candidate.command_id == command.command_id:
            if candidate != command:
                return None
            for j in range(index):
                if not residue[j].commutes_with(candidate):
                    return None
            return index
    return None


def _glb_pair(a: "CStruct", b: "CStruct") -> "CStruct":
    rem_a = list(a.commands)
    rem_b = list(b.commands)
    out: List[Command] = []
    progress = True
    while progress:
        progress = False
        enabled_b = {cmd.command_id: cmd for cmd in _enabled(rem_b)}
        for cmd in _enabled(rem_a):
            match = enabled_b.get(cmd.command_id)
            if match is not None and match == cmd:
                out.append(cmd)
                rem_a.remove(cmd)
                rem_b.remove(match)
                progress = True
                break
    return CStruct(out)


def _lub_pair(a: "CStruct", b: "CStruct") -> Optional["CStruct"]:
    base = _glb_pair(a, b)
    rem_a = _residual(a, base)
    rem_b = _residual(b, base)
    ids_a = {cmd.command_id for cmd in rem_a}
    ids_b = {cmd.command_id for cmd in rem_b}
    if ids_a & ids_b:
        # Same command with diverging history or status on both sides.
        return None
    for cmd_a in rem_a:
        for cmd_b in rem_b:
            if not cmd_a.commutes_with(cmd_b):
                return None
    return CStruct(tuple(base.commands) + tuple(rem_a) + tuple(rem_b))


def _residual(full: "CStruct", prefix: "CStruct") -> List[Command]:
    """``full`` minus the commands of ``prefix``, in full's order."""
    prefix_ids: Set[str] = set(prefix.ids)
    return [cmd for cmd in full.commands if cmd.command_id not in prefix_ids]
