"""Classic (single-decree) Paxos over the simulated network.

This is the textbook §3.1.1 algorithm, implemented standalone: a proposer
establishes mastership with Phase 1, then drives a value through Phase 2,
tolerating lost messages, duplicate delivery and competing proposers.  MDCC
itself embeds a per-record variant of this machinery (in
:mod:`repro.core`); the standalone version validates the substrate, powers
tests, and serves as the reference the paper builds on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.paxos.ballot import Ballot
from repro.paxos.quorum import QuorumSpec
from repro.storage.partition import stable_hash
from repro.sim.core import Future, Simulator
from repro.sim.network import Network
from repro.sim.node import Node

__all__ = [
    "ClassicAcceptor",
    "ClassicProposer",
    "Phase1a",
    "Phase1b",
    "Phase2a",
    "Phase2b",
]


# ----------------------------------------------------------------------
# Messages
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Phase1a:
    ballot: Ballot


@dataclass(frozen=True)
class Phase1b:
    ballot: Ballot                      # the ballot being promised
    accepted_ballot: Optional[Ballot]   # highest ballot accepted so far
    accepted_value: Any                 # value accepted at that ballot


@dataclass(frozen=True)
class Phase2a:
    ballot: Ballot
    value: Any


@dataclass(frozen=True)
class Phase2b:
    ballot: Ballot
    value: Any


@dataclass(frozen=True)
class Nack:
    """Rejection carrying the promised ballot so proposers can leapfrog."""

    promised: Ballot


# ----------------------------------------------------------------------
# Acceptor
# ----------------------------------------------------------------------
class ClassicAcceptor(Node):
    """A Paxos acceptor: one promised ballot, one accepted (ballot, value)."""

    def __init__(self, sim: Simulator, network: Network, node_id: str, dc: str) -> None:
        super().__init__(sim, network, node_id, dc)
        self.promised: Optional[Ballot] = None
        self.accepted_ballot: Optional[Ballot] = None
        self.accepted_value: Any = None

    def handle_phase1a(self, message: Phase1a, src_id: str) -> None:
        if self.promised is None or message.ballot > self.promised:
            self.promised = message.ballot
            self.send(
                src_id,
                Phase1b(
                    ballot=message.ballot,
                    accepted_ballot=self.accepted_ballot,
                    accepted_value=self.accepted_value,
                ),
            )
        else:
            self.send(src_id, Nack(promised=self.promised))

    def handle_phase2a(self, message: Phase2a, src_id: str) -> None:
        # Accept unless we promised a strictly higher ballot.
        if self.promised is None or message.ballot >= self.promised:
            self.promised = message.ballot
            self.accepted_ballot = message.ballot
            self.accepted_value = message.value
            self.send(src_id, Phase2b(ballot=message.ballot, value=message.value))
        else:
            self.send(src_id, Nack(promised=self.promised))


# ----------------------------------------------------------------------
# Proposer
# ----------------------------------------------------------------------
@dataclass
class _Attempt:
    """Book-keeping for one ballot's progress."""

    ballot: Ballot
    phase1_replies: Dict[str, Phase1b] = field(default_factory=dict)
    phase2_replies: Dict[str, Phase2b] = field(default_factory=dict)
    phase2_sent: bool = False


class ClassicProposer(Node):
    """Drives a single consensus instance to a decision.

    ``propose(value)`` returns a future resolving with the *chosen* value —
    which may be a different proposer's value if one was already accepted
    (the must-re-propose rule of Phase 2).
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: str,
        dc: str,
        acceptor_ids: Sequence[str],
        quorum: Optional[QuorumSpec] = None,
        retry_delay: float = 500.0,
    ) -> None:
        super().__init__(sim, network, node_id, dc)
        self.acceptor_ids: List[str] = list(acceptor_ids)
        self.quorum = quorum or QuorumSpec.for_replication(len(self.acceptor_ids))
        self.retry_delay = retry_delay
        self.decision: Future = sim.future()
        self._value: Any = None
        self._attempt: Optional[_Attempt] = None
        self._round = 0

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    def propose(self, value: Any) -> Future:
        """Start Phase 1 for ``value``; resolve with the chosen value."""
        self._value = value
        self._start_ballot()
        return self.decision

    # ------------------------------------------------------------------
    # Phase 1
    # ------------------------------------------------------------------
    def _start_ballot(self) -> None:
        if self.decision.done:
            return
        self._round += 1
        ballot = Ballot(round=self._round, fast=False, proposer=self.node_id)
        self._attempt = _Attempt(ballot=ballot)
        self.broadcast(self.acceptor_ids, Phase1a(ballot=ballot))
        self.set_timer(self.retry_delay + self._backoff(), self._retry, ballot)

    def _backoff(self) -> float:
        """Deterministic per-proposer stagger to break dueling livelock.

        Competing proposers that retry in lockstep can pre-empt each other
        forever; a stagger derived from the proposer id and attempt count
        de-synchronizes them without global randomness.
        """
        fingerprint = stable_hash(f"{self.node_id}:{self._round}") % 1000
        return self.retry_delay * (fingerprint / 1000.0)

    def _retry(self, ballot: Ballot) -> None:
        """Restart with a higher ballot if this one stalled."""
        if self.decision.done:
            return
        if self._attempt is not None and self._attempt.ballot == ballot:
            self._start_ballot()

    def handle_phase1b(self, message: Phase1b, src_id: str) -> None:
        attempt = self._attempt
        if attempt is None or message.ballot != attempt.ballot or attempt.phase2_sent:
            return
        attempt.phase1_replies[src_id] = message
        if len(attempt.phase1_replies) < self.quorum.classic_size:
            return
        # Mastership established: re-propose the highest accepted value if
        # any Phase1b carried one, else our own.
        carried = [
            reply
            for reply in attempt.phase1_replies.values()
            if reply.accepted_ballot is not None
        ]
        if carried:
            value = max(carried, key=lambda r: r.accepted_ballot).accepted_value
        else:
            value = self._value
        attempt.phase2_sent = True
        self.broadcast(self.acceptor_ids, Phase2a(ballot=attempt.ballot, value=value))

    # ------------------------------------------------------------------
    # Phase 2
    # ------------------------------------------------------------------
    def handle_phase2b(self, message: Phase2b, src_id: str) -> None:
        attempt = self._attempt
        if attempt is None or message.ballot != attempt.ballot:
            return
        attempt.phase2_replies[src_id] = message
        if len(attempt.phase2_replies) >= self.quorum.classic_size:
            self.decision.try_resolve(message.value)

    def handle_nack(self, message: Nack, src_id: str) -> None:
        # A competing proposer holds a higher ballot; leapfrog past it —
        # after a stagger, or dueling proposers livelock.
        if self.decision.done or self._attempt is None:
            return
        if message.promised > self._attempt.ballot:
            stalled = self._attempt.ballot
            self._round = max(self._round, message.promised.round)
            self.set_timer(self._backoff(), self._retry_if_stalled, stalled)

    def _retry_if_stalled(self, ballot: Ballot) -> None:
        if self.decision.done or self._attempt is None:
            return
        if self._attempt.ballot == ballot:
            self._start_ballot()
