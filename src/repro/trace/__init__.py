"""Deterministic distributed tracing for the MDCC reproduction.

Public surface:

* :class:`~repro.trace.tracer.Tracer` / :class:`~repro.trace.tracer.Span`
  — the seeded, wall-clock-free span model;
* :mod:`~repro.trace.runtime` — ambient installation and per-transport
  context propagation;
* :class:`~repro.trace.registry.MetricsRegistry` — per-node counters and
  latency recorders;
* :mod:`~repro.trace.explain` — the canonical JSON artifact and the
  ``repro trace --explain`` causal-timeline view.
"""

from repro.trace.explain import (
    TRACE_SCHEMA,
    build_artifact,
    render_artifact_json,
    render_explain,
)
from repro.trace.registry import MetricsRegistry, ScopedCounters
from repro.trace.tracer import NOOP, NoopTracer, Span, Tracer, derive_trace_id

__all__ = [
    "MetricsRegistry",
    "NOOP",
    "NoopTracer",
    "ScopedCounters",
    "Span",
    "TRACE_SCHEMA",
    "Tracer",
    "build_artifact",
    "derive_trace_id",
    "render_artifact_json",
    "render_explain",
]
