"""Trace artifact rendering and the `--explain` causal-timeline view.

The artifact is the canonical byte form the CI trace-smoke job compares:
sorted keys, two-space indent, trailing newline, every value derived
from simulated time or seeded ids — two runs at the same seed must
produce identical bytes regardless of ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.trace.registry import MetricsRegistry
from repro.trace.tracer import Span, Tracer

__all__ = ["build_artifact", "render_artifact_json", "render_explain"]

TRACE_SCHEMA = "trace/v1"


def build_artifact(
    tracer: Tracer,
    registry: Optional[MetricsRegistry] = None,
    result: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """The JSON-ready trace payload for one traced run."""
    spans = sorted(
        (span.as_dict() for span in tracer.spans),
        key=lambda s: (s["trace_id"], s["start_ms"], s["span_id"]),
    )
    orphans = tracer.orphan_spans()
    traces = tracer.traces()
    artifact: Dict[str, object] = {
        "schema": TRACE_SCHEMA,
        "seed": tracer.seed,
        "spans": spans,
        "summary": {
            "orphan_spans": len(orphans),
            "spans": len(spans),
            "traces": len(traces),
        },
        "node_metrics": registry.as_dict() if registry is not None else {},
    }
    if result is not None:
        artifact["result"] = result
    return artifact


def render_artifact_json(artifact: Dict[str, object]) -> str:
    """Canonical bytes: sorted keys, two-space indent, trailing newline."""
    return json.dumps(artifact, indent=2, sort_keys=True) + "\n"


def _span_line(span: Dict[str, object], t0: float, depth: int) -> List[str]:
    start = float(span["start_ms"])
    end = span["end_ms"]
    duration = "" if end is None else f" ({float(end) - start:.3f} ms)"
    outcome = span["outcome"] if span["outcome"] is not None else "unfinished"
    attrs = span["attrs"]
    attr_text = "".join(
        f" {key}={attrs[key]}" for key in sorted(attrs)
    )
    indent = "  " * depth
    lines = [
        f"{indent}+{start - t0:10.3f} ms  {span['kind']} @ {span['node']}"
        f" [{outcome}]{duration}{attr_text}"
    ]
    for event in span["events"]:
        detail = "".join(
            f" {key}={value}"
            for key, value in event.items()
            if key not in ("t_ms", "name")
        )
        lines.append(
            f"{indent}  !{float(event['t_ms']) - t0:9.3f} ms  {event['name']}{detail}"
        )
    return lines


def render_explain(tracer: Tracer, txid: str) -> str:
    """The causal timeline of one transaction, as an indented tree.

    Spans are printed depth-first under their parents; a span whose
    parent is missing (an orphan) is flagged explicitly so a broken
    stitch is visible rather than silently re-rooted.
    """
    trace_id = tracer.trace_id_for(txid)
    spans = [span.as_dict() for span in tracer.traces().get(trace_id, [])]
    if not spans:
        known = sorted(
            {span.txid for span in tracer.spans if span.txid is not None}
        )
        preview = ", ".join(known[:10]) or "(none)"
        return (
            f"no trace recorded for txid {txid!r} "
            f"(trace id {trace_id}); known txids include: {preview}"
        )
    by_id = {span["span_id"]: span for span in spans}
    children: Dict[Optional[str], List[Dict[str, object]]] = {}
    for span in spans:
        parent = span["parent_id"]
        if parent is not None and parent not in by_id:
            parent = None  # orphan: surfaced below, printed at the root
            span = dict(span, _orphan=True)
        children.setdefault(parent, []).append(span)
    for bucket in children.values():
        bucket.sort(key=lambda s: (s["start_ms"], s["span_id"]))
    t0 = min(float(span["start_ms"]) for span in spans)
    lines = [f"trace {trace_id}  txid={txid}  spans={len(spans)}"]

    def walk(span: Dict[str, object], depth: int) -> None:
        rendered = _span_line(span, t0, depth)
        if span.get("_orphan"):
            rendered[0] += "  [ORPHAN: parent missing]"
        lines.extend(rendered)
        for child in children.get(span["span_id"], []):
            walk(child, depth + 1)

    for root in children.get(None, []):
        walk(root, 1)
    return "\n".join(lines) + "\n"


def spans_for_txid(tracer: Tracer, txid: str) -> List[Span]:
    """All spans of ``txid``'s trace, in creation order."""
    trace_id = tracer.trace_id_for(txid)
    return tracer.traces().get(trace_id, [])
