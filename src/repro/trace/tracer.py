"""Deterministic tracer: seeded trace ids, simulated-time spans.

The tracer is deliberately clock-free: every span start/end time is
passed in by the instrumented call site (``self.now`` on a role), so the
same code produces simulated-time spans under :class:`SimTransport` and
wall-clock spans under :class:`AsyncioTcpTransport` without the tracer
ever sampling a clock itself.  Ids are equally deterministic:

* ``trace_id`` — a SHA-256 prefix of ``"{seed}/{txid}"``, so the same
  seeded run always names its traces identically (byte-reproducible
  artifacts, stable across ``PYTHONHASHSEED``);
* ``span_id`` — ``"{node}:{seq}"`` with a per-node sequence counter;
  span creation order is deterministic under the simulator, so span ids
  are too.

The default tracer is :data:`NOOP` (``enabled=False``): instrumented
sites guard with ``if tracer.enabled:`` and allocate nothing when
tracing is off, keeping the PR-5-optimized hot paths untouched.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple

__all__ = ["NOOP", "NoopTracer", "Span", "SpanContext", "Tracer", "derive_trace_id"]

#: (trace_id, span_id) — what rides along with every message.
SpanContext = Tuple[str, str]


def derive_trace_id(seed: object, txid: str) -> str:
    """Seeded, wall-clock-free trace id: same seed + txid -> same id."""
    digest = hashlib.sha256(f"{seed}/{txid}".encode("utf-8")).hexdigest()
    return digest[:16]


class Span:
    """One step of one transaction on one node.

    ``attrs`` hold step metadata fixed at creation (record, ballot,
    epoch); ``events`` are point-in-time attributions added while the
    span is open (collision, stale-epoch, demarcation-limit, ...).
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "kind",
        "node",
        "txid",
        "start",
        "end",
        "outcome",
        "attrs",
        "events",
    )

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        kind: str,
        node: str,
        txid: Optional[str],
        start: float,
        attrs: Dict[str, object],
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.kind = kind
        self.node = node
        self.txid = txid
        self.start = start
        self.end: Optional[float] = None
        self.outcome: Optional[str] = None
        self.attrs = attrs
        self.events: List[Dict[str, object]] = []

    @property
    def ctx(self) -> SpanContext:
        return (self.trace_id, self.span_id)

    def event(self, t: float, name: str, **attrs: object) -> None:
        """Record a point-in-time attribution on this span."""
        entry: Dict[str, object] = {"t_ms": round(t, 3), "name": name}
        entry.update(attrs)
        self.events.append(entry)

    def finish(self, t: float, outcome: str) -> None:
        """Close the span; the first outcome wins (finish is idempotent)."""
        if self.end is not None:
            return
        self.end = t
        self.outcome = outcome

    def as_dict(self) -> Dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "kind": self.kind,
            "node": self.node,
            "txid": self.txid,
            "start_ms": round(self.start, 3),
            "end_ms": None if self.end is None else round(self.end, 3),
            "outcome": self.outcome,
            "attrs": {key: self.attrs[key] for key in sorted(self.attrs)},
            "events": list(self.events),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Span {self.kind} {self.span_id} trace={self.trace_id}"
            f" outcome={self.outcome!r}>"
        )


class Tracer:
    """Collects spans for one run; shared by every node of the cluster."""

    enabled = True

    def __init__(self, seed: object = 0) -> None:
        self.seed = seed
        self.spans: List[Span] = []
        self._seq: Dict[str, int] = {}
        #: trace_id -> root span id, for ctx-less fallback parenting
        #: (timer callbacks, recovery agents that only know the txid).
        self._roots: Dict[str, str] = {}
        self._txids: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Ids
    # ------------------------------------------------------------------
    def trace_id_for(self, txid: str) -> str:
        return derive_trace_id(self.seed, txid)

    def _next_span_id(self, node: str) -> str:
        seq = self._seq.get(node, 0) + 1
        self._seq[node] = seq
        return f"{node}:{seq}"

    # ------------------------------------------------------------------
    # Span lifecycle
    # ------------------------------------------------------------------
    def start_trace(self, txid: str, node: str, t: float, **attrs: object) -> Span:
        """Open the root ``transaction`` span for ``txid``."""
        trace_id = self.trace_id_for(txid)
        span = Span(
            trace_id=trace_id,
            span_id=self._next_span_id(node),
            parent_id=None,
            kind="transaction",
            node=node,
            txid=txid,
            start=t,
            attrs=attrs,
        )
        self._roots[trace_id] = span.span_id
        self._txids[trace_id] = txid
        self.spans.append(span)
        return span

    def start_span(
        self,
        kind: str,
        node: str,
        t: float,
        parent: Optional[SpanContext] = None,
        txid: Optional[str] = None,
        **attrs: object,
    ) -> Span:
        """Open a child span.

        ``parent`` (the ambient message context) wins when present;
        otherwise the span falls back to the trace root derived from
        ``txid`` — so timer-driven work still stitches into its
        transaction instead of orphaning.
        """
        if parent is not None:
            trace_id, parent_id = parent
        elif txid is not None:
            trace_id = self.trace_id_for(txid)
            parent_id = self._roots.get(trace_id)
        else:
            raise ValueError("start_span needs a parent context or a txid")
        if txid is None:
            txid = self._txids.get(trace_id)
        span = Span(
            trace_id=trace_id,
            span_id=self._next_span_id(node),
            parent_id=parent_id,
            kind=kind,
            node=node,
            txid=txid,
            start=t,
            attrs=attrs,
        )
        self.spans.append(span)
        return span

    def root_ctx(self, txid: str) -> Optional[SpanContext]:
        """The root span context of ``txid``'s trace, if this tracer saw it."""
        trace_id = self.trace_id_for(txid)
        root = self._roots.get(trace_id)
        if root is None:
            return None
        return (trace_id, root)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def traces(self) -> Dict[str, List[Span]]:
        """Spans grouped by trace id, in creation order."""
        out: Dict[str, List[Span]] = {}
        for span in self.spans:
            out.setdefault(span.trace_id, []).append(span)
        return out

    def orphan_spans(self) -> List[Span]:
        """Spans whose ``parent_id`` names a span this tracer never saw."""
        ids_by_trace: Dict[str, set] = {}
        for span in self.spans:
            ids_by_trace.setdefault(span.trace_id, set()).add(span.span_id)
        return [
            span
            for span in self.spans
            if span.parent_id is not None
            and span.parent_id not in ids_by_trace[span.trace_id]
        ]


class NoopTracer:
    """The default: tracing off, every operation a no-op, zero allocation
    on instrumented hot paths (they guard on ``enabled`` first)."""

    enabled = False
    spans: List[Span] = []

    def trace_id_for(self, txid: str) -> str:  # pragma: no cover - guard-skipped
        return ""

    def start_trace(self, txid, node, t, **attrs):  # pragma: no cover
        return None

    def start_span(self, kind, node, t, parent=None, txid=None, **attrs):  # pragma: no cover
        return None

    def root_ctx(self, txid):  # pragma: no cover
        return None


#: process-wide singleton handed to roles when no tracer is installed.
NOOP = NoopTracer()
