"""Ambient tracing runtime: installation, context propagation, wiring.

One tracer (plus one metrics registry) is installed for the lifetime of
a traced run — covering cluster construction, the workload, chaos
recovery agents and post-run anti-entropy sweeps.  Roles pick the
tracer up at construction via :func:`current_tracer`; when nothing is
installed they get the shared :data:`~repro.trace.tracer.NOOP` singleton
and every instrumented site short-circuits on ``tracer.enabled``.

Context propagation is transport-specific but role-agnostic:

* **Simulator** — :func:`instrument_sim_transport` replaces
  ``network.send`` / ``network._deliver`` with instance-attribute
  wrappers (installed only while a tracer is active, so the PR-5 hot
  path is untouched when tracing is off).  The send wrapper snapshots
  the ambient :data:`CURRENT` span context into a side table keyed by
  ``id(message)`` (holding a strong reference so the id cannot be
  reused while in flight); the deliver wrapper restores that context
  around ``on_message``.  Broadcasts refcount the entry — one send, one
  delivery, one decrement.  Messages the network drops leak their entry
  for the run's duration; that costs memory only, never trajectory.
  The wrappers draw no randomness and post no events, so the simulated
  trajectory is byte-identical with tracing on or off.

* **TCP** — :class:`~repro.transport.tcp.AsyncioTcpTransport` reads
  :data:`CURRENT` itself and carries ``(trace_id, span_id)`` in the
  frame envelope's ``trace`` key (and through the same-process
  ``call_soon`` fast path), restoring it around dispatch on the
  receiving side.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.trace.registry import MetricsRegistry, scoped
from repro.trace.tracer import NOOP, Tracer

__all__ = [
    "current_context",
    "current_registry",
    "current_tracer",
    "install",
    "instrument_sim_transport",
    "record_latency",
    "reset_context",
    "scoped_counters",
    "set_context",
    "uninstall",
]

_TRACER: Optional[Tracer] = None
_REGISTRY: Optional[MetricsRegistry] = None

#: the ambient span context ``(trace_id, span_id)`` of the code that is
#: currently executing — set by deliver wrappers around ``on_message``
#: and by instrumented roles around outbound sends.  Single-threaded in
#: both backends (sim event loop / asyncio loop), so a module global is
#: exactly a context variable without the lookup cost.
CURRENT: Optional[Tuple[str, str]] = None


def install(tracer: Tracer, registry: Optional[MetricsRegistry] = None) -> None:
    """Make ``tracer`` ambient for everything constructed from now on."""
    global _TRACER, _REGISTRY, CURRENT
    _TRACER = tracer
    _REGISTRY = registry
    CURRENT = None


def uninstall() -> None:
    global _TRACER, _REGISTRY, CURRENT
    _TRACER = None
    _REGISTRY = None
    CURRENT = None


def current_tracer():
    """The installed tracer, or the no-op singleton."""
    return _TRACER if _TRACER is not None else NOOP


def current_registry() -> Optional[MetricsRegistry]:
    return _REGISTRY


def current_context() -> Optional[Tuple[str, str]]:
    return CURRENT


def set_context(ctx: Optional[Tuple[str, str]]) -> Optional[Tuple[str, str]]:
    """Swap the ambient context; returns the previous one for restore."""
    global CURRENT
    previous = CURRENT
    CURRENT = ctx
    return previous


def reset_context(previous: Optional[Tuple[str, str]]) -> None:
    global CURRENT
    CURRENT = previous


def scoped_counters(node_id: str, counters):
    """Per-node attribution for ``counters`` when a registry is active.

    Returns ``counters`` unchanged when tracing is off — construction
    sites call this unconditionally and pay one ``None`` check.
    """
    return scoped(node_id, counters, _REGISTRY)


def record_latency(node_id: str, value_ms: float, timestamp: float) -> None:
    """Attribute one latency sample to ``node_id`` (traced runs only)."""
    if _REGISTRY is not None:
        _REGISTRY.latency_for(node_id).add(value_ms, timestamp=timestamp)


def instrument_sim_transport(transport) -> None:
    """Wrap a :class:`SimTransport`'s network for context propagation.

    No-op unless a tracer is installed, so untraced runs keep the
    original unwrapped hot path.  Idempotent per network instance.
    """
    if _TRACER is None:
        return
    network = getattr(transport, "network", None)
    if network is None or getattr(network, "_trace_wrapped", False):
        return
    #: id(message) -> [message, ctx, in_flight_count]; the strong message
    #: reference pins the id until every delivery consumed its context.
    pending: dict = {}
    original_send = network.send
    original_deliver = network._deliver

    def traced_send(src_id: str, dst_id: str, message: object) -> None:
        ctx = CURRENT
        if ctx is not None:
            key = id(message)
            entry = pending.get(key)
            if entry is None:
                pending[key] = [message, ctx, 1]
            else:
                entry[1] = ctx
                entry[2] += 1
        original_send(src_id, dst_id, message)

    def traced_deliver(dst_id: str, message: object, src_id: str) -> None:
        entry = pending.get(id(message))
        if entry is None:
            ctx = None
        else:
            ctx = entry[1]
            entry[2] -= 1
            if entry[2] <= 0:
                del pending[id(message)]
        previous = set_context(ctx)
        try:
            original_deliver(dst_id, message, src_id)
        finally:
            reset_context(previous)

    network.send = traced_send
    network._deliver = traced_deliver
    network._trace_wrapped = True
    # SimTransport aliases network.send at construction for speed; point
    # the alias at the wrapper so role sends are captured too.
    transport.send = traced_send
