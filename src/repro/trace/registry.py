"""Per-node metrics: a registry of counters and latency recorders.

The cluster has always aggregated protocol counters into one shared
:class:`~repro.metrics.CounterSet`.  When tracing is on, roles wrap that
shared set in a :class:`ScopedCounters` so every increment lands twice:
once in the global set (``cluster.counters`` semantics unchanged — every
existing consumer sees identical totals) and once in this registry under
the incrementing node's id.  The registry merges deterministically into
the trace artifact: nodes sorted by id, counters sorted by name.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.metrics import CounterSet, LatencyRecorder

__all__ = ["MetricsRegistry", "ScopedCounters"]


class MetricsRegistry:
    """Counters and latency recorders keyed by node id."""

    def __init__(self) -> None:
        self._counters: Dict[str, CounterSet] = {}
        self._latencies: Dict[str, LatencyRecorder] = {}

    def counters_for(self, node_id: str) -> CounterSet:
        counters = self._counters.get(node_id)
        if counters is None:
            counters = self._counters[node_id] = CounterSet()
        return counters

    def latency_for(self, node_id: str) -> LatencyRecorder:
        recorder = self._latencies.get(node_id)
        if recorder is None:
            recorder = self._latencies[node_id] = LatencyRecorder(node_id)
        return recorder

    def as_dict(self) -> Dict[str, object]:
        """Deterministic JSON view: everything sorted, floats rounded."""
        counters = {
            node_id: self._counters[node_id].as_dict()
            for node_id in sorted(self._counters)
            if self._counters[node_id].as_dict()
        }
        latencies = {}
        for node_id in sorted(self._latencies):
            recorder = self._latencies[node_id]
            if not len(recorder):
                continue
            latencies[node_id] = {
                key: round(value, 3) for key, value in recorder.summary().items()
            }
        return {"counters": counters, "latencies": latencies}


class ScopedCounters:
    """A :class:`CounterSet` facade that also attributes to one node.

    Increments fan out to the shared cluster-wide set *and* the node's
    slice in the registry; every read delegates to the shared set, so
    code holding a scoped handle observes exactly the global totals it
    always did.
    """

    __slots__ = ("_base", "_local")

    def __init__(
        self, node_id: str, base: CounterSet, registry: MetricsRegistry
    ) -> None:
        self._base = base
        self._local = registry.counters_for(node_id)

    def increment(self, name: str, amount: int = 1) -> None:
        self._base.increment(name, amount)
        self._local.increment(name, amount)

    def get(self, name: str) -> int:
        return self._base.get(name)

    def as_dict(self) -> Dict[str, int]:
        return self._base.as_dict()

    def __contains__(self, name: str) -> bool:
        return name in self._base


def scoped(
    node_id: str, counters: CounterSet, registry: Optional[MetricsRegistry]
) -> CounterSet:
    """Wrap ``counters`` for ``node_id`` when a registry is active."""
    if registry is None or isinstance(counters, ScopedCounters):
        return counters
    return ScopedCounters(node_id, counters, registry)
