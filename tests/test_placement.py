"""Tests for the adaptive master placement subsystem (repro/placement)."""

import pytest

from repro.core.options import RecordId
from repro.db.cluster import build_cluster
from repro.placement.directory import PlacementDirectory
from repro.placement.policy import MigrationPolicy
from repro.placement.tracker import AccessTracker
from repro.storage.schema import Constraint, TableSchema

R1 = RecordId("items", "a")
R2 = RecordId("items", "b")


class TestAccessTracker:
    def test_counts_and_normalizes(self):
        tracker = AccessTracker(halflife_ms=1_000.0)
        tracker.note(R1, "us-west", now=0.0)
        tracker.note(R1, "us-west", now=0.0)
        tracker.note(R1, "eu-west", now=0.0)
        shares, total = tracker.shares(R1, now=0.0)
        assert total == pytest.approx(3.0)
        assert shares["us-west"] == pytest.approx(2 / 3)
        assert shares["eu-west"] == pytest.approx(1 / 3)

    def test_decay_halves_weight_per_halflife(self):
        tracker = AccessTracker(halflife_ms=1_000.0)
        tracker.note(R1, "us-west", now=0.0)
        assert tracker.total_weight(R1, now=1_000.0) == pytest.approx(0.5)
        assert tracker.total_weight(R1, now=2_000.0) == pytest.approx(0.25)

    def test_decay_shifts_dominance_to_recent_origin(self):
        tracker = AccessTracker(halflife_ms=1_000.0)
        for _ in range(10):
            tracker.note(R1, "us-west", now=0.0)
        # The hotspot moves: a few recent writes from Tokyo outweigh the
        # decayed US history.
        for _ in range(3):
            tracker.note(R1, "ap-northeast", now=5_000.0)
        shares, _total = tracker.shares(R1, now=5_000.0)
        assert shares["ap-northeast"] > 0.9

    def test_unknown_record_is_empty(self):
        tracker = AccessTracker()
        assert tracker.shares(R1, now=0.0) == ({}, 0.0)

    def test_prune_drops_fully_decayed_records(self):
        tracker = AccessTracker(halflife_ms=100.0, prune_below=0.05)
        tracker.note(R1, "us-west", now=0.0)
        tracker.note(R2, "us-west", now=10_000.0)
        assert tracker.prune(now=10_000.0) == 1
        assert tracker.tracked_records() == [R2]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            AccessTracker(halflife_ms=0)
        with pytest.raises(ValueError):
            AccessTracker(prune_below=-1)


class TestMigrationPolicy:
    POLICY = MigrationPolicy(
        dominance_threshold=0.6,
        improvement_margin=0.2,
        min_weight=2.0,
        cooldown_ms=5_000.0,
    )

    def test_migrates_to_clear_dominant(self):
        target = self.POLICY.decide(
            current_dc="us-west",
            shares={"ap-northeast": 0.9, "us-west": 0.1},
            total_weight=10.0,
            last_migration_at=None,
            now=0.0,
        )
        assert target == "ap-northeast"

    def test_stays_when_current_is_dominant(self):
        assert (
            self.POLICY.decide(
                "us-west", {"us-west": 0.9, "eu-west": 0.1}, 10.0, None, 0.0
            )
            is None
        )

    def test_ignores_records_below_min_weight(self):
        assert (
            self.POLICY.decide(
                "us-west", {"ap-northeast": 1.0}, 1.0, None, 0.0
            )
            is None
        )

    def test_even_split_never_moves(self):
        # 50/50 between two regions: below the dominance threshold, so no
        # migration in either direction — the anti-ping-pong core case.
        shares = {"us-west": 0.5, "ap-northeast": 0.5}
        assert self.POLICY.decide("us-west", shares, 10.0, None, 0.0) is None
        assert self.POLICY.decide("ap-northeast", shares, 10.0, None, 0.0) is None

    def test_margin_blocks_marginal_gains(self):
        # 0.61 vs 0.39: dominant passes the threshold but not the margin
        # over the incumbent... margin requires 0.39 + 0.2 <= 0.61 exactly;
        # use a tighter split to show the block.
        shares = {"ap-northeast": 0.55, "us-west": 0.45}
        policy = MigrationPolicy(dominance_threshold=0.5, improvement_margin=0.2)
        assert policy.decide("us-west", shares, 10.0, None, 0.0) is None

    def test_cooldown_blocks_back_to_back_migrations(self):
        shares = {"ap-northeast": 1.0}
        assert (
            self.POLICY.decide("us-west", shares, 10.0, last_migration_at=8_000.0, now=10_000.0)
            is None
        )
        assert (
            self.POLICY.decide("us-west", shares, 10.0, last_migration_at=1_000.0, now=10_000.0)
            == "ap-northeast"
        )

    def test_deterministic_tie_break(self):
        shares = {"eu-west": 0.45, "ap-northeast": 0.45, "us-west": 0.1}
        policy = MigrationPolicy(dominance_threshold=0.4, improvement_margin=0.1)
        # ap-northeast < eu-west lexicographically at equal share.
        assert policy.decide("us-west", shares, 10.0, None, 0.0) == "ap-northeast"

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            MigrationPolicy(dominance_threshold=0.0)
        with pytest.raises(ValueError):
            MigrationPolicy(min_weight=0.0)
        with pytest.raises(ValueError):
            MigrationPolicy(cooldown_ms=-1.0)


class TestPlacementDirectory:
    def test_falls_back_until_assigned(self):
        directory = PlacementDirectory(fallback=lambda record: "us-west")
        assert directory.master_dc(R1) == "us-west"
        assert directory.version == 0
        directory.assign(R1, "eu-west", now=10.0)
        assert directory.master_dc(R1) == "eu-west"
        assert directory.master_dc(R2) == "us-west"

    def test_versioning_and_history(self):
        directory = PlacementDirectory(fallback=lambda record: "us-west")
        assert directory.assign(R1, "eu-west", now=10.0) is True
        assert directory.assign(R1, "eu-west", now=20.0) is False  # no move
        assert directory.assign(R1, "ap-northeast", now=30.0) is True
        assert directory.version == 3
        assert directory.migrations == 2
        assert directory.history == [
            (10.0, R1, "us-west", "eu-west"),
            (30.0, R1, "eu-west", "ap-northeast"),
        ]
        assert directory.last_migration_at(R1) == 30.0
        assert directory.last_migration_at(R2) is None


ITEMS = TableSchema("items", constraints={"stock": Constraint(minimum=0)})


def _adaptive_cluster(protocol="multi", **kwargs):
    cluster = build_cluster(
        protocol,
        seed=11,
        master_policy="adaptive",
        placement_scan_ms=500.0,
        tracker_halflife_ms=2_000.0,
        migration_policy=MigrationPolicy(
            dominance_threshold=0.6,
            improvement_margin=0.2,
            min_weight=2.0,
            cooldown_ms=2_000.0,
        ),
        **kwargs,
    )
    cluster.register_table(ITEMS)
    return cluster


class TestAdaptiveCluster:
    def test_adaptive_requires_mdcc_variant(self):
        with pytest.raises(ValueError, match="adaptive master placement"):
            build_cluster("2pc", master_policy="adaptive")

    def test_build_deploys_a_manager(self):
        cluster = _adaptive_cluster()
        assert cluster.placement_manager is not None
        assert cluster.placement_manager.directory is cluster.placement.directory

    def test_mastership_migrates_to_write_origin(self):
        """Hammer records from one remote DC: their masters move there,
        commits keep working before, during, and after, and the replicas
        converge — the Phase-1 takeover does not lose updates."""
        cluster = _adaptive_cluster()
        sim = cluster.sim
        keys = [f"hot:{i}" for i in range(4)]
        for key in keys:
            cluster.load_record("items", key, {"stock": 1_000})
        records = [RecordId("items", key) for key in keys]
        origin = "ap-northeast"
        # Pick keys that do NOT start mastered in the origin DC.
        assert any(cluster.placement.master_dc(r) != origin for r in records)
        client = cluster.add_client(origin)

        committed = 0
        for round_no in range(30):
            tx = cluster.begin(client)
            for key in keys:
                sim.run_until(tx.read("items", key))
            for key in keys:
                tx.decrement("items", key, "stock", 1)
            outcome = sim.run_until(tx.commit())
            committed += bool(outcome.committed)
            sim.run(until=sim.now + 400.0)  # let visibilities + scans land
        sim.run(until=sim.now + 5_000.0)

        assert committed >= 25
        moved = [r for r in records if cluster.placement.master_dc(r) == origin]
        assert len(moved) == len(records), (
            f"only {len(moved)}/{len(records)} masters followed the writes"
        )
        assert cluster.placement.directory.migrations >= len(records) - 1
        # Every replica converged on the same committed stock.
        for key in keys:
            snapshots = cluster.committed_snapshots("items", key)
            values = {snap.value["stock"] for snap in snapshots.values()}
            versions = {snap.version for snap in snapshots.values()}
            assert len(values) == 1, (key, snapshots)
            assert len(versions) == 1

    def test_migration_works_under_fast_ballots_too(self):
        """In the mdcc variant the master is off the commit path, but the
        takeover must not wedge the record or flip it into classic mode
        permanently."""
        cluster = _adaptive_cluster(protocol="mdcc")
        sim = cluster.sim
        cluster.load_record("items", "k", {"stock": 500})
        record = RecordId("items", "k")
        origin = "eu-west"
        client = cluster.add_client(origin)
        committed = 0
        for _ in range(20):
            tx = cluster.begin(client)
            tx.decrement("items", "k", "stock", 1)
            outcome = sim.run_until(tx.commit())
            committed += bool(outcome.committed)
            sim.run(until=sim.now + 300.0)
        sim.run(until=sim.now + 5_000.0)
        assert committed == 20
        assert cluster.placement.master_dc(record) == origin
        # The record still runs fast ballots (migration re-opened the era).
        node = cluster.storage_nodes[cluster.placement.replica_in(record, origin)]
        assert node.record_state(record).is_fast

    def test_stale_proposals_reach_the_new_master(self):
        """A coordinator may propose to the old master at the instant the
        directory flips; abdication must forward its queue so the commit
        still resolves."""
        cluster = _adaptive_cluster()
        sim = cluster.sim
        cluster.load_record("items", "x", {"stock": 100})
        record = RecordId("items", "x")
        old_dc = cluster.placement.master_dc(record)
        new_dc = next(dc for dc in cluster.placement.datacenters if dc != old_dc)
        client = cluster.add_client(old_dc)

        # Commit one transaction through the old master so it establishes.
        tx = cluster.begin(client)
        sim.run_until(tx.read("items", "x"))
        tx.decrement("items", "x", "stock", 1)
        assert sim.run_until(tx.commit()).committed
        sim.run(until=sim.now + 2_000.0)  # let tx1's visibility execute

        # Force a migration mid-flight: flip the directory and trigger the
        # takeover exactly like the manager does, while a freshly proposed
        # transaction is still travelling to the old master.
        tx2 = cluster.begin(client)
        sim.run_until(tx2.read("items", "x"))
        tx2.decrement("items", "x", "stock", 1)
        future = tx2.commit()  # ProposeClassic now in flight to old_dc
        cluster.placement_manager._migrate(record, new_dc)
        outcome = sim.run_until(future, limit=sim.now + 60_000.0)
        assert outcome.committed
        sim.run(until=sim.now + 5_000.0)
        assert cluster.placement.master_dc(record) == new_dc
        snapshots = cluster.committed_snapshots("items", "x")
        assert {snap.value["stock"] for snap in snapshots.values()} == {98}
