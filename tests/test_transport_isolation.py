"""Core protocol code must be transport-neutral.

The acceptance criterion from the transport issue: nothing under
``src/repro/core/`` may import from ``repro.sim`` (or reach a simulator
through ``self.sim``).  Role classes speak only to the
:class:`repro.transport.base.Transport` interface, so the same code runs
under the simulator and over asyncio TCP.
"""

import ast
import pathlib

import repro.core

CORE_DIR = pathlib.Path(repro.core.__file__).parent
FORBIDDEN_PREFIX = "repro.sim"


def _core_sources():
    return sorted(CORE_DIR.glob("*.py"))


def _forbidden_imports(path):
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    hits = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro.sim" or alias.name.startswith(
                    FORBIDDEN_PREFIX + "."
                ):
                    hits.append(f"{path.name}:{node.lineno} import {alias.name}")
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module == "repro.sim" or module.startswith(FORBIDDEN_PREFIX + "."):
                hits.append(f"{path.name}:{node.lineno} from {module} import ...")
    return hits


def test_core_has_files_to_check():
    assert len(_core_sources()) >= 5


def test_no_sim_imports_in_core():
    hits = [hit for path in _core_sources() for hit in _forbidden_imports(path)]
    assert not hits, (
        "protocol code under src/repro/core/ must not import repro.sim — "
        "route everything through repro.transport instead:\n" + "\n".join(hits)
    )


def test_no_sim_attribute_access_in_core():
    """Role classes must not reach a simulator via ``self.sim`` / ``.sim.``."""
    hits = []
    for path in _core_sources():
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute) and node.attr == "sim":
                hits.append(f"{path.name}:{node.lineno} .sim attribute access")
    assert not hits, (
        "core protocol code must use Node.now/set_timer/future(), "
        "not a simulator handle:\n" + "\n".join(hits)
    )


def test_transport_base_is_sim_free():
    """The interface itself must not drag the simulator in either."""
    import repro.transport.base as base

    path = pathlib.Path(base.__file__)
    assert not _forbidden_imports(path)
