"""Core protocol code must be transport-neutral.

The AST walk that used to live here is now the ISO-sim-free rule of
:mod:`repro.analysis` (with per-package allowlists covering protocols/,
placement/, reconfig/ and the restricted transport modules, not just
core/).  These tests assert through the analyzer so there is one source
of truth — plus a fixture check that the rule still fires.
"""

import pathlib
import textwrap

from repro.analysis.engine import Project, SourceFile
from repro.analysis.rules_isolation import ISO_SIM_FREE

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def _findings(project):
    return list(ISO_SIM_FREE.check(project))


def test_rule_covers_the_original_scope():
    """The per-package allowlist map must still restrict everything the
    original test restricted (core/ + transport/base.py)."""
    from repro.analysis.rules_isolation import FORBIDDEN_IMPORTS

    assert "repro.sim" in FORBIDDEN_IMPORTS["src/repro/core/"]
    assert "repro.sim" in FORBIDDEN_IMPORTS["src/repro/transport/base.py"]
    assert "repro.sim" in FORBIDDEN_IMPORTS["src/repro/protocols/"]


def test_tree_is_isolation_clean():
    """No transport-neutral module imports repro.sim (or reaches a
    simulator through ``.sim``) anywhere in the committed tree."""
    project = Project(REPO_ROOT)
    assert len(project.in_scope(include=("src/repro/core/",))) >= 5
    hits = _findings(project)
    assert not hits, (
        "protocol code must route everything through repro.transport:\n"
        + "\n".join(f"{f.location()}: {f.message}" for f in hits)
    )


def test_rule_fires_on_sim_import_in_core():
    offender = SourceFile(
        "src/repro/core/rogue.py",
        textwrap.dedent(
            """\
            from repro.sim.events import Simulation

            def f(sim):
                return sim.now
            """
        ),
    )
    hits = _findings(Project(REPO_ROOT, files=[offender]))
    assert [(f.line, "from repro.sim" in f.message or "sim" in f.message) for f in hits]
    assert hits[0].line == 1
    assert "transport-neutral" in hits[0].message


def test_rule_fires_on_sim_attribute_access_in_core():
    offender = SourceFile(
        "src/repro/core/rogue.py",
        "class R:\n    def now(self):\n        return self.sim.now\n",
    )
    hits = _findings(Project(REPO_ROOT, files=[offender]))
    assert len(hits) == 1
    assert hits[0].line == 3
    assert ".sim attribute access" in hits[0].message


def test_sim_backend_itself_is_exempt():
    backend = SourceFile(
        "src/repro/transport/simnet.py",
        "from repro.sim.events import Simulation\n",
    )
    assert not _findings(Project(REPO_ROOT, files=[backend]))
