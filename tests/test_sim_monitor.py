"""Unit tests for latency recorders, counters and time series."""

import pytest

from repro.metrics import (
    CounterSet,
    LatencyRecorder,
    TimeSeries,
    percentile,
)


class TestPercentile:
    def test_single_value(self):
        assert percentile([42.0], 0.5) == 42.0

    def test_median_of_odd_count(self):
        assert percentile([1.0, 2.0, 3.0], 0.5) == 2.0

    def test_median_interpolates_even_count(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)

    def test_extremes(self):
        data = [5.0, 1.0 + 4.0, 9.0]  # already sorted requirement: [5,5,9]
        data = sorted(data)
        assert percentile(data, 0.0) == data[0]
        assert percentile(data, 1.0) == data[-1]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_fraction_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)

    def test_matches_numpy_linear_method(self):
        numpy = pytest.importorskip("numpy")
        data = sorted([3.1, 0.4, 9.9, 7.2, 5.5, 2.2, 8.8])
        for fraction in (0.1, 0.25, 0.5, 0.75, 0.9, 0.99):
            assert percentile(data, fraction) == pytest.approx(
                float(numpy.percentile(data, fraction * 100))
            )


class TestLatencyRecorder:
    def test_median_and_percentiles(self):
        rec = LatencyRecorder("lat")
        rec.extend([100.0, 200.0, 300.0, 400.0, 500.0])
        assert rec.median == 300.0
        assert rec.percentile(0.0) == 100.0
        assert rec.percentile(1.0) == 500.0

    def test_mean_min_max(self):
        rec = LatencyRecorder()
        rec.extend([10.0, 20.0, 60.0])
        assert rec.mean == pytest.approx(30.0)
        assert rec.minimum == 10.0
        assert rec.maximum == 60.0

    def test_cache_invalidated_on_add(self):
        rec = LatencyRecorder()
        rec.add(10.0)
        assert rec.median == 10.0
        rec.add(30.0)
        assert rec.median == pytest.approx(20.0)

    def test_cdf_points_monotonic(self):
        rec = LatencyRecorder()
        rec.extend([5.0, 1.0, 9.0, 3.0, 7.0])
        points = rec.cdf_points(resolution=10)
        xs = [x for x, _ in points]
        ys = [y for _, y in points]
        assert xs == sorted(xs)
        assert ys == sorted(ys)
        assert ys[0] == 0.0 and ys[-1] == 1.0

    def test_fraction_below(self):
        rec = LatencyRecorder()
        rec.extend([100.0, 200.0, 300.0, 400.0])
        assert rec.fraction_below(250.0) == 0.5
        assert rec.fraction_below(100.0) == 0.0
        assert rec.fraction_below(10_000.0) == 1.0

    def test_boxplot_stats(self):
        rec = LatencyRecorder()
        rec.extend(float(v) for v in range(1, 102))  # 1..101
        box = rec.boxplot()
        assert box.median == 51.0
        assert box.q1 == 26.0
        assert box.q3 == 76.0
        assert box.minimum == 1.0
        assert box.maximum == 101.0
        assert box.count == 101

    def test_summary_keys(self):
        rec = LatencyRecorder()
        rec.extend([1.0, 2.0, 3.0])
        summary = rec.summary()
        assert set(summary) == {"count", "mean", "p50", "p90", "p99", "min", "max"}

    def test_empty_summary(self):
        assert LatencyRecorder().summary() == {"count": 0}

    def test_timestamped_pairs(self):
        rec = LatencyRecorder()
        rec.add(150.0, timestamp=1000.0)
        rec.add(170.0, timestamp=2000.0)
        assert rec.timestamped == [(1000.0, 150.0), (2000.0, 170.0)]


class TestCounterSet:
    def test_increment_and_get(self):
        counters = CounterSet()
        counters.increment("commits")
        counters.increment("commits", 4)
        assert counters.get("commits") == 5

    def test_missing_counter_reads_zero(self):
        assert CounterSet().get("absent") == 0

    def test_as_dict_sorted(self):
        counters = CounterSet()
        counters.increment("b")
        counters.increment("a")
        assert list(counters.as_dict()) == ["a", "b"]

    def test_contains(self):
        counters = CounterSet()
        counters.increment("x")
        assert "x" in counters
        assert "y" not in counters


class TestTimeSeries:
    def test_bucket_means(self):
        series = TimeSeries("lat")
        series.add(0.0, 100.0)
        series.add(500.0, 200.0)
        series.add(1500.0, 300.0)
        buckets = series.bucket_means(1000.0)
        assert buckets == [(0.0, 150.0, 2), (1000.0, 300.0, 1)]

    def test_mean_between(self):
        series = TimeSeries()
        for t in range(10):
            series.add(t * 100.0, float(t))
        assert series.mean_between(0.0, 500.0) == pytest.approx(2.0)

    def test_mean_between_empty_raises(self):
        series = TimeSeries()
        with pytest.raises(ValueError):
            series.mean_between(0.0, 1.0)

    def test_points_are_copies(self):
        series = TimeSeries()
        series.add(1.0, 2.0)
        pts = series.points
        pts.append((9.0, 9.0))
        assert len(series.points) == 1


class TestBucketCounts:
    def test_empty_buckets_are_reported_with_zero(self):
        series = TimeSeries()
        series.add(100.0, 5.0)
        series.add(2_500.0, 7.0)
        counts = series.bucket_counts(1_000.0, 0.0, 4_000.0)
        assert counts == [(0.0, 1), (1_000.0, 0), (2_000.0, 1), (3_000.0, 0)]

    def test_window_bounds_are_half_open(self):
        series = TimeSeries()
        series.add(0.0, 1.0)      # inclusive start
        series.add(2_000.0, 1.0)  # exclusive end
        counts = series.bucket_counts(1_000.0, 0.0, 2_000.0)
        assert counts == [(0.0, 1), (1_000.0, 0)]

    def test_buckets_are_relative_to_window_start(self):
        series = TimeSeries()
        series.add(5_400.0, 1.0)
        counts = series.bucket_counts(1_000.0, 5_000.0, 7_000.0)
        assert counts == [(5_000.0, 1), (6_000.0, 0)]

    def test_invalid_bucket_width_rejected(self):
        series = TimeSeries()
        with pytest.raises(ValueError):
            series.bucket_counts(0.0, 0.0, 1_000.0)
