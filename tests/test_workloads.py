"""Tests for the workload generators (micro + TPC-W) and client pool."""

import pytest

from repro.db.cluster import build_cluster
from repro.workloads.generator import ClientPool, WorkloadStats
from repro.workloads.micro import MicroBenchmark
from repro.workloads.tpcw import TPCW_MIX, TPCWBenchmark, WRITE_INTERACTIONS


class TestMicroConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            MicroBenchmark(num_items=2, items_per_tx=3)
        with pytest.raises(ValueError):
            MicroBenchmark(hotspot_fraction=0.0)
        with pytest.raises(ValueError):
            MicroBenchmark(hotspot_fraction=1.5)
        with pytest.raises(ValueError):
            MicroBenchmark(locality=-0.1)

    def test_populate_loads_items(self):
        cluster = build_cluster("mdcc", seed=41)
        bench = MicroBenchmark(num_items=20)
        bench.populate(cluster)
        snap = cluster.read_committed("items", "item:000000")
        assert snap.exists
        assert 10 <= snap.value["stock"] <= 30

    def test_hotspot_selection_is_skewed(self):
        cluster = build_cluster("mdcc", seed=42)
        bench = MicroBenchmark(num_items=1000, hotspot_fraction=0.02)
        bench.populate(cluster)
        rng = cluster.rng.stream("test.pick")
        hot_count = max(1, int(1000 * 0.02))
        hits = sum(
            1
            for _ in range(2000)
            if int(bench._pick_one(rng, "us-west").split(":")[1]) < hot_count
        )
        # 90% of accesses should land in the hot set.
        assert 0.85 <= hits / 2000 <= 0.95

    def test_uniform_selection_without_hotspot(self):
        cluster = build_cluster("mdcc", seed=43)
        bench = MicroBenchmark(num_items=100)
        bench.populate(cluster)
        rng = cluster.rng.stream("test.pick")
        seen = {bench._pick_one(rng, "us-west") for _ in range(2000)}
        assert len(seen) > 80  # nearly all items touched

    def test_locality_selection_prefers_local_masters(self):
        cluster = build_cluster("mdcc", seed=44)
        bench = MicroBenchmark(num_items=500, locality=1.0)
        bench.populate(cluster)
        rng = cluster.rng.stream("test.pick")
        from repro.core.options import RecordId

        for _ in range(100):
            key = bench._pick_one(rng, "us-west")
            assert cluster.placement.master_dc(RecordId("items", key)) == "us-west"

    def test_distinct_items_per_transaction(self):
        cluster = build_cluster("mdcc", seed=45)
        bench = MicroBenchmark(num_items=10)
        bench.populate(cluster)
        rng = cluster.rng.stream("test.pick")
        for _ in range(50):
            keys = bench._pick_keys(rng, "us-west")
            assert len(keys) == len(set(keys)) == 3


class TestMicroRun:
    def test_short_run_produces_stats(self):
        cluster = build_cluster("mdcc", seed=46)
        bench = MicroBenchmark(num_items=200, min_stock=500, max_stock=1000)
        stats, pool = bench.run(
            cluster, num_clients=10, warmup_ms=2_000, measure_ms=8_000
        )
        assert stats.commits > 0
        assert len(stats.write_latencies) == stats.commits
        assert stats.throughput_tps() > 0
        assert bench.audit(cluster) == []

    def test_stress_audit_all_variants(self):
        """Regression for three protocol bugs found during development:
        non-incremental adoption, live-option pruning, poisoned catch-up.
        High contention (20 clients on 50 items) must yield a clean
        lost-update audit and converged replicas for every variant."""
        from repro.db.checkers import check_replica_convergence

        for protocol in ("mdcc", "fast", "multi"):
            cluster = build_cluster(protocol, seed=47)
            bench = MicroBenchmark(num_items=50, min_stock=1000, max_stock=2000)
            stats, pool = bench.run(
                cluster, num_clients=20, warmup_ms=1_000, measure_ms=8_000
            )
            pool.drain(30_000)
            assert bench.audit(cluster) == [], protocol
            assert check_replica_convergence(cluster, "items", bench.keys) == [], protocol
            assert stats.commits > 0, protocol

    def test_commutative_beats_physical_under_contention(self):
        """The paper's core claim at workload level: on a hot table,
        commutative MDCC commits far more than Fast (physical writes)."""
        results = {}
        for protocol in ("mdcc", "fast"):
            cluster = build_cluster(protocol, seed=48)
            bench = MicroBenchmark(num_items=50, min_stock=5000, max_stock=9000)
            stats, _pool = bench.run(
                cluster, num_clients=15, warmup_ms=1_000, measure_ms=8_000
            )
            results[protocol] = stats.commits
        assert results["mdcc"] > 2 * results["fast"]


class TestTPCW:
    def test_mix_sums_to_one(self):
        total = sum(TPCW_MIX.values())
        assert total == pytest.approx(100.0, abs=0.5)

    def test_fourteen_interactions(self):
        assert len(TPCW_MIX) == 14
        assert WRITE_INTERACTIONS <= set(TPCW_MIX)

    def test_interaction_selection_follows_mix(self):
        cluster = build_cluster("mdcc", seed=49)
        bench = TPCWBenchmark(num_items=100)
        rng = cluster.rng.stream("test.mix")
        counts = {}
        for _ in range(5000):
            name = bench.pick_interaction(rng)
            counts[name] = counts.get(name, 0) + 1
        # The two most frequent interactions of the ordering mix.
        assert counts["search_request"] > counts["buy_confirm"]
        assert counts["shopping_cart"] > counts["best_sellers"]

    def test_populate_creates_items_and_customers(self):
        cluster = build_cluster("mdcc", seed=50)
        bench = TPCWBenchmark(num_items=50)
        bench.populate(cluster)
        item = cluster.read_committed("item", "item:000000")
        assert item.exists and 10 <= item.value["i_stock"] <= 30
        customer = cluster.read_committed("customer", "cust:000000")
        assert customer.exists

    def test_every_interaction_runs(self):
        """Each of the 14 WIs executes end-to-end without error."""
        cluster = build_cluster("mdcc", seed=51)
        bench = TPCWBenchmark(num_items=50)
        bench.populate(cluster)
        client = cluster.add_client("us-west")
        rng = cluster.rng.stream("test.wi")
        from repro.workloads.tpcw import _Session

        for name in sorted(TPCW_MIX):
            session = _Session(client.node_id)
            handler = getattr(bench, f"_wi_{name}")

            def run_one():
                result = yield from handler(cluster, client, session, rng)
                return result

            process = cluster.sim.spawn(run_one())
            committed, is_write = cluster.sim.run_until(
                process.completion, limit=cluster.sim.now + 300_000
            )
            assert isinstance(committed, bool), name
            if is_write:
                # Writes only come from the five write interactions (a
                # write WI may degrade to read-only, e.g. empty cart).
                assert name in WRITE_INTERACTIONS, name

    def test_short_tpcw_run(self):
        cluster = build_cluster("mdcc", seed=52)
        bench = TPCWBenchmark(num_items=200, min_stock=1000, max_stock=2000)
        stats, pool = bench.run(
            cluster, num_clients=10, warmup_ms=2_000, measure_ms=10_000
        )
        assert stats.commits > 0
        assert stats.counters.get("read_commits") > 0
        # Write latencies exist and the audit is clean.
        assert len(stats.write_latencies) > 0
        assert bench.ledger.audit(cluster) == []

    def test_buy_confirm_respects_stock(self):
        cluster = build_cluster("mdcc", seed=53)
        bench = TPCWBenchmark(num_items=30, min_stock=1, max_stock=2)
        stats, pool = bench.run(
            cluster, num_clients=10, warmup_ms=1_000, measure_ms=10_000
        )
        pool.drain(30_000)
        from repro.db.checkers import check_constraints

        assert check_constraints(cluster, "item", bench.item_keys) == []


class TestClientPool:
    def test_closed_loop_counts_only_measurement_window(self):
        cluster = build_cluster("mdcc", seed=54)
        bench = MicroBenchmark(num_items=100, min_stock=500, max_stock=900)
        bench.populate(cluster)

        pool = ClientPool(
            cluster, num_clients=5, transaction_factory=bench.transaction(cluster)
        )
        stats = pool.run(warmup_ms=5_000, measure_ms=5_000)
        # Rough sanity: a ~200ms transaction loop yields ~25 tx per client
        # per 5s; warm-up transactions must not be counted.
        per_client = stats.commits / 5
        assert 5 <= per_client <= 40

    def test_stats_latency_series_populated(self):
        cluster = build_cluster("mdcc", seed=55)
        bench = MicroBenchmark(num_items=100, min_stock=500, max_stock=900)
        bench.populate(cluster)
        pool = ClientPool(
            cluster, num_clients=3, transaction_factory=bench.transaction(cluster)
        )
        stats = pool.run(warmup_ms=1_000, measure_ms=5_000)
        assert len(stats.latency_series) == stats.commits

    def test_client_dcs_override(self):
        cluster = build_cluster("mdcc", seed=56)
        bench = MicroBenchmark(num_items=50)
        bench.populate(cluster)
        pool = ClientPool(
            cluster,
            num_clients=4,
            transaction_factory=bench.transaction(cluster),
            client_dcs=["us-west"],
        )
        assert all(c.dc == "us-west" for c in pool.clients)

    def test_throughput_requires_window(self):
        stats = WorkloadStats()
        with pytest.raises(ValueError):
            stats.throughput_tps()


class TestGeoShift:
    def test_sun_rotates_in_order(self):
        from repro.workloads.geoshift import GeoShiftBenchmark

        bench = GeoShiftBenchmark(
            num_items=10, phase_ms=1_000.0, rotation=("a", "b", "c")
        )
        assert bench.active_dc(0.0) == "a"
        assert bench.active_dc(999.9) == "a"
        assert bench.active_dc(1_000.0) == "b"
        assert bench.active_dc(2_500.0) == "c"
        assert bench.active_dc(3_000.0) == "a"  # wraps around

    def test_admission_gates_offpeak_clients(self):
        from repro.workloads.geoshift import GeoShiftBenchmark

        bench = GeoShiftBenchmark(
            num_items=10,
            phase_ms=1_000.0,
            rotation=("a", "b"),
            offpeak_activity=0.0,
            offpeak_pause_ms=250.0,
        )

        class FakeClient:
            dc = "a"

        class NeverRandom:
            @staticmethod
            def random():
                return 1.0

        assert bench._admission(FakeClient, NeverRandom, now=0.0) == 0
        assert bench._admission(FakeClient, NeverRandom, now=1_500.0) == 250.0

    def test_run_commits_and_audits_clean(self):
        from repro.workloads.geoshift import GeoShiftBenchmark

        cluster = build_cluster("mdcc", seed=9)
        bench = GeoShiftBenchmark(num_items=60, phase_ms=2_000.0)
        stats, _pool = bench.run(
            cluster, num_clients=10, warmup_ms=1_000, measure_ms=6_000
        )
        assert stats.commits > 0
        assert bench.audit(cluster) == []

    def test_validates_parameters(self):
        from repro.workloads.geoshift import GeoShiftBenchmark

        with pytest.raises(ValueError):
            GeoShiftBenchmark(num_items=2, items_per_tx=3)
        with pytest.raises(ValueError):
            GeoShiftBenchmark(phase_ms=0)
        with pytest.raises(ValueError):
            GeoShiftBenchmark(offpeak_activity=1.5)
