"""The transport interface over the simulator backend.

``SimTransport`` must be a faithful adapter: time, timers, futures and
message delivery all behave exactly as driving the simulator directly,
and the legacy ``repro.sim.node.Node(sim, network, ...)`` constructor
stays usable for test doubles.
"""

from dataclasses import dataclass

from repro.sim.core import Simulator
from repro.sim.network import Network
from repro.sim.node import Node as LegacyNode
from repro.sim.rng import RngRegistry
from repro.transport.base import Node, all_of, any_of
from repro.transport.simnet import SimTransport


@dataclass(frozen=True)
class Ping:
    seq: int


@dataclass(frozen=True)
class OddName:
    pass


class Receiver(Node):
    def __init__(self, transport, node_id, dc):
        super().__init__(transport, node_id, dc)
        self.pings = []
        self.odd = 0

    def handle_ping(self, msg, src):
        self.pings.append((src, msg.seq))

    def handle_odd_name(self, msg, src):
        self.odd += 1


def _make_transport(seed=1):
    sim = Simulator()
    network = Network(sim, rng_registry=RngRegistry(seed=seed))
    return sim, SimTransport(sim, network)


def test_now_tracks_simulated_time():
    sim, transport = _make_transport()
    assert transport.now == 0.0
    fired = []
    transport.schedule(25.0, lambda: fired.append(transport.now))
    sim.run()
    assert fired == [25.0]
    assert transport.now == 25.0


def test_send_dispatches_to_handler_by_type_name():
    sim, transport = _make_transport()
    a = Receiver(transport, "a", "us-west")
    b = Receiver(transport, "b", "us-east")
    a.send("b", Ping(seq=7))
    a.send("b", OddName())
    sim.run()
    assert b.pings == [("a", 7)]
    assert b.odd == 1


def test_broadcast_counts_recipients():
    sim, transport = _make_transport()
    sender = Receiver(transport, "src", "us-west")
    receivers = [Receiver(transport, f"n{i}", "us-east") for i in range(3)]
    count = sender.broadcast([r.node_id for r in receivers], Ping(seq=1))
    assert count == 3
    sim.run()
    assert all(r.pings == [("src", 1)] for r in receivers)


def test_set_timer_fires_on_sim_clock():
    sim, transport = _make_transport()
    node = Receiver(transport, "t", "us-west")
    times = []
    node.set_timer(10.0, lambda: times.append(node.now))
    node.set_timer(5.0, lambda: times.append(node.now))
    sim.run()
    assert times == [5.0, 10.0]


def test_futures_bind_to_simulator():
    sim, transport = _make_transport()
    future = transport.future()
    assert future.sim is sim
    done = []
    future.add_done_callback(lambda f: done.append(f.result()))
    future.resolve(42)
    assert done == [42]


def test_all_of_and_any_of_combinators():
    sim, transport = _make_transport()
    futures = [transport.future() for _ in range(3)]
    combined = all_of(sim, futures)
    first = any_of(sim, list(futures))
    futures[1].resolve("b")
    assert first.done and first.result() == "b"
    assert not combined.done
    futures[0].resolve("a")
    futures[2].resolve("c")
    assert combined.done
    assert combined.result() == ["a", "b", "c"]


def test_base_rtt_exposes_latency_matrix():
    _sim, transport = _make_transport()
    assert transport.base_rtt("us-west", "us-west") < transport.base_rtt(
        "us-west", "eu-west"
    )


def test_legacy_sim_node_constructor_still_works():
    sim = Simulator()
    network = Network(sim, rng_registry=RngRegistry(seed=1))
    node = LegacyNode(sim, network, "legacy", "us-west")
    assert node.sim is sim
    assert node.network is network
    assert isinstance(node.transport, SimTransport)
    assert node.now == sim.now


def test_deregister_stops_delivery():
    sim, transport = _make_transport()
    a = Receiver(transport, "a", "us-west")
    b = Receiver(transport, "b", "us-east")
    transport.deregister("b")
    a.send("b", Ping(seq=1))
    sim.run()
    assert b.pings == []


def test_cluster_nodes_share_one_sim_transport():
    from repro.db.cluster import build_cluster

    cluster = build_cluster("mdcc", seed=3)
    assert isinstance(cluster.transport, SimTransport)
    storage = next(iter(cluster.storage_nodes.values()))
    assert storage.transport is cluster.transport
    assert cluster.transport.sim is cluster.sim
