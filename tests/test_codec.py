"""Wire-codec round-trips for every protocol message type.

The TCP backend must carry exactly what the simulator delivers by
reference, so every registered wire type gets a handcrafted worst-case
sample here and must survive encode → bytes → decode without loss.

Registry *completeness* is no longer asserted by hand-maintained diffs:
the WIRE-codec rule of ``repro.analysis`` is the single source of truth
(every wire-reachable message dataclass must be frozen, ``__slots__``
and registered), and the tripwire tests below assert through it.
"""

import dataclasses
import inspect
import pathlib

import pytest

from repro.analysis.engine import Project, SourceFile
from repro.analysis.rules_wire import WIRE_CODEC
from repro.core import messages
from repro.protocols import megastore, quorumwrites, twopc
from repro.core.options import (
    CommutativeUpdate,
    Option,
    OptionStatus,
    PhysicalUpdate,
    ReadValidation,
    RecordId,
)
from repro.paxos.ballot import Ballot, BallotRange
from repro.paxos.cstruct import CStruct
from repro.transport import codec
from repro.transport.codec import (
    CodecError,
    JsonCodec,
    decode,
    decode_frame_payload,
    encode,
    encode_frame_payload,
    resolve_codec,
)

RECORD = RecordId("items", "item:000042")
BALLOT = Ballot(round=3, fast=True, proposer="master-us-east")
CLASSIC = Ballot(round=4, fast=False, proposer="store-eu-west-p0")
GRANT = BallotRange(start_instance=7, end_instance=None, ballot=BALLOT)
COMMUTATIVE = Option(
    txid="tx-17",
    record=RECORD,
    update=CommutativeUpdate(deltas=(("stock", -3.0), ("reserved", 1.5))),
    writeset=(RECORD, RecordId("items", "item:000007")),
    status=OptionStatus.PENDING,
)
PHYSICAL = Option(
    txid="tx-18",
    record=RECORD,
    update=PhysicalUpdate(vread=9, new_value={"stock": 11, "name": "bolt"}, is_delete=False),
    writeset=(RECORD,),
    status=OptionStatus.ACCEPTED,
)
VALIDATION = Option(
    txid="tx-19",
    record=RECORD,
    update=ReadValidation(vread=4),
    writeset=(),
    status=OptionStatus.REJECTED,
)
CSTRUCT = CStruct((COMMUTATIVE, PHYSICAL, VALIDATION))

#: one worst-case instance per wire type — nested values, Nones, empty
#: and populated tuples, dict payloads.
SAMPLES = {
    "CatchUp": messages.CatchUp(
        record=RECORD,
        version=12,
        value={"stock": 140},
        exists=True,
        applied_ids=("opt-1", "opt-2"),
    ),
    "FastReply": messages.FastReply(
        option_id="opt-9",
        txid="tx-17",
        record=RECORD,
        status=OptionStatus.ACCEPTED,
        committed_version=5,
        is_fast_era=True,
        master_hint="us-east",
        epoch=2,
    ),
    "MPhase1a": messages.MPhase1a(record=RECORD, ballot=CLASSIC, grant=GRANT, epoch=1),
    "MPhase1b": messages.MPhase1b(
        record=RECORD,
        ballot=CLASSIC,
        granted=True,
        promised=CLASSIC,
        accepted_ballot=BALLOT,
        cstruct=CSTRUCT,
        committed_version=6,
        committed_value={"stock": 99},
        applied_ids=("opt-3",),
        epoch=1,
    ),
    "MPhase2a": messages.MPhase2a(
        record=RECORD,
        ballot=CLASSIC,
        cstruct=CSTRUCT,
        post_grant=GRANT,
        new_base={"stock": 120.0},
        epoch=1,
    ),
    "MPhase2b": messages.MPhase2b(
        record=RECORD,
        ballot=CLASSIC,
        accepted=False,
        cstruct=None,
        committed_version=6,
        promised=Ballot(round=5, fast=False, proposer="other"),
        epoch=1,
    ),
    "MastershipTaken": messages.MastershipTaken(
        record=RECORD, master_dc="eu-west", node_id="store-eu-west-p0"
    ),
    "OptionOutcome": messages.OptionOutcome(
        option_id="opt-9", txid="tx-17", record=RECORD, status=OptionStatus.REJECTED
    ),
    "ProposeClassic": messages.ProposeClassic(option=PHYSICAL, reply_to="app-us-west-1"),
    "ProposeFast": messages.ProposeFast(
        option=COMMUTATIVE, reply_to="app-us-west-1", epoch=3
    ),
    # Replicated Commit: write-sets nest every Update kind inside the
    # Tuple[Tuple[RecordId, Update], ...] shape — the worst case for
    # tuple-ness preservation.
    "RcApply": messages.RcApply(
        txid="tx-20",
        record=RECORD,
        update=PhysicalUpdate(vread=3, new_value=None, is_delete=True),
        commit=False,
    ),
    "RcCommitRequest": messages.RcCommitRequest(
        txid="tx-20",
        updates=(
            (RECORD, PhysicalUpdate(vread=9, new_value={"stock": 11})),
            (
                RecordId("items", "item:000007"),
                CommutativeUpdate(deltas=(("stock", -3.0),)),
            ),
            (RecordId("orders", "o-77"), ReadValidation(vread=4)),
        ),
        reply_to="app-us-west-1",
    ),
    "RcDecision": messages.RcDecision(
        txid="tx-20",
        commit=True,
        updates=((RECORD, ReadValidation(vread=4)),),
    ),
    "RcPrepare": messages.RcPrepare(
        txid="tx-20",
        record=RECORD,
        update=CommutativeUpdate(deltas=(("stock", -3.0), ("reserved", 1.5))),
        reply_to="store-us-west-p0",
    ),
    "RcPrepareReply": messages.RcPrepareReply(
        txid="tx-20", record=RECORD, vote=False, reason="lock-conflict"
    ),
    "RcVote": messages.RcVote(
        txid="tx-20", dc="eu-west", accept=True, voter="store-eu-west-p0"
    ),
    "ReadReply": messages.ReadReply(
        request_id=41,
        table="items",
        key="item:000042",
        exists=True,
        value={"stock": 140, "name": "bolt"},
        version=12,
        is_fast_era=False,
        master_hint="us-west",
    ),
    "ReadRequest": messages.ReadRequest(table="items", key="item:000042", request_id=41),
    "RepairProbe": messages.RepairProbe(record=RECORD, request_id=7),
    "RepairReply": messages.RepairReply(
        request_id=7,
        record=RECORD,
        exists=False,
        value=None,
        version=0,
        applied_ids=(),
        pending=(COMMUTATIVE, VALIDATION),
    ),
    "SnapshotAck": messages.SnapshotAck(
        request_id=2, node_id="store-ap-south-p0", records_adopted=40, wal_cut=17
    ),
    "SnapshotChunk": messages.SnapshotChunk(
        request_id=2,
        seq=1,
        records=(
            ("items", "item:000001", 3, {"stock": 101}, ("opt-1",)),
            ("items", "item:000002", 0, None, ()),
        ),
        last=True,
        wal_cut=17,
        reply_to="store-us-west-p0",
    ),
    "SnapshotRequest": messages.SnapshotRequest(
        request_id=2, target="store-ap-south-p0", reply_to="store-ap-south-p0"
    ),
    "StartRecovery": messages.StartRecovery(
        record=RECORD, reason="learn-timeout", option=PHYSICAL, reply_to="app-us-west-1"
    ),
    "StatusReply": messages.StatusReply(
        request_id=5,
        txid="tx-17",
        record=RECORD,
        known=True,
        status=OptionStatus.PENDING,
        executed=False,
        option=COMMUTATIVE,
        writeset=(RECORD, RecordId("items", "item:000007")),
    ),
    "StatusRequest": messages.StatusRequest(txid="tx-17", record=RECORD, request_id=5),
    "Visibility": messages.Visibility(option=PHYSICAL, committed=True),
    "VisibilityBatch": messages.VisibilityBatch(
        visibilities=(
            messages.Visibility(option=COMMUTATIVE, committed=True),
            messages.Visibility(option=VALIDATION, committed=False),
        )
    ),
    # Protocol-local messages (the §5.2 baseline protocols).
    "PrepareRequest": twopc.PrepareRequest(
        txid="tx-30",
        record=RECORD,
        update=PhysicalUpdate(vread=2, new_value={"stock": 7}, is_delete=False),
    ),
    "PrepareReply": twopc.PrepareReply(txid="tx-30", record=RECORD, ok=True),
    "DecisionMessage": twopc.DecisionMessage(
        txid="tx-30",
        record=RECORD,
        update=CommutativeUpdate(deltas=(("stock", -1.0),)),
        commit=True,
    ),
    "DecisionAck": twopc.DecisionAck(txid="tx-30", record=RECORD),
    "QWWrite": quorumwrites.QWWrite(
        txid="tx-31",
        record=RECORD,
        update=PhysicalUpdate(vread=0, new_value={"stock": 1}),
        timestamp=12.5,
        writer="app-us-west-1",
    ),
    "QWAck": quorumwrites.QWAck(txid="tx-31", record=RECORD),
    "MsCommitRequest": megastore.MsCommitRequest(
        txid="tx-32",
        updates=(
            (RECORD, PhysicalUpdate(vread=1, new_value={"stock": 5})),
            (RecordId("orders", "o-88"), ReadValidation(vread=2)),
        ),
        reply_to="app-us-west-1",
    ),
    "MsCommitResult": megastore.MsCommitResult(txid="tx-32", committed=True),
    "MsLogAppend": megastore.MsLogAppend(
        position=3,
        entries=(("tx-32", ((RECORD, ReadValidation(vread=1)),)), ("tx-33", ())),
    ),
    "MsLogAck": megastore.MsLogAck(position=3),
}


def _equal(a, b):
    """Structural equality that sees through CStruct (identity-equality
    value object) and nested dataclass fields."""
    if isinstance(a, CStruct) or isinstance(b, CStruct):
        return (
            isinstance(a, CStruct)
            and isinstance(b, CStruct)
            and len(a.commands) == len(b.commands)
            and all(_equal(x, y) for x, y in zip(a.commands, b.commands))
        )
    if dataclasses.is_dataclass(a) and not isinstance(a, type):
        return type(a) is type(b) and all(
            _equal(getattr(a, f.name), getattr(b, f.name))
            for f in dataclasses.fields(a)
        )
    if isinstance(a, (tuple, list)):
        return (
            isinstance(b, (tuple, list))
            and type(a) is type(b)
            and len(a) == len(b)
            and all(_equal(x, y) for x, y in zip(a, b))
        )
    if isinstance(a, dict):
        return (
            isinstance(b, dict)
            and a.keys() == b.keys()
            and all(_equal(v, b[k]) for k, v in a.items())
        )
    return a == b


def _message_classes():
    return [
        cls
        for name in dir(messages)
        if inspect.isclass(cls := getattr(messages, name))
        and dataclasses.is_dataclass(cls)
        and cls.__module__ == "repro.core.messages"
    ]


REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def test_registry_covers_every_message_type():
    """Single source of truth: the WIRE-codec static rule must be clean
    on the committed tree — a new wire-reachable message type without a
    frozen/slots/codec entry fails here (and in ``repro analyze``)."""
    findings = list(WIRE_CODEC.check(Project(REPO_ROOT)))
    assert not findings, "\n".join(
        f"{f.location()}: {f.message}" for f in findings
    )


def test_core_messages_all_registered():
    """Every class in core/messages.py has a codec entry (the analyzer
    only requires this for *reachable* classes; the core module is all
    wire types by definition)."""
    expected = {cls.__name__ for cls in _message_classes()}
    registered = {cls.__name__ for cls in codec.MESSAGE_TYPES}
    assert expected <= registered, (
        f"codec registry missing {sorted(expected - registered)}"
    )


def test_tripwire_fires_without_rc_codec_entries():
    """Re-enact the hazard the rule guards against: strip the six Rc*
    registry entries from transport/codec.py (in memory only) and the
    analyzer must name every stripped message type."""
    project = Project(REPO_ROOT)
    files = []
    for file in project.files:
        if file.path == "src/repro/transport/codec.py":
            source = "\n".join(
                line
                for line in file.source.splitlines()
                if not line.strip().startswith("_messages.Rc")
            )
            files.append(SourceFile(file.path, source))
        else:
            files.append(file)
    findings = list(WIRE_CODEC.check(Project(REPO_ROOT, files=files)))
    flagged = {
        finding.message.split()[2]
        for finding in findings
        if "not registered" in finding.message
    }
    assert flagged == {
        "RcApply",
        "RcCommitRequest",
        "RcDecision",
        "RcPrepare",
        "RcPrepareReply",
        "RcVote",
    }
    assert all(f.path == "src/repro/core/messages.py" for f in findings)


def test_every_message_type_has_a_sample():
    expected = {cls.__name__ for cls in codec.MESSAGE_TYPES}
    assert set(SAMPLES) == expected, (
        "add a round-trip sample for new message types: "
        f"{sorted(expected - set(SAMPLES))}; "
        f"drop stale samples: {sorted(set(SAMPLES) - expected)}"
    )


def test_every_registered_type_declares_slots():
    """Messages are the simulator's hot allocation path: a type without
    ``__slots__`` grows a per-instance ``__dict__`` and silently gives
    back the memory/speed the slotted dataclasses bought."""
    for cls in (*codec.MESSAGE_TYPES, *codec.VALUE_TYPES):
        assert "__slots__" in cls.__dict__, (
            f"{cls.__name__} must declare __slots__ "
            "(dataclass(frozen=True, slots=True) or an explicit tuple)"
        )
    # Declaring __slots__ is not enough — a base class without them still
    # reintroduces the per-instance dict, so check real instances too.
    for name, sample in SAMPLES.items():
        assert not hasattr(sample, "__dict__"), (
            f"{name} instances carry a __dict__ — a base class without "
            "__slots__ crept into its MRO"
        )


@pytest.mark.parametrize("name", sorted(SAMPLES))
def test_round_trip_lossless(name):
    original = SAMPLES[name]
    restored = decode(encode(original))
    assert _equal(restored, original)
    assert type(restored) is type(original)


@pytest.mark.parametrize("name", sorted(SAMPLES))
def test_round_trip_through_json_frames(name):
    original = SAMPLES[name]
    envelope = {"src": "a", "src_dc": "us-west", "dst": "b", "msg": encode(original)}
    payload = encode_frame_payload(envelope, JsonCodec())
    back = decode_frame_payload(payload)
    assert _equal(decode(back["msg"]), original)


def test_tuples_survive_the_wire():
    restored = decode(encode(SAMPLES["CatchUp"]))
    assert isinstance(restored.applied_ids, tuple)
    chunk = decode(encode(SAMPLES["SnapshotChunk"]))
    assert isinstance(chunk.records, tuple)
    assert isinstance(chunk.records[0], tuple)
    assert chunk.records[1][3] is None


def test_cstruct_and_status_round_trip():
    msg = decode(encode(SAMPLES["MPhase1b"]))
    assert isinstance(msg.cstruct, CStruct)
    assert _equal(msg.cstruct, CSTRUCT)
    assert msg.cstruct.commands[0].status is OptionStatus.PENDING


def test_unregistered_type_is_a_loud_error():
    @dataclasses.dataclass(frozen=True)
    class Rogue:
        x: int

    with pytest.raises(CodecError, match="no codec entry"):
        encode(Rogue(x=1))


def test_non_string_dict_keys_rejected():
    with pytest.raises(CodecError, match="non-string dict key"):
        encode({1: "a"})


def test_resolve_codec_json_default():
    byte_codec, warning = resolve_codec("json")
    assert byte_codec.name == "json"
    assert warning is None


def test_resolve_codec_msgpack_degrades_without_package():
    byte_codec, warning = resolve_codec("msgpack")
    try:
        import msgpack  # noqa: F401
    except ImportError:
        assert byte_codec.name == "json"
        assert "repro[transport]" in warning
    else:
        assert byte_codec.name == "msgpack"
        assert warning is None


def test_msgpack_round_trip_if_available():
    msgpack_mod = pytest.importorskip("msgpack")
    assert msgpack_mod is not None
    byte_codec, _ = resolve_codec("msgpack")
    envelope = {"src": "a", "src_dc": "us-west", "dst": "b", "msg": encode(CSTRUCT)}
    back = decode(decode_frame_payload(encode_frame_payload(envelope, byte_codec))["msg"])
    assert _equal(back, CSTRUCT)


def test_unknown_codec_rejected():
    with pytest.raises(CodecError, match="unknown codec"):
        resolve_codec("protobuf")
