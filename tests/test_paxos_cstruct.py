"""Unit and property tests for the Generalized Paxos cstruct lattice."""

from dataclasses import dataclass

import pytest
from hypothesis import given, settings, strategies as st

from repro.paxos.cstruct import CStruct


@dataclass(frozen=True)
class Cmd:
    """Test command: commutative commands commute with each other only."""

    cid: str
    commutative: bool = False
    status: str = "pending"

    @property
    def command_id(self) -> str:
        return self.cid

    def commutes_with(self, other: "Cmd") -> bool:
        return self.commutative and other.commutative


# A fixed pool: d* are commutative deltas, x* are physical (non-commuting).
POOL = {
    "d1": Cmd("d1", commutative=True),
    "d2": Cmd("d2", commutative=True),
    "d3": Cmd("d3", commutative=True),
    "x1": Cmd("x1", commutative=False),
    "x2": Cmd("x2", commutative=False),
}


def cs(*cids: str) -> CStruct:
    return CStruct([POOL[cid] for cid in cids])


@st.composite
def cstructs(draw):
    subset = draw(st.lists(st.sampled_from(sorted(POOL)), unique=True, max_size=5))
    permuted = draw(st.permutations(subset))
    return CStruct([POOL[cid] for cid in permuted])


class TestBasics:
    def test_empty(self):
        empty = CStruct()
        assert len(empty) == 0
        assert not empty.contains_id("d1")

    def test_append_is_persistent(self):
        a = CStruct()
        b = a.append(POOL["d1"])
        assert len(a) == 0 and len(b) == 1
        assert b.contains_id("d1")

    def test_duplicate_append_rejected(self):
        a = cs("d1")
        with pytest.raises(ValueError):
            a.append(POOL["d1"])

    def test_duplicate_construction_rejected(self):
        with pytest.raises(ValueError):
            CStruct([POOL["d1"], POOL["d1"]])

    def test_command_lookup(self):
        a = cs("d1", "x1")
        assert a.command("x1") is POOL["x1"]
        assert a.command("zz") is None

    def test_replace_swaps_status(self):
        pending = Cmd("o1", commutative=False, status="pending")
        accepted = Cmd("o1", commutative=False, status="accepted")
        a = CStruct([pending])
        b = a.replace(accepted)
        assert b.command("o1").status == "accepted"
        assert a.command("o1").status == "pending"

    def test_replace_missing_rejected(self):
        with pytest.raises(ValueError):
            CStruct().replace(POOL["d1"])


class TestPartialOrder:
    def test_empty_is_prefix_of_everything(self):
        assert CStruct().is_prefix_of(cs("d1", "x1"))

    def test_sequence_prefix(self):
        assert cs("x1").is_prefix_of(cs("x1", "x2"))
        assert not cs("x2").is_prefix_of(cs("x1", "x2"))

    def test_commuting_reorder_is_equal(self):
        assert cs("d1", "d2").trace_equal(cs("d2", "d1"))

    def test_non_commuting_reorder_not_equal(self):
        assert not cs("x1", "x2").trace_equal(cs("x2", "x1"))
        assert not cs("x1", "x2").is_prefix_of(cs("x2", "x1"))

    def test_commutative_subset_is_prefix(self):
        assert cs("d2").is_prefix_of(cs("d1", "d2", "d3"))

    def test_physical_blocks_commutation(self):
        # d1 after x1 cannot be pulled before x1.
        assert not cs("d1").is_prefix_of(cs("x1", "d1"))
        assert cs("x1").is_prefix_of(cs("x1", "d1"))

    def test_status_must_match(self):
        pending = CStruct([Cmd("o", status="pending")])
        accepted = CStruct([Cmd("o", status="accepted")])
        assert not pending.is_prefix_of(accepted)

    @given(cstructs())
    def test_reflexive(self, a):
        assert a.is_prefix_of(a)

    @given(cstructs(), cstructs())
    @settings(max_examples=200)
    def test_antisymmetric(self, a, b):
        if a.is_prefix_of(b) and b.is_prefix_of(a):
            assert a.trace_equal(b)

    @given(cstructs(), cstructs(), cstructs())
    @settings(max_examples=200)
    def test_transitive(self, a, b, c):
        if a.is_prefix_of(b) and b.is_prefix_of(c):
            assert a.is_prefix_of(c)

    @given(cstructs(), st.sampled_from(sorted(POOL)))
    def test_append_extends(self, a, cid):
        if not a.contains_id(cid):
            assert a.is_prefix_of(a.append(POOL[cid]))


class TestGlb:
    def test_glb_of_identical(self):
        a = cs("d1", "x1")
        assert CStruct.glb([a, a]).trace_equal(a)

    def test_glb_common_prefix_sequences(self):
        a = cs("x1", "x2")
        b = cs("x1")
        assert CStruct.glb([a, b]).trace_equal(cs("x1"))

    def test_glb_disjoint_sequences_empty(self):
        assert len(CStruct.glb([cs("x1"), cs("x2")])) == 0

    def test_glb_commutative_intersection(self):
        a = cs("d1", "d2")
        b = cs("d2", "d3")
        assert CStruct.glb([a, b]).trace_equal(cs("d2"))

    def test_glb_divergent_orders_empty(self):
        a = cs("x1", "x2")
        b = cs("x2", "x1")
        assert len(CStruct.glb([a, b])) == 0

    def test_glb_requires_input(self):
        with pytest.raises(ValueError):
            CStruct.glb([])

    @given(cstructs(), cstructs())
    @settings(max_examples=200)
    def test_glb_is_lower_bound(self, a, b):
        meet = CStruct.glb([a, b])
        assert meet.is_prefix_of(a)
        assert meet.is_prefix_of(b)

    @given(cstructs(), cstructs())
    @settings(max_examples=200)
    def test_glb_commutes(self, a, b):
        assert CStruct.glb([a, b]).trace_equal(CStruct.glb([b, a]))

    @given(cstructs(), cstructs())
    @settings(max_examples=200)
    def test_glb_with_prefix_returns_prefix(self, a, b):
        if a.is_prefix_of(b):
            assert CStruct.glb([a, b]).trace_equal(a)


class TestLub:
    def test_lub_of_identical(self):
        a = cs("d1", "x1")
        assert CStruct.lub([a, a]).trace_equal(a)

    def test_lub_sequence_extension(self):
        assert CStruct.lub([cs("x1"), cs("x1", "x2")]).trace_equal(cs("x1", "x2"))

    def test_lub_commutative_union(self):
        merged = CStruct.lub([cs("d1", "d2"), cs("d2", "d3")])
        assert merged is not None
        assert merged.ids == {"d1", "d2", "d3"}

    def test_lub_conflicting_sequences_incompatible(self):
        # Two different physical updates with no common order: collision.
        assert CStruct.lub([cs("x1"), cs("x2")]) is None

    def test_lub_divergent_orders_incompatible(self):
        assert CStruct.lub([cs("x1", "x2"), cs("x2", "x1")]) is None

    def test_lub_status_divergence_incompatible(self):
        accepted = CStruct([Cmd("o", status="accepted")])
        rejected = CStruct([Cmd("o", status="rejected")])
        assert CStruct.lub([accepted, rejected]) is None

    def test_lub_chain_through_shared_element_incompatible(self):
        # A says x1 < x2; B has x2 followed by new x... classic example:
        # A=[x1, x2], B=[x2]: B ⊑ A? no (x2 not enabled in A).
        # lub must fail because x2's histories differ.
        assert CStruct.lub([cs("x1", "x2"), cs("x2")]) is None

    def test_compatible_predicate(self):
        assert CStruct.compatible([cs("d1"), cs("d2")])
        assert not CStruct.compatible([cs("x1"), cs("x2")])

    def test_lub_requires_input(self):
        with pytest.raises(ValueError):
            CStruct.lub([])

    @given(cstructs(), cstructs())
    @settings(max_examples=200)
    def test_lub_is_upper_bound(self, a, b):
        join = CStruct.lub([a, b])
        if join is not None:
            assert a.is_prefix_of(join)
            assert b.is_prefix_of(join)

    @given(cstructs(), cstructs())
    @settings(max_examples=200)
    def test_lub_commutes(self, a, b):
        ab = CStruct.lub([a, b])
        ba = CStruct.lub([b, a])
        if ab is None:
            assert ba is None
        else:
            assert ba is not None and ab.trace_equal(ba)

    @given(cstructs(), cstructs())
    @settings(max_examples=200)
    def test_lub_with_prefix_returns_extension(self, a, b):
        if a.is_prefix_of(b):
            join = CStruct.lub([a, b])
            assert join is not None and join.trace_equal(b)

    @given(cstructs(), cstructs())
    @settings(max_examples=200)
    def test_glb_lub_consistency(self, a, b):
        """If a join exists, the meet is dominated by both and the join
        dominates the meet."""
        join = CStruct.lub([a, b])
        meet = CStruct.glb([a, b])
        if join is not None:
            assert meet.is_prefix_of(join)
