"""Tests for the baseline protocols: 2PC, QW-3/QW-4, Megastore*."""

import pytest

from repro.core.options import RecordId
from repro.db.cluster import build_cluster
from repro.protocols.base import get_protocol
from repro.storage.schema import Constraint, TableSchema

ITEMS = TableSchema("items", constraints={"stock": Constraint(minimum=0)})


def make_cluster(protocol, seed=1, **kwargs):
    cluster = build_cluster(protocol, seed=seed, **kwargs)
    cluster.register_table(ITEMS)
    return cluster


def run_tx(cluster, fut, limit_ms=300_000):
    return cluster.sim.run_until(fut, limit=cluster.sim.now + limit_ms)


def drain(cluster, ms=5_000):
    cluster.sim.run(until=cluster.sim.now + ms)


class TestTwoPC:
    def test_commit_applies_everywhere(self):
        cluster = make_cluster("2pc")
        cluster.load_record("items", "i", {"stock": 10})
        client = cluster.add_client("us-west")
        tx = cluster.begin(client)
        run_tx(cluster, tx.read("items", "i"))
        tx.write("items", "i", {"stock": 9})
        outcome = run_tx(cluster, tx.commit())
        assert outcome.committed
        drain(cluster)
        for snap in cluster.committed_snapshots("items", "i").values():
            assert snap.value == {"stock": 9}

    def test_two_round_trips(self):
        """2PC pays two full rounds to ALL replicas — roughly twice the
        farthest RTT (~210ms from us-west)."""
        cluster = make_cluster("2pc", seed=2)
        cluster.load_record("items", "i", {"stock": 10})
        client = cluster.add_client("us-west")
        tx = cluster.begin(client)
        run_tx(cluster, tx.read("items", "i"))
        tx.write("items", "i", {"stock": 9})
        outcome = run_tx(cluster, tx.commit())
        assert 380 <= outcome.latency_ms <= 520

    def test_conflicting_transactions_one_aborts(self):
        cluster = make_cluster("2pc", seed=3)
        cluster.load_record("items", "hot", {"stock": 50})
        c1 = cluster.add_client("us-west")
        c2 = cluster.add_client("eu-west")
        t1, t2 = cluster.begin(c1), cluster.begin(c2)
        run_tx(cluster, t1.read("items", "hot"))
        run_tx(cluster, t2.read("items", "hot"))
        t1.write("items", "hot", {"stock": 49})
        t2.write("items", "hot", {"stock": 48})
        o1 = run_tx(cluster, t1.commit())
        o2 = run_tx(cluster, t2.commit())
        assert not (o1.committed and o2.committed)

    def test_aborts_when_replica_unreachable(self):
        """2PC needs ALL replicas; a failed DC forces an abort on timeout
        (the blocking weakness the paper calls out)."""
        cluster = make_cluster("2pc", seed=4)
        cluster.load_record("items", "i", {"stock": 10})
        cluster.fail_datacenter("ap-southeast")
        client = cluster.add_client("us-west")
        tx = cluster.begin(client)
        run_tx(cluster, tx.read("items", "i"))
        tx.write("items", "i", {"stock": 9})
        outcome = run_tx(cluster, tx.commit(), limit_ms=600_000)
        assert not outcome.committed

    def test_commutative_prepare_respects_constraint(self):
        cluster = make_cluster("2pc", seed=5)
        cluster.load_record("items", "scarce", {"stock": 2})
        client = cluster.add_client("us-west")

        def buy(amount):
            tx = cluster.begin(client)
            run_tx(cluster, tx.read("items", "scarce"))
            tx.decrement("items", "scarce", "stock", amount)
            return run_tx(cluster, tx.commit())

        assert buy(2).committed
        drain(cluster)
        assert not buy(1).committed  # stock exhausted -> version check fails
        drain(cluster)
        for snap in cluster.committed_snapshots("items", "scarce").values():
            assert snap.value["stock"] == 0

    def test_locks_released_after_abort(self):
        cluster = make_cluster("2pc", seed=6)
        cluster.load_record("items", "i", {"stock": 10})
        client = cluster.add_client("us-west")
        # A tx with stale vread aborts...
        tx = cluster.begin(client)
        tx._writeset.put("items", "i", 99, {"stock": 1})
        assert not run_tx(cluster, tx.commit()).committed
        drain(cluster)
        # ...and the record is still writable.
        tx2 = cluster.begin(client)
        run_tx(cluster, tx2.read("items", "i"))
        tx2.write("items", "i", {"stock": 9})
        assert run_tx(cluster, tx2.commit()).committed


    def test_reordered_prepare_after_decision_does_not_leak_lock(self):
        """A prepare that arrives after its own (aborted) decision must not
        acquire the lock: nothing would ever release it, and every later
        transaction on the record would abort (regression for the abort
        storm this once caused under link jitter)."""
        from repro.core.options import PhysicalUpdate, RecordId
        from repro.protocols.twopc import (
            DecisionMessage,
            PrepareRequest,
            TwoPCStorageNode,
        )

        cluster = make_cluster("2pc", seed=7)
        cluster.load_record("items", "i", {"stock": 10})
        record = RecordId("items", "i")
        node_id = cluster.placement.replica_in(record, "us-west")
        node = cluster.storage_nodes[node_id]
        assert isinstance(node, TwoPCStorageNode)
        update = PhysicalUpdate(vread=1, new_value={"stock": 9})
        client = cluster.add_client("us-west")

        # Decision (abort) overtakes the prepare.  Replies go back to the
        # coordinator, which ignores them for the unknown txid.
        node.handle_decision_message(
            DecisionMessage(txid="t-lost", record=record, update=update, commit=False),
            src_id=client.node_id,
        )
        node.handle_prepare_request(
            PrepareRequest(txid="t-lost", record=record, update=update),
            src_id=client.node_id,
        )
        assert record not in node._locks
        tx = cluster.begin(client)
        run_tx(cluster, tx.read("items", "i"))
        tx.write("items", "i", {"stock": 5})
        assert run_tx(cluster, tx.commit()).committed


class TestQuorumWrites:
    def test_qw3_faster_than_qw4(self):
        latencies = {}
        for proto in ("qw3", "qw4"):
            cluster = make_cluster(proto, seed=7)
            cluster.load_record("items", "i", {"stock": 10})
            client = cluster.add_client("us-west")
            tx = cluster.begin(client)
            run_tx(cluster, tx.read("items", "i"))
            tx.write("items", "i", {"stock": 9})
            latencies[proto] = run_tx(cluster, tx.commit()).latency_ms
        # From us-west: 3rd closest is Tokyo (120ms), 4th is EU (170ms).
        assert latencies["qw3"] < latencies["qw4"]

    def test_qw_never_aborts(self):
        cluster = make_cluster("qw3", seed=8)
        cluster.load_record("items", "hot", {"stock": 1})
        outcomes = []
        futures = []
        for dc in cluster.placement.datacenters:
            client = cluster.add_client(dc)
            tx = cluster.begin(client)
            run_tx(cluster, tx.read("items", "hot"))
            tx.write("items", "hot", {"stock": 0})
            futures.append(tx.commit())
        outcomes = [run_tx(cluster, f) for f in futures]
        assert all(o.committed for o in outcomes)

    def test_qw_violates_stock_constraint(self):
        """The guarantee gap the paper's comparison rests on: QW commits
        everything, so concurrent decrements oversell."""
        cluster = make_cluster("qw3", seed=9)
        cluster.load_record("items", "scarce", {"stock": 2})
        futures = []
        for dc in cluster.placement.datacenters:
            client = cluster.add_client(dc)
            tx = cluster.begin(client)
            run_tx(cluster, tx.read("items", "scarce"))
            # LWW write computed from a (stale) local read: lost updates.
            value = dict(tx.observed_value("items", "scarce"))
            value["stock"] = value["stock"] - 1
            tx.write("items", "scarce", value)
            futures.append(tx.commit())
        outcomes = [run_tx(cluster, f) for f in futures]
        drain(cluster, 10_000)
        assert all(o.committed for o in outcomes)  # 5 "successful" buys
        final = cluster.read_committed("items", "scarce").value["stock"]
        assert final > 2 - 5  # updates were lost: stock did NOT drop by 5

    def test_replicas_converge_lww(self):
        cluster = make_cluster("qw4", seed=10)
        cluster.load_record("items", "i", {"stock": 10})
        futures = []
        for index, dc in enumerate(cluster.placement.datacenters):
            client = cluster.add_client(dc)
            tx = cluster.begin(client)
            tx._writeset.put("items", "i", 1, {"stock": index})
            futures.append(tx.commit())
        for fut in futures:
            run_tx(cluster, fut)
        drain(cluster, 10_000)
        values = {
            snap.value["stock"]
            for snap in cluster.committed_snapshots("items", "i").values()
        }
        assert len(values) == 1  # all replicas agree on the last writer


class TestMegastore:
    def test_commit_and_replication(self):
        cluster = make_cluster("megastore", seed=11)
        cluster.load_record("items", "i", {"stock": 10})
        client = cluster.add_client("us-west")
        tx = cluster.begin(client)
        run_tx(cluster, tx.read("items", "i"))
        tx.write("items", "i", {"stock": 9})
        outcome = run_tx(cluster, tx.commit())
        assert outcome.committed
        drain(cluster, 10_000)
        for snap in cluster.committed_snapshots("items", "i").values():
            assert snap.value == {"stock": 9}

    def test_local_master_is_fast_at_zero_load(self):
        cluster = make_cluster("megastore", seed=12)
        cluster.load_record("items", "i", {"stock": 10})
        client = cluster.add_client("us-west")  # co-located with master
        tx = cluster.begin(client)
        run_tx(cluster, tx.read("items", "i"))
        tx.write("items", "i", {"stock": 9})
        outcome = run_tx(cluster, tx.commit())
        # One master->quorum round trip (3rd closest from us-west: 120ms).
        assert outcome.latency_ms <= 200

    def test_conflicting_transactions_abort_at_master(self):
        cluster = make_cluster("megastore", seed=13)
        cluster.load_record("items", "hot", {"stock": 50})
        c1 = cluster.add_client("us-west")
        c2 = cluster.add_client("us-west")
        t1, t2 = cluster.begin(c1), cluster.begin(c2)
        run_tx(cluster, t1.read("items", "hot"))
        run_tx(cluster, t2.read("items", "hot"))
        t1.write("items", "hot", {"stock": 49})
        t2.write("items", "hot", {"stock": 48})
        f1, f2 = t1.commit(), t2.commit()
        o1, o2 = run_tx(cluster, f1), run_tx(cluster, f2)
        assert o1.committed != o2.committed

    def test_non_conflicting_transactions_batch(self):
        """Paxos-CP: disjoint transactions share a log position instead of
        serializing one-at-a-time."""
        cluster = make_cluster("megastore", seed=14)
        for i in range(4):
            cluster.load_record("items", f"i{i}", {"stock": 10})
        clients = [cluster.add_client("us-west") for _ in range(4)]
        futures = []
        for i, client in enumerate(clients):
            tx = cluster.begin(client)
            run_tx(cluster, tx.read("items", f"i{i}"))
            tx.write("items", f"i{i}", {"stock": 9})
            futures.append(tx.commit())
        outcomes = [run_tx(cluster, f) for f in futures]
        assert all(o.committed for o in outcomes)
        # All four rode few log positions (batching), so the slowest
        # latency stays near one replication round, not four.
        assert max(o.latency_ms for o in outcomes) < 450

    def test_serialization_queues_under_load(self):
        """The Megastore* bottleneck: a burst of conflicting-or-not
        transactions serializes through log positions, so tail latency
        grows with the queue."""
        cluster = make_cluster("megastore", seed=15)
        for i in range(40):
            cluster.load_record("items", f"i{i}", {"stock": 10})
        clients = [cluster.add_client("us-west") for _ in range(40)]
        futures = []
        for i, client in enumerate(clients):
            tx = cluster.begin(client)
            run_tx(cluster, tx.read("items", f"i{i}"))
            tx.write("items", f"i{i}", {"stock": 9})
            futures.append(tx.commit())
        outcomes = [run_tx(cluster, f, limit_ms=900_000) for f in futures]
        assert all(o.committed for o in outcomes)
        latencies = sorted(o.latency_ms for o in outcomes)
        # 40 txs / batch 4 = ~10 sequential positions of ~120ms each:
        # the tail must be several times the head.
        assert latencies[-1] > 3 * latencies[0]

    def test_multiple_partitions_rejected(self):
        with pytest.raises(ValueError, match="entity group"):
            build_cluster("megastore", partitions_per_table=2)


class TestAbortPathsThroughProtocolInterface:
    """Conflict/abort paths for every baseline, driven through the
    :class:`~repro.protocols.base.Protocol` descriptors: the roles come
    from the registry factories and the observed behavior must match the
    descriptor's declared abort vocabulary."""

    def test_twopc_aborted_participant_releases_its_lock(self):
        """An aborted 2PC participant (prepare lost to a conflict) must
        release on the abort decision — the loser's lock cannot outlive
        the round."""
        descriptor = get_protocol("2pc")
        assert "lock-conflict" in descriptor.abort_reasons
        cluster = make_cluster("2pc", seed=31)
        cluster.load_record("items", "hot", {"stock": 10})
        c1 = cluster.add_client("us-west")
        c2 = cluster.add_client("us-east")
        t1, t2 = cluster.begin(c1), cluster.begin(c2)
        run_tx(cluster, t1.read("items", "hot"))
        run_tx(cluster, t2.read("items", "hot"))
        t1.write("items", "hot", {"stock": 9})
        t2.write("items", "hot", {"stock": 8})
        f1, f2 = t1.commit(), t2.commit()
        o1, o2 = run_tx(cluster, f1), run_tx(cluster, f2)
        # Racing all-replica prepares conflict: at least one aborts (both
        # may — each can win a subset of replicas and concede).
        assert not (o1.committed and o2.committed)
        drain(cluster, 30_000)
        # The abort released every participant lock: a fresh transaction
        # on the same record commits without waiting anything out.
        t3 = cluster.begin(c1)
        run_tx(cluster, t3.read("items", "hot"))
        t3.write("items", "hot", {"stock": 7})
        assert run_tx(cluster, t3.commit()).committed
        for node in cluster.storage_nodes.values():
            assert not node._locks

    def test_quorum_write_divergence_is_real_and_unflagged(self):
        """QW declares NO abort vocabulary — and indeed commits through a
        partition, leaving the cut-off replica divergent (the guarantee
        gap the paper's §5.2 comparison rests on)."""
        descriptor = get_protocol("qw3")
        assert descriptor.abort_reasons == ()
        cluster = make_cluster("qw3", seed=32)
        cluster.load_record("items", "i", {"stock": 10})
        cluster.fail_datacenter("ap-southeast")
        client = cluster.add_client("us-west")
        tx = cluster.begin(client)
        run_tx(cluster, tx.read("items", "i"))
        tx.write("items", "i", {"stock": 9})
        assert run_tx(cluster, tx.commit()).committed  # W=3 of 4 alive
        drain(cluster, 30_000)
        snapshots = cluster.committed_snapshots("items", "i")
        versions = {node: snap.version for node, snap in snapshots.items()}
        behind = cluster.placement.replica_in(RecordId("items", "i"), "ap-southeast")
        assert versions[behind] == 1  # diverged silently
        assert all(v == 2 for node, v in versions.items() if node != behind)

    def test_megastore_log_position_conflict_aborts_exactly_one(self):
        descriptor = get_protocol("megastore")
        assert descriptor.abort_reasons == ("log-position-conflict",)
        cluster = make_cluster("megastore", seed=33)
        cluster.load_record("items", "hot", {"stock": 10})
        c1 = cluster.add_client("us-west")
        c2 = cluster.add_client("us-west")
        t1, t2 = cluster.begin(c1), cluster.begin(c2)
        run_tx(cluster, t1.read("items", "hot"))
        run_tx(cluster, t2.read("items", "hot"))
        t1.write("items", "hot", {"stock": 9})
        t2.write("items", "hot", {"stock": 8})
        f1, f2 = t1.commit(), t2.commit()
        o1, o2 = run_tx(cluster, f1), run_tx(cluster, f2)
        # Both contend for the same log position: the master serializes,
        # exactly one wins it.
        assert o1.committed != o2.committed
        drain(cluster, 30_000)
        values = {
            snap.value["stock"]
            for snap in cluster.committed_snapshots("items", "hot").values()
        }
        assert len(values) == 1

    def test_repcommit_minority_dc_partition_aborts(self):
        """Replicated Commit's declared minority/vote-timeout aborts: a
        proposer cut off from a majority of DCs gives up instead of
        blocking, and the healed cluster is immediately writable."""
        descriptor = get_protocol("repcommit")
        assert "minority" in descriptor.abort_reasons
        assert "vote-timeout" in descriptor.abort_reasons
        cluster = make_cluster("repcommit", seed=34)
        cluster.load_record("items", "i", {"stock": 10})
        client = cluster.add_client("us-west")
        tx = cluster.begin(client)
        run_tx(cluster, tx.read("items", "i"))
        for dc in ("us-east", "eu-west", "ap-northeast"):
            cluster.fail_datacenter(dc)
        tx.write("items", "i", {"stock": 9})
        assert not run_tx(cluster, tx.commit(), limit_ms=600_000).committed
        for dc in ("us-east", "eu-west", "ap-northeast"):
            cluster.recover_datacenter(dc)
        drain(cluster, 30_000)
        tx2 = cluster.begin(client)
        run_tx(cluster, tx2.read("items", "i"))
        tx2.write("items", "i", {"stock": 8})
        assert run_tx(cluster, tx2.commit()).committed
