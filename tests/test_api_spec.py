"""The typed scenario-spec API: signatures, JSON round-trip, rejection.

The spec dataclasses are a public contract: the golden-signature tests
pin their exact field names and defaults so any change is a deliberate,
reviewed act (specs are committed as JSON artifacts and must keep
loading).  The legacy keyword surface was removed — the tests pin the
loud TypeError so old call sites fail with a pointer to the raw
harness, and verify spec calls drive the same trajectory as direct
harness calls, byte for byte.
"""

import dataclasses
import json

import pytest

from repro.api import ClusterSpec, ScenarioSpec, build_cluster, run_scenario
from repro.bench.harness import run_scenario as harness_run_scenario
from repro.cli import main
from repro.faults.schedule import named_schedule

#: toy scale — same code paths as the paper-scale runs, seconds of CPU.
SMALL = dict(clients=5, items=80, warmup_s=1.0, measure_s=6.0)


def _signature(cls):
    return [(f.name, f.default) for f in dataclasses.fields(cls)]


def test_cluster_spec_golden_signature():
    assert _signature(ClusterSpec) == [
        ("protocol", "mdcc"),
        ("datacenters", None),
        ("partitions_per_table", 2),
        ("master_policy", None),
        ("seed", 1),
        ("gamma_policy", "static"),
        ("batch_ms", 0.0),
        ("demarcation", True),
        ("elastic", False),
    ]


def test_scenario_spec_golden_signature():
    fields = _signature(ScenarioSpec)
    assert fields[0][0] == "cluster"  # default_factory, no plain default
    assert fields[1:] == [
        ("workload", "micro"),
        ("clients", 25),
        ("items", 1_000),
        ("warmup_s", 5.0),
        ("measure_s", 30.0),
        ("hotspot", None),
        ("locality", None),
        ("phase_s", 20.0),
        ("audit", True),
        ("fail_dc", None),
        ("fail_at_s", None),
        ("schedule", None),
        ("bucket_s", 5.0),
        ("victim", None),
        ("replacement", None),
        ("donor", None),
    ]


# ----------------------------------------------------------------------
# JSON round-trip
# ----------------------------------------------------------------------
def test_spec_round_trips_through_json():
    spec = ScenarioSpec(
        cluster=ClusterSpec(
            protocol="multi",
            datacenters=("us-west", "us-east", "eu-west"),
            master_policy="fixed:us-east",
            seed=9,
            batch_ms=5.0,
        ),
        workload="geoshift",
        clients=7,
        phase_s=4.0,
    )
    assert ScenarioSpec.from_json(spec.to_json()) == spec


def test_spec_json_is_canonical():
    rendered = ScenarioSpec().to_json()
    assert rendered.endswith("\n")
    assert rendered == json.dumps(json.loads(rendered), indent=2, sort_keys=True) + "\n"


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(ValueError, match="clientz"):
        ScenarioSpec.from_dict({"clientz": 5})
    with pytest.raises(ValueError, match="protocl"):
        ClusterSpec.from_dict({"protocl": "mdcc"})


def test_spec_validation():
    with pytest.raises(ValueError, match="micro workload"):
        ScenarioSpec(workload="tpcw", hotspot=0.1)
    with pytest.raises(ValueError, match="unknown schedule"):
        ScenarioSpec(schedule="meteor-strike")
    with pytest.raises(ValueError, match="MDCC variant"):
        ClusterSpec(protocol="2pc", master_policy="adaptive")
    with pytest.raises(ValueError, match="dc-replace"):
        ScenarioSpec(schedule="dc-outage", victim="us-east")
    with pytest.raises(ValueError, match="control plane"):
        ScenarioSpec(schedule="dc-replace", victim="us-west")


# ----------------------------------------------------------------------
# The legacy keyword surface is gone: specs are the only entry point
# ----------------------------------------------------------------------
def test_legacy_keyword_surfaces_removed():
    schedule = named_schedule("dc-outage", start_ms=1_000.0, duration_ms=6_000.0)
    with pytest.raises(TypeError, match="legacy protocol-string surface was removed"):
        build_cluster("fast", seed=11)
    with pytest.raises(TypeError, match="FaultSchedule surface was removed"):
        run_scenario(schedule, variant="mdcc")


def test_spec_and_direct_harness_calls_agree():
    """run_scenario(spec) drives the same harness as a raw-keyword call."""
    spec = ScenarioSpec(
        cluster=ClusterSpec(protocol="mdcc", seed=3),
        schedule="dc-outage",
        clients=4,
        items=60,
        warmup_s=1.0,
        measure_s=6.0,
    )
    via_spec = run_scenario(spec)
    schedule = named_schedule("dc-outage", start_ms=1_000.0, duration_ms=6_000.0)
    direct = harness_run_scenario(
        schedule,
        variant="mdcc",
        num_clients=4,
        num_items=60,
        warmup_ms=1_000.0,
        measure_ms=6_000.0,
        seed=3,
    )
    assert via_spec.as_dict() == direct.as_dict()


def test_spec_entry_points_reject_stray_kwargs():
    with pytest.raises(TypeError, match="self-contained"):
        build_cluster(ClusterSpec(), seed=3)
    with pytest.raises(TypeError, match="self-contained"):
        run_scenario(ScenarioSpec(), num_clients=3)


# ----------------------------------------------------------------------
# CLI integration: --spec files and the envelope's spec block
# ----------------------------------------------------------------------
def test_run_spec_file_and_envelope(tmp_path, capsys):
    spec = ScenarioSpec(cluster=ClusterSpec(seed=5), **SMALL)
    path = tmp_path / "scenario.json"
    path.write_text(spec.to_json())
    code = main(["run", "--spec", str(path), "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["commits"] > 0
    assert payload["spec"] == spec.to_dict()
    # ...and the spec round-trips out of the envelope back into a run.
    assert ScenarioSpec.from_dict(payload["spec"]) == spec


def test_run_spec_file_matches_flag_invocation(capsys, tmp_path):
    flags = ["--clients", "5", "--items", "80", "--warmup-s", "1",
             "--measure-s", "6", "--seed", "5", "--json"]
    assert main(["run", "--protocol", "mdcc", *flags]) == 0
    via_flags = capsys.readouterr().out
    # master_policy="hash" pins the argparse default; a spec leaving it
    # None runs identically but renders a different envelope block.
    spec = ScenarioSpec(cluster=ClusterSpec(seed=5, master_policy="hash"), **SMALL)
    path = tmp_path / "scenario.json"
    path.write_text(spec.to_json())
    assert main(["run", "--spec", str(path), "--json"]) == 0
    via_spec = capsys.readouterr().out
    assert via_flags == via_spec  # identical JSON, byte for byte


def test_run_spec_file_scheduled_scenario(tmp_path, capsys):
    spec = ScenarioSpec(
        cluster=ClusterSpec(protocol="mdcc", seed=7),
        schedule="dc-outage",
        bucket_s=3.0,
        **SMALL,
    )
    path = tmp_path / "chaos.json"
    path.write_text(spec.to_json())
    code = main(["run", "--spec", str(path)])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schedule"] == "dc-outage"
    assert payload["invariants"]["clean"] is True
    assert payload["spec"] == spec.to_dict()


def test_run_spec_file_bad_spec_rejected(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"workload": "quantum"}')
    with pytest.raises(SystemExit, match="bad scenario spec"):
        main(["run", "--spec", str(path)])


def test_chaos_envelope_carries_spec(capsys):
    code = main(
        ["chaos", "dc-outage", "--clients", "5", "--items", "80",
         "--warmup-s", "1", "--measure-s", "6", "--bucket-s", "3"]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    spec = ScenarioSpec.from_dict(payload["spec"])
    assert spec.schedule == "dc-outage"
    assert spec.cluster.protocol == "mdcc"
