"""End-to-end MDCC protocol tests over the simulated five-DC WAN.

These exercise the full stack — coordinator, acceptors, master recovery,
visibility — and check the paper's headline guarantees: one-round-trip
fast commits, write-write conflict detection (no lost updates), atomic
durability across records, commutative commits, and constraint safety.
"""

import pytest

from repro.core.config import MDCCConfig, ProtocolVariant
from repro.db.cluster import build_cluster
from repro.storage.schema import Constraint, TableSchema

ITEMS = TableSchema("items", constraints={"stock": Constraint(minimum=0)})


def make_cluster(protocol="mdcc", seed=1, **kwargs):
    cluster = build_cluster(protocol, seed=seed, **kwargs)
    cluster.register_table(ITEMS)
    cluster.register_table(TableSchema("orders"))
    return cluster


def run_tx(cluster, fut, limit_ms=120_000):
    return cluster.sim.run_until(fut, limit=cluster.sim.now + limit_ms)


def drain(cluster, ms=5_000):
    cluster.sim.run(until=cluster.sim.now + ms)


class TestFastPathCommit:
    def test_single_record_write_commits(self):
        cluster = make_cluster()
        cluster.load_record("items", "i1", {"stock": 10})
        client = cluster.add_client("us-west")
        tx = cluster.begin(client)
        run_tx(cluster, tx.read("items", "i1"))
        tx.write("items", "i1", {"stock": 9})
        outcome = run_tx(cluster, tx.commit())
        assert outcome.committed
        assert outcome.fast_path

    def test_one_round_trip_latency(self):
        """The headline: commit in a single wide-area round trip — the RTT
        to the 4th-closest data center (EU @ 170ms from us-west)."""
        cluster = make_cluster(seed=3)
        cluster.load_record("items", "i1", {"stock": 10})
        client = cluster.add_client("us-west")
        tx = cluster.begin(client)
        run_tx(cluster, tx.read("items", "i1"))
        tx.write("items", "i1", {"stock": 9})
        outcome = run_tx(cluster, tx.commit())
        assert outcome.committed
        assert 150 <= outcome.latency_ms <= 230  # ~1 RTT, not 2

    def test_replicas_converge(self):
        cluster = make_cluster()
        cluster.load_record("items", "i1", {"stock": 10})
        client = cluster.add_client("eu-west")
        tx = cluster.begin(client)
        run_tx(cluster, tx.read("items", "i1"))
        tx.write("items", "i1", {"stock": 5})
        run_tx(cluster, tx.commit())
        drain(cluster)
        for snap in cluster.committed_snapshots("items", "i1").values():
            assert snap.value == {"stock": 5}
            assert snap.version == 2

    def test_commit_from_any_datacenter(self):
        """Master-bypassing: every DC commits in ~1 round trip without
        talking to any master."""
        cluster = make_cluster(seed=4)
        for index, dc in enumerate(cluster.placement.datacenters):
            key = f"i-{dc}"
            cluster.load_record("items", key, {"stock": 10})
            client = cluster.add_client(dc)
            tx = cluster.begin(client)
            run_tx(cluster, tx.read("items", key))
            tx.write("items", key, {"stock": 3})
            outcome = run_tx(cluster, tx.commit())
            assert outcome.committed and outcome.fast_path, dc

    def test_multi_record_transaction_commits_atomically(self):
        cluster = make_cluster()
        cluster.load_record("items", "a", {"stock": 1})
        cluster.load_record("items", "b", {"stock": 2})
        client = cluster.add_client("us-east")
        tx = cluster.begin(client)
        run_tx(cluster, tx.read("items", "a"))
        run_tx(cluster, tx.read("items", "b"))
        tx.write("items", "a", {"stock": 11})
        tx.write("items", "b", {"stock": 12})
        outcome = run_tx(cluster, tx.commit())
        assert outcome.committed
        drain(cluster)
        assert cluster.read_committed("items", "a").value == {"stock": 11}
        assert cluster.read_committed("items", "b").value == {"stock": 12}

    def test_read_only_transaction_is_free(self):
        cluster = make_cluster()
        cluster.load_record("items", "i1", {"stock": 10})
        client = cluster.add_client("us-west")
        tx = cluster.begin(client)
        run_tx(cluster, tx.read("items", "i1"))
        outcome = run_tx(cluster, tx.commit())
        assert outcome.committed
        assert outcome.latency_ms == 0.0

    def test_insert_and_delete(self):
        cluster = make_cluster()
        client = cluster.add_client("ap-northeast")
        tx = cluster.begin(client)
        tx.insert("orders", "o1", {"total": 42})
        assert run_tx(cluster, tx.commit()).committed
        drain(cluster)
        assert cluster.read_committed("orders", "o1").value == {"total": 42}

        tx2 = cluster.begin(client)
        run_tx(cluster, tx2.read("orders", "o1"))
        tx2.delete("orders", "o1")
        assert run_tx(cluster, tx2.commit()).committed
        drain(cluster)
        snap = cluster.read_committed("orders", "o1")
        assert not snap.exists


class TestWriteWriteConflicts:
    def test_stale_read_version_aborts(self):
        cluster = make_cluster()
        cluster.load_record("items", "i1", {"stock": 10})
        client = cluster.add_client("us-west")
        # First tx commits, bumping the version.
        tx1 = cluster.begin(client)
        run_tx(cluster, tx1.read("items", "i1"))
        tx1.write("items", "i1", {"stock": 9})
        assert run_tx(cluster, tx1.commit()).committed
        drain(cluster)
        # Second tx writes with the OLD version.
        tx2 = cluster.begin(client)
        tx2._writeset.put("items", "i1", 1, {"stock": 8})  # stale vread=1
        outcome = run_tx(cluster, tx2.commit())
        assert not outcome.committed
        drain(cluster)
        assert cluster.read_committed("items", "i1").value == {"stock": 9}

    def test_concurrent_writers_at_most_one_commits(self):
        """No lost updates: concurrent write-write conflict resolves to
        exactly one winner (collision -> master arbitration)."""
        cluster = make_cluster(seed=7)
        cluster.load_record("items", "hot", {"stock": 100})
        c1 = cluster.add_client("us-west")
        c2 = cluster.add_client("ap-southeast")
        t1, t2 = cluster.begin(c1), cluster.begin(c2)
        run_tx(cluster, t1.read("items", "hot"))
        run_tx(cluster, t2.read("items", "hot"))
        t1.write("items", "hot", {"stock": 99})
        t2.write("items", "hot", {"stock": 98})
        f1, f2 = t1.commit(), t2.commit()
        o1 = run_tx(cluster, f1)
        o2 = run_tx(cluster, f2)
        assert o1.committed != o2.committed  # exactly one wins
        drain(cluster)
        winner_stock = 99 if o1.committed else 98
        for snap in cluster.committed_snapshots("items", "hot").values():
            assert snap.value["stock"] == winner_stock

    def test_double_insert_one_wins(self):
        cluster = make_cluster(seed=11)
        c1 = cluster.add_client("us-west")
        c2 = cluster.add_client("eu-west")
        t1, t2 = cluster.begin(c1), cluster.begin(c2)
        t1.insert("orders", "o-dup", {"by": "west"})
        t2.insert("orders", "o-dup", {"by": "europe"})
        o1 = run_tx(cluster, t1.commit())
        o2 = run_tx(cluster, t2.commit())
        assert o1.committed != o2.committed
        drain(cluster)
        snap = cluster.read_committed("orders", "o-dup")
        assert snap.exists

    def test_conflicting_multirecord_transactions_no_deadlock(self):
        """§3.2.2: t1 and t2 both write records r1 and r2 concurrently.
        The deadlock-avoidance policy guarantees progress: never both
        commit, and neither blocks forever."""
        cluster = make_cluster(seed=13)
        cluster.load_record("items", "r1", {"stock": 10})
        cluster.load_record("items", "r2", {"stock": 20})
        c1 = cluster.add_client("us-west")
        c2 = cluster.add_client("ap-southeast")
        t1, t2 = cluster.begin(c1), cluster.begin(c2)
        for t in (t1, t2):
            run_tx(cluster, t.read("items", "r1"))
            run_tx(cluster, t.read("items", "r2"))
        t1.write("items", "r1", {"stock": 11})
        t1.write("items", "r2", {"stock": 21})
        t2.write("items", "r1", {"stock": 12})
        t2.write("items", "r2", {"stock": 22})
        f1, f2 = t1.commit(), t2.commit()
        o1 = run_tx(cluster, f1, limit_ms=300_000)
        o2 = run_tx(cluster, f2, limit_ms=300_000)
        assert not (o1.committed and o2.committed)
        drain(cluster)
        # Atomic durability: the surviving state is one tx's writes or none.
        r1 = cluster.read_committed("items", "r1").value["stock"]
        r2 = cluster.read_committed("items", "r2").value["stock"]
        assert (r1, r2) in [(11, 21), (12, 22), (10, 20)]


class TestCommutative:
    def test_concurrent_decrements_all_commit(self):
        cluster = make_cluster(seed=8)
        cluster.load_record("items", "hot", {"stock": 100})
        outcomes = []
        futures = []
        for dc in cluster.placement.datacenters:
            client = cluster.add_client(dc)
            tx = cluster.begin(client)
            tx.decrement("items", "hot", "stock", 2)
            futures.append(tx.commit())
        for fut in futures:
            outcomes.append(run_tx(cluster, fut))
        assert all(o.committed for o in outcomes)
        assert all(o.fast_path for o in outcomes)
        drain(cluster)
        for snap in cluster.committed_snapshots("items", "hot").values():
            assert snap.value["stock"] == 90

    def test_constraint_never_violated_under_burst(self):
        """Sell exactly the stock, never more, across waves of buyers."""
        cluster = make_cluster(seed=9)
        cluster.load_record("items", "scarce", {"stock": 5})
        clients = [
            cluster.add_client(dc)
            for dc in cluster.placement.datacenters
            for _ in range(2)
        ]
        committed = 0
        for _wave in range(3):
            futures = []
            for client in clients:
                tx = cluster.begin(client)
                tx.decrement("items", "scarce", "stock", 1)
                futures.append(tx.commit())
            for fut in futures:
                outcome = run_tx(cluster, fut, limit_ms=600_000)
                committed += outcome.committed
            drain(cluster)
        assert committed == 5  # exactly the stock
        for snap in cluster.committed_snapshots("items", "scarce").values():
            assert snap.value["stock"] == 0

    def test_increment_unconstrained_attribute(self):
        cluster = make_cluster(seed=10)
        cluster.load_record("items", "i", {"stock": 5, "views": 0})
        client = cluster.add_client("eu-west")
        tx = cluster.begin(client)
        tx.increment("items", "i", "views", 1)
        assert run_tx(cluster, tx.commit()).committed
        drain(cluster)
        assert cluster.read_committed("items", "i").value["views"] == 1

    def test_mixed_deltas_one_transaction(self):
        cluster = make_cluster(seed=12)
        cluster.load_record("items", "i", {"stock": 5, "sold": 0})
        client = cluster.add_client("us-east")
        tx = cluster.begin(client)
        tx.decrement("items", "i", "stock", 2)
        tx.increment("items", "i", "sold", 2)
        assert run_tx(cluster, tx.commit()).committed
        drain(cluster)
        value = cluster.read_committed("items", "i").value
        assert value == {"stock": 3, "sold": 2}


class TestVariants:
    def test_fast_variant_converts_deltas_to_physical(self):
        config = MDCCConfig(variant=ProtocolVariant.FAST)
        cluster = make_cluster("fast", seed=5, config=config)
        cluster.load_record("items", "i", {"stock": 10})
        client = cluster.add_client("us-west")
        tx = cluster.begin(client)
        run_tx(cluster, tx.read("items", "i"))
        tx.decrement("items", "i", "stock", 3)
        outcome = run_tx(cluster, tx.commit())
        assert outcome.committed
        drain(cluster)
        assert cluster.read_committed("items", "i").value["stock"] == 7

    def test_fast_variant_requires_read_before_delta(self):
        config = MDCCConfig(variant=ProtocolVariant.FAST)
        cluster = make_cluster("fast", seed=5, config=config)
        cluster.load_record("items", "i", {"stock": 10})
        client = cluster.add_client("us-west")
        tx = cluster.begin(client)
        with pytest.raises(ValueError, match="requires a prior read"):
            tx.decrement("items", "i", "stock", 1)

    def test_multi_variant_routes_via_master(self):
        cluster = make_cluster("multi", seed=6)
        cluster.load_record("items", "i", {"stock": 10})
        client = cluster.add_client("us-west")
        tx = cluster.begin(client)
        run_tx(cluster, tx.read("items", "i"))
        tx.write("items", "i", {"stock": 9})
        outcome = run_tx(cluster, tx.commit())
        assert outcome.committed
        assert not outcome.fast_path
        drain(cluster)
        for snap in cluster.committed_snapshots("items", "i").values():
            assert snap.value["stock"] == 9

    def test_multi_variant_conflict_detection(self):
        cluster = make_cluster("multi", seed=14)
        cluster.load_record("items", "hot", {"stock": 50})
        c1 = cluster.add_client("us-west")
        c2 = cluster.add_client("eu-west")
        t1, t2 = cluster.begin(c1), cluster.begin(c2)
        run_tx(cluster, t1.read("items", "hot"))
        run_tx(cluster, t2.read("items", "hot"))
        t1.write("items", "hot", {"stock": 49})
        t2.write("items", "hot", {"stock": 48})
        o1 = run_tx(cluster, t1.commit())
        o2 = run_tx(cluster, t2.commit())
        assert o1.committed != o2.committed


class TestDataCenterFailure:
    def test_commits_continue_through_dc_failure(self):
        """§5.3.4: MDCC seamlessly tolerates a full DC outage."""
        cluster = make_cluster(seed=15)
        cluster.load_record("items", "i", {"stock": 100})
        client = cluster.add_client("us-west")
        # Healthy commit first.
        tx = cluster.begin(client)
        run_tx(cluster, tx.read("items", "i"))
        tx.write("items", "i", {"stock": 99})
        assert run_tx(cluster, tx.commit()).committed
        drain(cluster)
        # Kill the closest DC to us-west.
        cluster.fail_datacenter("us-east")
        tx2 = cluster.begin(client)
        run_tx(cluster, tx2.read("items", "i"))
        tx2.write("items", "i", {"stock": 98})
        outcome = run_tx(cluster, tx2.commit())
        assert outcome.committed

    def test_latency_increases_after_failure(self):
        cluster = make_cluster(seed=16)
        cluster.load_record("items", "i", {"stock": 100})
        client = cluster.add_client("us-west")

        def one_commit(new_stock):
            tx = cluster.begin(client)
            run_tx(cluster, tx.read("items", "i"))
            tx.write("items", "i", {"stock": new_stock})
            return run_tx(cluster, tx.commit())

        before = one_commit(99)
        drain(cluster)
        cluster.fail_datacenter("us-east")
        after = one_commit(98)
        # Pre-failure: wait on EU (170ms RTT).  Post: Singapore (210ms).
        assert after.latency_ms > before.latency_ms

    def test_commutative_commits_survive_failure(self):
        cluster = make_cluster(seed=17)
        cluster.load_record("items", "i", {"stock": 100})
        cluster.fail_datacenter("ap-northeast")
        client = cluster.add_client("us-west")
        tx = cluster.begin(client)
        tx.decrement("items", "i", "stock", 1)
        assert run_tx(cluster, tx.commit()).committed

    def test_two_dc_failures_block_fast_commits_but_not_forever(self):
        """With only 3 of 5 DCs alive a fast quorum (4) is unreachable;
        the coordinator escalates to the master whose classic quorum (3)
        still works."""
        cluster = make_cluster(seed=18)
        cluster.load_record("items", "i", {"stock": 100})
        cluster.fail_datacenter("ap-northeast")
        cluster.fail_datacenter("ap-southeast")
        client = cluster.add_client("us-west")
        tx = cluster.begin(client)
        run_tx(cluster, tx.read("items", "i"))
        tx.write("items", "i", {"stock": 99})
        outcome = run_tx(cluster, tx.commit(), limit_ms=600_000)
        assert outcome.committed
        assert not outcome.fast_path  # had to go through the master
