"""Unit tests for per-record acceptor state (SetCompatible & visibility)."""

from repro.core.options import (
    CommutativeUpdate,
    Option,
    OptionStatus,
    PhysicalUpdate,
    RecordId,
)
from repro.core.state import RecordState
from repro.paxos.ballot import Ballot, BallotRange
from repro.paxos.quorum import QuorumSpec
from repro.storage.record import Record
from repro.storage.schema import Constraint, TableSchema

SPEC = QuorumSpec.for_replication(5)
SCHEMA = TableSchema("items", constraints={"stock": Constraint(minimum=0)})
RID = RecordId("items", "k")


def make_state(value=None):
    record = Record("items", "k")
    if value is not None:
        record.commit_value(value)
    return RecordState(record=record, schema=SCHEMA, spec=SPEC)


def phys_option(txid, vread, value):
    return Option(
        txid=txid,
        record=RID,
        update=PhysicalUpdate(vread=vread, new_value=value),
        writeset=(RID,),
    )


def delta_option(txid, **deltas):
    return Option(
        txid=txid,
        record=RID,
        update=CommutativeUpdate.of(**deltas),
        writeset=(RID,),
    )


class TestMode:
    def test_fresh_record_is_fast(self):
        state = make_state()
        assert state.is_fast
        assert state.version == 0

    def test_classic_grant_switches_mode(self):
        state = make_state({"stock": 5})
        state.mastership.grant(
            BallotRange(1, 100, Ballot(1, fast=False, proposer="m"))
        )
        assert not state.is_fast

    def test_mode_returns_to_fast_after_range(self):
        state = make_state({"stock": 5})
        state.mastership.grant(BallotRange(1, 1, Ballot(1, fast=False, proposer="m")))
        assert not state.is_fast
        state.record.commit_value({"stock": 4})  # version 2 > range end
        assert state.is_fast


class TestPhysicalDecide:
    def test_valid_read_accepts(self):
        state = make_state({"stock": 5})
        decided = state.accept_fast(phys_option("t1", 1, {"stock": 4}))
        assert decided.accepted

    def test_stale_read_rejects(self):
        state = make_state({"stock": 5})
        decided = state.accept_fast(phys_option("t1", 0, {"stock": 4}))
        assert decided.rejected

    def test_second_outstanding_option_rejected(self):
        """§3.2.2 deadlock avoidance: the conflicting follow-up is actively
        rejected, not blocked."""
        state = make_state({"stock": 5})
        first = state.accept_fast(phys_option("t1", 1, {"stock": 4}))
        second = state.accept_fast(phys_option("t2", 1, {"stock": 3}))
        assert first.accepted and second.rejected

    def test_insert_requires_absence(self):
        state = make_state()
        ok = state.accept_fast(phys_option("t1", 0, {"stock": 9}))
        assert ok.accepted
        state.apply_visibility(ok, committed=True)
        dup = state.accept_fast(phys_option("t2", 0, {"stock": 8}))
        assert dup.rejected

    def test_duplicate_propose_returns_same_decision(self):
        state = make_state({"stock": 5})
        opt = phys_option("t1", 1, {"stock": 4})
        first = state.accept_fast(opt)
        second = state.accept_fast(opt)
        assert first.status == second.status


class TestCommutativeDecide:
    def test_delta_accepted_within_budget(self):
        state = make_state({"stock": 10})
        decided = state.accept_fast(delta_option("t1", stock=-2))
        assert decided.accepted

    def test_delta_rejected_on_missing_record(self):
        state = make_state()
        decided = state.accept_fast(delta_option("t1", stock=-1))
        assert decided.rejected

    def test_delta_rejected_with_pending_physical(self):
        state = make_state({"stock": 10})
        state.accept_fast(phys_option("t1", 1, {"stock": 9}))
        decided = state.accept_fast(delta_option("t2", stock=-1))
        assert decided.rejected

    def test_physical_rejected_with_pending_delta(self):
        state = make_state({"stock": 10})
        state.accept_fast(delta_option("t1", stock=-1))
        decided = state.accept_fast(phys_option("t2", 1, {"stock": 9}))
        assert decided.rejected

    def test_demarcation_limit_enforced(self):
        # stock 5, L = (5-4)/5 * 5 = 1: projections below 1 rejected.
        state = make_state({"stock": 5})
        accepted = 0
        for i in range(6):
            if state.accept_fast(delta_option(f"t{i}", stock=-1)).accepted:
                accepted += 1
        assert accepted == 4  # down to projection 1 >= L

    def test_unconstrained_attribute_skips_demarcation(self):
        state = make_state({"stock": 5, "views": 0})
        for i in range(20):
            decided = state.accept_fast(delta_option(f"t{i}", views=1))
            assert decided.accepted

    def test_abort_frees_escrow_budget(self):
        state = make_state({"stock": 5})
        options = [delta_option(f"t{i}", stock=-1) for i in range(4)]
        for option in options:
            assert state.accept_fast(option).accepted
        blocked = state.accept_fast(delta_option("t9", stock=-1))
        assert blocked.rejected
        # Abort two of the pending options: budget returns.
        state.apply_visibility(options[0], committed=False)
        state.apply_visibility(options[1], committed=False)
        retry = state.accept_fast(delta_option("t10", stock=-1))
        assert retry.accepted


class TestVisibility:
    def test_commit_applies_value_and_bumps_version(self):
        state = make_state({"stock": 5})
        opt = state.accept_fast(phys_option("t1", 1, {"stock": 4}))
        assert state.apply_visibility(opt, committed=True)
        assert state.record.snapshot().value == {"stock": 4}
        assert state.version == 2

    def test_duplicate_visibility_is_noop(self):
        state = make_state({"stock": 5})
        opt = state.accept_fast(phys_option("t1", 1, {"stock": 4}))
        state.apply_visibility(opt, committed=True)
        assert not state.apply_visibility(opt, committed=True)
        assert state.version == 2

    def test_abort_leaves_value_untouched(self):
        state = make_state({"stock": 5})
        opt = state.accept_fast(phys_option("t1", 1, {"stock": 4}))
        state.apply_visibility(opt, committed=False)
        assert state.record.snapshot().value == {"stock": 5}
        assert state.version == 1

    def test_visibility_for_unseen_option_applies(self):
        """A replica that missed the propose still converges via the
        visibility message (it carries the full option)."""
        state = make_state({"stock": 5})
        unseen = phys_option("ghost", 1, {"stock": 4})
        assert state.apply_visibility(unseen, committed=True)
        assert state.record.snapshot().value == {"stock": 4}

    def test_out_of_order_visibility_buffered(self):
        state = make_state({"stock": 5})
        second = phys_option("t2", 2, {"stock": 3})
        first = phys_option("t1", 1, {"stock": 4})
        assert not state.apply_visibility(second, committed=True)  # gap
        assert state.version == 1
        state.apply_visibility(first, committed=True)
        # The deferred write drained automatically.
        assert state.version == 3
        assert state.record.snapshot().value == {"stock": 3}

    def test_delta_visibility_applies_once(self):
        state = make_state({"stock": 5})
        opt = delta_option("t1", stock=-2)
        state.accept_fast(opt)
        assert state.apply_visibility(opt, committed=True)
        assert not state.apply_visibility(opt, committed=True)
        assert state.record.snapshot().value["stock"] == 3

    def test_delta_on_missing_record_deferred(self):
        state = make_state()
        delta = delta_option("t2", stock=-1)
        assert not state.apply_visibility(delta, committed=True)
        insert = phys_option("t1", 0, {"stock": 10})
        state.apply_visibility(insert, committed=True)
        # Deferred delta drains once the record exists.
        assert state.record.snapshot().value["stock"] == 9

    def test_catch_up_jumps_versions(self):
        state = make_state({"stock": 5})
        assert state.catch_up(7, {"stock": 1})
        assert state.version == 7
        assert state.record.snapshot().value == {"stock": 1}
        assert not state.catch_up(3, {"stock": 9})  # stale: ignored

    def test_final_rejection_never_resurrected_by_adopt(self):
        from repro.paxos.cstruct import CStruct

        state = make_state({"stock": 5})
        opt = phys_option("t1", 1, {"stock": 4})
        state.apply_visibility(opt, committed=False)  # final abort
        adopted = state.adopt(
            CStruct([opt.with_status(OptionStatus.ACCEPTED)]),
            Ballot(1, fast=False, proposer="m"),
        )
        assert adopted.command(opt.option_id).rejected
