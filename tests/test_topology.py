"""Tests for ReplicaMap master policies (core/topology.py)."""

import pytest

from repro.core.options import RecordId
from repro.core.topology import ReplicaMap
from repro.sim.network import EC2_REGIONS


def record(i: int) -> RecordId:
    return RecordId("items", f"item:{i:06d}")


class TestHashPolicy:
    def test_spreads_masters_roughly_uniformly(self):
        placement = ReplicaMap(EC2_REGIONS, master_policy="hash")
        counts = {dc: 0 for dc in EC2_REGIONS}
        n = 2_000
        for i in range(n):
            counts[placement.master_dc(record(i))] += 1
        expected = n / len(EC2_REGIONS)
        for dc, count in counts.items():
            assert abs(count - expected) < 0.25 * expected, (dc, count)

    def test_deterministic(self):
        a = ReplicaMap(EC2_REGIONS, master_policy="hash")
        b = ReplicaMap(EC2_REGIONS, master_policy="hash")
        for i in range(50):
            assert a.master_dc(record(i)) == b.master_dc(record(i))

    def test_master_node_is_replica_in_master_dc(self):
        placement = ReplicaMap(EC2_REGIONS, partitions_per_table=3)
        r = record(7)
        assert placement.master_node(r) == placement.replica_in(
            r, placement.master_dc(r)
        )


class TestFixedPolicy:
    def test_routes_everything_to_the_fixed_dc(self):
        placement = ReplicaMap(EC2_REGIONS, master_policy="fixed:eu-west")
        for i in range(50):
            assert placement.master_dc(record(i)) == "eu-west"

    def test_unknown_fixed_dc_rejected(self):
        with pytest.raises(ValueError, match="unknown fixed master DC"):
            ReplicaMap(EC2_REGIONS, master_policy="fixed:mars-north")


class TestTablePolicy:
    def test_uses_the_table_default(self):
        placement = ReplicaMap(
            EC2_REGIONS,
            master_policy="table",
            table_master_dc={"items": "us-east", "orders": "ap-northeast"},
        )
        assert placement.master_dc(RecordId("items", "k")) == "us-east"
        assert placement.master_dc(RecordId("orders", "k")) == "ap-northeast"

    def test_missing_table_default_raises(self):
        placement = ReplicaMap(
            EC2_REGIONS, master_policy="table", table_master_dc={"items": "us-east"}
        )
        with pytest.raises(ValueError, match="no default master DC"):
            placement.master_dc(RecordId("mystery", "k"))


class TestPolicyValidation:
    def test_unknown_policy_string_rejected(self):
        with pytest.raises(ValueError, match="unknown master policy"):
            ReplicaMap(EC2_REGIONS, master_policy="round-robin")

    def test_static_policies_have_no_adaptive_state(self):
        placement = ReplicaMap(EC2_REGIONS, master_policy="hash")
        assert placement.tracker is None
        assert placement.directory is None
        assert not placement.is_adaptive
        # note_write is a safe no-op under static policies.
        placement.note_write(record(1), "us-west", now=0.0)


class TestAdaptivePolicy:
    def test_starts_out_identical_to_hash(self):
        adaptive = ReplicaMap(EC2_REGIONS, master_policy="adaptive")
        hashed = ReplicaMap(EC2_REGIONS, master_policy="hash")
        assert adaptive.is_adaptive
        for i in range(100):
            assert adaptive.master_dc(record(i)) == hashed.master_dc(record(i))

    def test_directory_assignment_overrides_hash(self):
        placement = ReplicaMap(EC2_REGIONS, master_policy="adaptive")
        r = record(3)
        before = placement.master_dc(r)
        target = next(dc for dc in EC2_REGIONS if dc != before)
        placement.directory.assign(r, target, now=1_000.0)
        assert placement.master_dc(r) == target
        assert placement.master_node(r) == placement.replica_in(r, target)

    def test_note_write_feeds_the_tracker(self):
        placement = ReplicaMap(EC2_REGIONS, master_policy="adaptive")
        placement.note_write(record(1), "ap-southeast", now=5.0)
        shares, total = placement.tracker.shares(record(1), now=5.0)
        assert shares == {"ap-southeast": 1.0}
        assert total == 1.0
