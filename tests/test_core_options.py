"""Unit tests for options, updates and their cstruct command behaviour."""

import pytest

from repro.core.options import (
    CommutativeUpdate,
    Option,
    OptionStatus,
    PhysicalUpdate,
    RecordId,
)


def physical(vread=1, value=None, delete=False):
    if delete:
        return PhysicalUpdate(vread=vread, new_value=None, is_delete=True)
    return PhysicalUpdate(vread=vread, new_value=value or {"x": 1})


def option(txid="t1", key="k1", update=None, status=OptionStatus.PENDING):
    return Option(
        txid=txid,
        record=RecordId("items", key),
        update=update or physical(),
        writeset=(RecordId("items", key),),
        status=status,
    )


class TestPhysicalUpdate:
    def test_insert_detection(self):
        assert physical(vread=0).is_insert
        assert not physical(vread=3).is_insert

    def test_delete_carries_no_value(self):
        with pytest.raises(ValueError):
            PhysicalUpdate(vread=1, new_value={"x": 1}, is_delete=True)

    def test_non_delete_needs_value(self):
        with pytest.raises(ValueError):
            PhysicalUpdate(vread=1, new_value=None)

    def test_negative_vread_rejected(self):
        with pytest.raises(ValueError):
            PhysicalUpdate(vread=-1, new_value={"x": 1})

    def test_equality_and_hash(self):
        a = physical(vread=2, value={"x": 1})
        b = physical(vread=2, value={"x": 1})
        assert a == b
        assert hash(a) == hash(b)
        assert a != physical(vread=3, value={"x": 1})


class TestCommutativeUpdate:
    def test_of_constructor_sorts(self):
        update = CommutativeUpdate.of(stock=-1, views=2)
        assert update.attributes == ("stock", "views")

    def test_delta_lookup(self):
        update = CommutativeUpdate.of(stock=-3)
        assert update.delta_for("stock") == -3
        assert update.delta_for("ghost") == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CommutativeUpdate(())

    def test_duplicate_attr_rejected(self):
        with pytest.raises(ValueError):
            CommutativeUpdate((("stock", -1), ("stock", -2)))


class TestOption:
    def test_identity(self):
        opt = option()
        assert opt.option_id == "t1:items/k1"
        assert opt.command_id == opt.option_id

    def test_with_status(self):
        opt = option()
        accepted = opt.with_status(OptionStatus.ACCEPTED)
        assert accepted.accepted and not opt.accepted
        assert accepted.option_id == opt.option_id

    def test_status_decided(self):
        assert not OptionStatus.PENDING.decided
        assert OptionStatus.ACCEPTED.decided
        assert OptionStatus.REJECTED.decided

    def test_physical_options_never_commute(self):
        a = option(txid="t1")
        b = option(txid="t2")
        assert not a.commutes_with(b)

    def test_commutative_options_commute(self):
        a = option(txid="t1", update=CommutativeUpdate.of(stock=-1))
        b = option(txid="t2", update=CommutativeUpdate.of(stock=-2))
        assert a.commutes_with(b)
        assert b.commutes_with(a)

    def test_mixed_do_not_commute(self):
        a = option(txid="t1", update=CommutativeUpdate.of(stock=-1))
        b = option(txid="t2")
        assert not a.commutes_with(b)

    def test_rejected_options_commute_with_everything(self):
        # A rejected option never changes state; its cstruct position is
        # semantically irrelevant.
        rejected = option(txid="t1", status=OptionStatus.REJECTED)
        other = option(txid="t2")
        assert rejected.commutes_with(other)
        assert other.commutes_with(rejected)

    def test_writeset_carried(self):
        records = (RecordId("items", "a"), RecordId("items", "b"))
        opt = Option(
            txid="t9",
            record=records[0],
            update=physical(),
            writeset=records,
        )
        assert opt.writeset == records
