"""Unit tests for the storage substrate: schemas, records, store, WAL."""

import pytest

from repro.storage import (
    Constraint,
    HashPartitioner,
    RangePartitioner,
    Record,
    RecordStore,
    StorageError,
    TableSchema,
    WriteAheadLog,
)
from repro.storage.partition import stable_hash


class TestConstraint:
    def test_allows_within_bounds(self):
        c = Constraint(minimum=0, maximum=10)
        assert c.allows(0) and c.allows(10) and c.allows(5)

    def test_rejects_out_of_bounds(self):
        c = Constraint(minimum=0, maximum=10)
        assert not c.allows(-1)
        assert not c.allows(11)

    def test_one_sided_bounds(self):
        assert Constraint(minimum=0).allows(1e12)
        assert not Constraint(maximum=5).allows(6)

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Constraint(minimum=10, maximum=0)

    def test_bounded_flags(self):
        assert Constraint(minimum=0).bounded_below
        assert not Constraint(minimum=0).bounded_above


class TestTableSchema:
    def test_constraint_lookup(self):
        schema = TableSchema("items", constraints={"stock": Constraint(minimum=0)})
        assert schema.constraint("stock").minimum == 0
        assert schema.constraint("price") is None

    def test_check_value(self):
        schema = TableSchema("items", constraints={"stock": Constraint(minimum=0)})
        assert schema.check_value({"stock": 3, "name": "x"})
        assert not schema.check_value({"stock": -1})
        assert schema.check_value({"name": "no stock attribute"})

    def test_check_value_non_numeric_constrained_attr(self):
        schema = TableSchema("items", constraints={"stock": Constraint(minimum=0)})
        assert not schema.check_value({"stock": "many"})


class TestRecord:
    def test_fresh_record_absent_at_version_zero(self):
        record = Record("items", "k1")
        assert not record.exists
        assert record.current_version == 0
        snap = record.snapshot()
        assert (snap.exists, snap.value, snap.version) == (False, None, 0)

    def test_commit_value_bumps_version(self):
        record = Record("items", "k1")
        assert record.commit_value({"stock": 5}) == 1
        assert record.commit_value({"stock": 4}) == 2
        snap = record.snapshot()
        assert snap.version == 2
        assert snap.value == {"stock": 4}

    def test_snapshot_value_is_a_copy(self):
        record = Record("items", "k1")
        record.commit_value({"stock": 5})
        snap = record.snapshot()
        snap.value["stock"] = 999
        assert record.snapshot().value == {"stock": 5}

    def test_commit_value_copies_input(self):
        record = Record("items", "k1")
        value = {"stock": 5}
        record.commit_value(value)
        value["stock"] = 0
        assert record.snapshot().value == {"stock": 5}

    def test_delete_leaves_tombstone_version(self):
        record = Record("items", "k1")
        record.commit_value({"stock": 5})
        assert record.commit_delete() == 2
        assert not record.exists
        assert record.current_version == 2
        assert record.version_chain()[-1].is_tombstone

    def test_reinsert_after_delete(self):
        record = Record("items", "k1")
        record.commit_value({"stock": 5})
        record.commit_delete()
        assert record.commit_value({"stock": 9}) == 3
        assert record.exists

    def test_commit_delta(self):
        record = Record("items", "k1")
        record.commit_value({"stock": 5})
        record.commit_delta("stock", -2)
        assert record.snapshot().value["stock"] == 3

    def test_commit_delta_on_missing_attr_starts_from_zero(self):
        record = Record("items", "k1")
        record.commit_value({"name": "a"})
        record.commit_delta("count", 4)
        assert record.snapshot().value["count"] == 4

    def test_commit_delta_on_absent_record_raises(self):
        with pytest.raises(ValueError):
            Record("items", "k1").commit_delta("stock", 1)

    def test_commit_delta_non_numeric_raises(self):
        record = Record("items", "k1")
        record.commit_value({"stock": "lots"})
        with pytest.raises(ValueError):
            record.commit_delta("stock", 1)

    def test_value_at_version(self):
        record = Record("items", "k1")
        record.commit_value({"stock": 5})
        record.commit_value({"stock": 4})
        assert record.value_at(1).value == {"stock": 5}
        assert record.value_at(99) is None

    def test_snapshot_attribute_helper(self):
        record = Record("items", "k1")
        record.commit_value({"stock": 7})
        assert record.snapshot().attribute("stock") == 7
        assert record.snapshot().attribute("ghost", -1) == -1
        assert Record("items", "k2").snapshot().attribute("x", "d") == "d"


class TestRecordStore:
    def make_store(self):
        store = RecordStore()
        store.register_table(TableSchema("items", constraints={"stock": Constraint(minimum=0)}))
        return store

    def test_register_duplicate_table_rejected(self):
        store = self.make_store()
        with pytest.raises(StorageError):
            store.register_table(TableSchema("items"))

    def test_unknown_table_raises(self):
        store = self.make_store()
        with pytest.raises(StorageError):
            store.read("ghost", "k")
        with pytest.raises(StorageError):
            store.record("ghost", "k")

    def test_read_absent_key_clean(self):
        store = self.make_store()
        snap = store.read("items", "nope")
        assert (snap.exists, snap.version) == (False, 0)

    def test_record_created_lazily_peek_does_not_create(self):
        store = self.make_store()
        assert store.peek("items", "k") is None
        store.record("items", "k")
        assert store.peek("items", "k") is not None

    def test_write_read_roundtrip(self):
        store = self.make_store()
        store.record("items", "k").commit_value({"stock": 3})
        snap = store.read("items", "k")
        assert snap.exists and snap.value == {"stock": 3} and snap.version == 1

    def test_scan_sorted_live_only(self):
        store = self.make_store()
        store.record("items", "b").commit_value({"stock": 1})
        store.record("items", "a").commit_value({"stock": 2})
        store.record("items", "c").commit_value({"stock": 3})
        store.record("items", "c").commit_delete()
        keys = [key for key, _ in store.scan("items")]
        assert keys == ["a", "b"]
        assert store.count("items") == 2

    def test_schema_lookup(self):
        store = self.make_store()
        assert store.schema("items").constraint("stock").minimum == 0
        assert store.tables == ("items",)


class TestPartitioners:
    def test_stable_hash_deterministic(self):
        assert stable_hash("item:1") == stable_hash("item:1")
        assert stable_hash("item:1") != stable_hash("item:2")

    def test_hash_partitioner_covers_range(self):
        p = HashPartitioner(4)
        partitions = {p.partition_of(f"k{i}") for i in range(200)}
        assert partitions == {0, 1, 2, 3}

    def test_hash_partitioner_requires_positive(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)

    def test_range_partitioner_basic(self):
        p = RangePartitioner(["m"])
        assert p.partition_of("a") == 0
        assert p.partition_of("m") == 1  # boundary is exclusive lower bound
        assert p.partition_of("z") == 1
        assert p.num_partitions == 2

    def test_range_partitioner_unsorted_rejected(self):
        with pytest.raises(ValueError):
            RangePartitioner(["m", "a"])

    def test_range_partitioner_duplicates_rejected(self):
        with pytest.raises(ValueError):
            RangePartitioner(["m", "m"])

    def test_even_over_keys_balances(self):
        keys = [f"item:{i:05d}" for i in range(1000)]
        p = RangePartitioner.even_over_keys(keys, 4)
        counts = [0, 0, 0, 0]
        for key in keys:
            counts[p.partition_of(key)] += 1
        assert p.num_partitions == 4
        assert max(counts) - min(counts) <= 1

    def test_even_over_keys_single_partition(self):
        p = RangePartitioner.even_over_keys(["a", "b"], 1)
        assert p.num_partitions == 1
        assert p.partition_of("zzz") == 0


class TestWriteAheadLog:
    def test_append_assigns_monotonic_lsns(self):
        wal = WriteAheadLog()
        first = wal.append("option-learned", txid="t1")
        second = wal.append("visibility", txid="t1", status=True)
        assert (first.lsn, second.lsn) == (1, 2)
        assert wal.last_lsn == 2
        assert len(wal) == 2

    def test_entries_since(self):
        wal = WriteAheadLog()
        for i in range(5):
            wal.append("e", index=i)
        tail = wal.entries_since(3)
        assert [entry.payload["index"] for entry in tail] == [3, 4]

    def test_entries_of_kind(self):
        wal = WriteAheadLog()
        wal.append("a")
        wal.append("b")
        wal.append("a")
        assert len(wal.entries_of_kind("a")) == 2

    def test_replay_filtered(self):
        wal = WriteAheadLog()
        wal.append("option", txid="t1")
        wal.append("noise")
        wal.append("option", txid="t2")
        seen = []
        count = wal.replay(lambda entry: seen.append(entry.payload["txid"]), kind="option")
        assert count == 2
        assert seen == ["t1", "t2"]

    def test_truncate_through(self):
        wal = WriteAheadLog()
        for i in range(10):
            wal.append("e", index=i)
        removed = wal.truncate_through(7)
        assert removed == 7
        assert [entry.lsn for entry in wal] == [8, 9, 10]
        # LSNs keep increasing after truncation.
        assert wal.append("later").lsn == 11

    def test_payload_copied_on_append(self):
        wal = WriteAheadLog()
        payload = {"keys": [1, 2]}
        entry = wal.append("e", **payload)
        assert entry.payload == {"keys": [1, 2]}


class TestWalCheckpoint:
    """The checkpoint cut the elastic-membership bootstrap leans on."""

    def test_checkpoint_returns_cut_lsn(self):
        wal = WriteAheadLog()
        for i in range(4):
            wal.append("e", index=i)
        assert wal.checkpoint() == 4
        assert wal.last_checkpoint == 4
        assert wal.checkpoints == [4]

    def test_checkpoint_on_empty_log_is_zero(self):
        wal = WriteAheadLog()
        assert wal.checkpoint() == 0
        assert wal.last_checkpoint == 0

    def test_cut_is_stable_under_later_appends(self):
        wal = WriteAheadLog()
        wal.append("before")
        cut = wal.checkpoint()
        wal.append("after-1")
        wal.append("after-2")
        assert cut == 1
        assert wal.last_checkpoint == 1
        # entries_since(cut) is exactly the post-snapshot suffix.
        assert [e.kind for e in wal.entries_since(cut)] == ["after-1", "after-2"]

    def test_multiple_checkpoints_ordered(self):
        wal = WriteAheadLog()
        wal.append("a")
        first = wal.checkpoint()
        wal.append("b")
        wal.append("c")
        second = wal.checkpoint()
        assert wal.checkpoints == [first, second] == [1, 3]
        assert wal.last_checkpoint == second

    def test_truncate_through_cut_keeps_suffix_and_lsns(self):
        wal = WriteAheadLog()
        for i in range(6):
            wal.append("e", index=i)
        cut = wal.checkpoint()
        wal.append("post-cut")
        removed = wal.truncate_through(cut)
        assert removed == 6
        assert [entry.kind for entry in wal] == ["post-cut"]
        # The cut marker survives truncation and new LSNs stay monotonic.
        assert wal.last_checkpoint == cut == 6
        assert wal.append("later").lsn == 8

    def test_replay_from_checkpoint(self):
        wal = WriteAheadLog()
        wal.append("old", index=0)
        cut = wal.checkpoint()
        wal.append("new", index=1)
        wal.append("new", index=2)
        seen = []
        count = wal.replay(lambda entry: seen.append(entry.payload["index"]), from_lsn=cut)
        assert count == 2
        assert seen == [1, 2]


class TestStoreSnapshot:
    """Deterministic full-store iteration (the bootstrap stream source)."""

    def make_store(self):
        store = RecordStore()
        store.register_table(
            TableSchema("items", constraints={"stock": Constraint(minimum=0)})
        )
        store.register_table(TableSchema("orders"))
        return store

    def test_sorted_by_table_then_key(self):
        store = self.make_store()
        store.record("orders", "o2").commit_value({"qty": 2})
        store.record("items", "z").commit_value({"stock": 1})
        store.record("items", "a").commit_value({"stock": 2})
        store.record("orders", "o1").commit_value({"qty": 1})
        dump = [(table, key) for table, key, _, _ in store.snapshot()]
        assert dump == [("items", "a"), ("items", "z"), ("orders", "o1"), ("orders", "o2")]

    def test_iteration_order_independent_of_insertion_order(self):
        a, b = self.make_store(), self.make_store()
        for key in ("k3", "k1", "k2"):
            a.record("items", key).commit_value({"stock": 1})
        for key in ("k2", "k3", "k1"):
            b.record("items", key).commit_value({"stock": 1})
        dump_a = [(t, k, s.version) for t, k, s, _ in a.snapshot()]
        dump_b = [(t, k, s.version) for t, k, s, _ in b.snapshot()]
        assert dump_a == dump_b

    def test_includes_tombstones_unlike_scan(self):
        store = self.make_store()
        store.record("items", "kept").commit_value({"stock": 1})
        deleted = store.record("items", "gone")
        deleted.commit_value({"stock": 2})
        deleted.commit_delete()
        assert [key for key, _ in store.scan("items")] == ["kept"]
        dump = {key: snap for _, key, snap, _ in store.snapshot()}
        assert set(dump) == {"kept", "gone"}
        assert dump["gone"].exists is False
        assert dump["gone"].version == 2  # the joiner learns the delete

    def test_skips_never_committed_records(self):
        store = self.make_store()
        store.record("items", "touched")  # created lazily, never committed
        store.record("items", "real").commit_value({"stock": 1})
        assert [key for _, key, _, _ in store.snapshot()] == ["real"]

    def test_applied_ids_sorted_and_carried(self):
        store = self.make_store()
        record = store.record("items", "k")
        record.commit_value({"stock": 5}, option_id="opt-b")
        record.commit_delta("stock", -1.0, option_id="opt-a")
        (_, _, snap, applied_ids), = list(store.snapshot())
        assert applied_ids == ("opt-a", "opt-b")
        assert snap.value == {"stock": 4}
