"""Regression tests for the latent DET-set-iter sites the analyzer found.

Each fix made an iteration-order-dependent value deterministic where it
is user-visible: wire payloads (``applied_ids`` tuples), client-facing
transaction outcomes (Megastore* ``statuses``), and the network model's
DC-cloning template (``rtts_from``).  The cross-interpreter test drives
real subprocesses under different ``PYTHONHASHSEED`` values — exactly
the variance that made the original PR 3 bugs invisible in-process.
"""

import json
import os
import pathlib
import subprocess
import sys

from repro.core.messages import RepairProbe
from repro.core.options import RecordId
from repro.db.cluster import build_cluster
from repro.storage.schema import Constraint, TableSchema

REPO_SRC = pathlib.Path(__file__).resolve().parents[1] / "src"
ITEMS = TableSchema("items", constraints={"stock": Constraint(minimum=0)})


def _make_cluster(protocol, seed=1):
    cluster = build_cluster(protocol, seed=seed)
    cluster.register_table(ITEMS)
    return cluster


def test_repair_reply_applied_ids_sorted_on_the_wire():
    """RepairReply carries the applied-option-id set as a tuple; the
    tuple must not leak hash order (receivers diff it against their own
    state, and traces/artifacts embed it)."""
    cluster = _make_cluster("mdcc", seed=7)
    cluster.load_record("items", "i", {"stock": 10})
    node = cluster.storage_nodes[sorted(cluster.storage_nodes)[0]]
    record = RecordId("items", "i")
    state = node.record_state(record)
    state.record.applied_ids.update({"tx-z", "tx-a", "tx-m"})

    sent = []
    node.send = lambda dst, message: sent.append((dst, message))
    node.handle_repair_probe(RepairProbe(record=record, request_id=1), "prober")
    (dst, reply), = sent
    assert dst == "prober"
    assert reply.applied_ids == ("tx-a", "tx-m", "tx-z")


def test_megastore_outcome_statuses_in_record_order():
    """The client-facing TransactionOutcome.statuses dict is built by
    iterating the transaction's touched-record set; its key order must
    be the sorted record order, not hash order."""
    cluster = _make_cluster("megastore", seed=9)
    for key in ("c", "a", "b"):
        cluster.load_record("items", key, {"stock": 10})
    client = cluster.add_client("us-west")
    tx = cluster.begin(client)
    for key in ("c", "a", "b"):
        cluster.sim.run_until(tx.read("items", key), limit=cluster.sim.now + 300_000)
        tx.write("items", key, {"stock": 9})
    outcome = cluster.sim.run_until(tx.commit(), limit=cluster.sim.now + 300_000)
    assert outcome.committed
    keys = list(outcome.statuses)
    assert len(keys) == 3
    assert keys == sorted(keys)


_RTTS_SNIPPET = """\
import json
from repro.sim.network import LatencyModel

model = LatencyModel()
print(json.dumps({dc: list(model.rtts_from(dc)) for dc in model.datacenters()}))
"""


def test_rtts_from_key_order_stable_across_hash_seeds():
    """rtts_from() is the template for cloning a replacement DC's network
    position during reconfiguration; its key order fed frozenset
    iteration and differed per PYTHONHASHSEED before the fix."""
    outputs = []
    for seed in ("0", "1", "2"):
        env = dict(os.environ, PYTHONHASHSEED=seed, PYTHONPATH=str(REPO_SRC))
        result = subprocess.run(
            [sys.executable, "-c", _RTTS_SNIPPET],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        outputs.append(result.stdout)
    assert outputs[0] == outputs[1] == outputs[2]
    orders = json.loads(outputs[0])
    # every DC sees every other DC; order is matrix insertion order,
    # identical across interpreters (the fix), not necessarily sorted
    assert all(len(names) == len(orders) - 1 for names in orders.values())
