"""Cross-module property-based tests on protocol invariants.

Complements the per-module property tests (cstruct lattice laws, quorum
arithmetic, demarcation bounds) with invariants that the protocol relies
on globally:

* mastership grant/supersede algebra (the §3.3.2 γ mechanics);
* record version chains are strictly monotone and catch-up is a join;
* the simulation kernel is deterministic under identical inputs;
* commutative deltas commute at the storage layer.
"""

from hypothesis import given, settings, strategies as st

from repro.paxos.ballot import Ballot, BallotRange
from repro.paxos.multi import MastershipState
from repro.sim.core import Simulator
from repro.storage.record import Record

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
ballots = st.builds(
    Ballot,
    round=st.integers(min_value=0, max_value=6),
    fast=st.booleans(),
    proposer=st.sampled_from(["a", "b", "c"]),
)


@st.composite
def ballot_ranges(draw):
    start = draw(st.integers(min_value=0, max_value=30))
    length = draw(st.one_of(st.none(), st.integers(min_value=0, max_value=30)))
    end = None if length is None else start + length
    return BallotRange(start, end, draw(ballots))


PROBE_INSTANCES = tuple(range(0, 70, 3))


def effective_map(state: MastershipState):
    return {i: state.effective_range(i) for i in PROBE_INSTANCES}


# ----------------------------------------------------------------------
# Mastership algebra
# ----------------------------------------------------------------------
class TestMastershipProperties:
    @given(st.lists(ballot_ranges(), max_size=8), ballot_ranges())
    @settings(max_examples=200)
    def test_refused_grant_leaves_state_unchanged(self, history, attempt):
        state = MastershipState()
        for grant in history:
            state.grant(grant)
        before = effective_map(state)
        if not state.grant(attempt):
            assert effective_map(state) == before

    @given(st.lists(ballot_ranges(), max_size=8), ballot_ranges())
    @settings(max_examples=200)
    def test_successful_grant_is_authoritative_on_its_range(
        self, history, attempt
    ):
        state = MastershipState()
        for grant in history:
            state.grant(grant)
        if state.grant(attempt):
            for i in PROBE_INSTANCES:
                if attempt.covers(i):
                    assert state.effective_range(i) == attempt

    @given(st.lists(ballot_ranges(), max_size=8))
    @settings(max_examples=200)
    def test_refusal_iff_strictly_higher_overlap(self, history):
        """grant() refuses exactly when a covered instance is promised to
        a strictly higher ballot."""
        state = MastershipState()
        for attempt in history:
            conflicted = any(
                state.effective_range(i).ballot > attempt.ballot
                for i in PROBE_INSTANCES
                if attempt.covers(i)
            )
            granted = state.grant(attempt)
            if granted:
                # No probed covered instance may now outrank the grant.
                for i in PROBE_INSTANCES:
                    if attempt.covers(i):
                        assert state.effective_range(i).ballot == attempt.ballot
            else:
                assert conflicted or self._unprobed_conflict(state, attempt)

    @staticmethod
    def _unprobed_conflict(state, attempt):
        """Refusals caused by overlaps outside the probe grid."""
        for existing in state.ranges:
            if existing.ballot > attempt.ballot:
                a_end = (
                    float("inf")
                    if existing.end_instance is None
                    else existing.end_instance
                )
                b_end = (
                    float("inf")
                    if attempt.end_instance is None
                    else attempt.end_instance
                )
                if existing.start_instance <= b_end and attempt.start_instance <= a_end:
                    return True
        return False

    @given(st.lists(ballot_ranges(), max_size=10))
    @settings(max_examples=200)
    def test_default_applies_outside_all_grants(self, history):
        state = MastershipState()
        for grant in history:
            state.grant(grant)
        horizon = max(
            (
                g.end_instance
                for g in state.ranges
                if g.end_instance is not None
            ),
            default=-1,
        )
        has_open_ended = any(g.end_instance is None for g in state.ranges)
        if not has_open_ended:
            assert state.is_fast(horizon + 1)
            assert state.effective_range(horizon + 1) == BallotRange.default()


# ----------------------------------------------------------------------
# Record version chains
# ----------------------------------------------------------------------
write_sequences = st.lists(
    st.one_of(
        st.dictionaries(
            st.sampled_from(["stock", "price"]),
            st.integers(min_value=0, max_value=100),
            min_size=1,
            max_size=2,
        ),
        st.none(),  # delete
    ),
    min_size=1,
    max_size=12,
)


class TestRecordChainProperties:
    @given(write_sequences)
    @settings(max_examples=200)
    def test_versions_strictly_increase(self, writes):
        record = Record("t", "k")
        seen = [record.current_version]
        for value in writes:
            if value is None:
                if record.exists:
                    record.commit_delete()
                    seen.append(record.current_version)
            else:
                record.commit_value(value)
                seen.append(record.current_version)
        assert seen == sorted(set(seen))

    @given(write_sequences)
    @settings(max_examples=200)
    def test_snapshot_reflects_last_write(self, writes):
        record = Record("t", "k")
        last_value = None
        for value in writes:
            if value is None:
                if record.exists:
                    record.commit_delete()
                    last_value = None
            else:
                record.commit_value(value)
                last_value = dict(value)
        snapshot = record.snapshot()
        if last_value is None:
            assert not snapshot.exists
        else:
            assert snapshot.exists and snapshot.value == last_value

    @given(
        write_sequences,
        st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=200)
    def test_catch_up_is_monotone_join(self, writes, lag_version):
        """catch_up never regresses: applying any (version, value) with
        version <= current is a no-op; higher versions win wholesale."""
        record = Record("t", "k")
        for value in writes:
            if value is None:
                if record.exists:
                    record.commit_delete()
            else:
                record.commit_value(value)
        version_before = record.current_version
        snapshot_before = record.snapshot()
        changed = record.catch_up(lag_version, {"stock": 1})
        if lag_version <= version_before:
            assert not changed
            assert record.current_version == version_before
            assert record.snapshot().value == snapshot_before.value
        else:
            assert changed
            assert record.current_version == lag_version

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["stock", "price"]),
                st.integers(min_value=-5, max_value=5),
            ),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=200)
    def test_deltas_commute_at_storage_layer(self, deltas):
        """Any permutation of commutative deltas yields the same value."""
        forward = Record("t", "k")
        forward.commit_value({"stock": 100, "price": 100})
        backward = Record("t", "k")
        backward.commit_value({"stock": 100, "price": 100})
        for attribute, delta in deltas:
            forward.commit_delta(attribute, delta)
        for attribute, delta in reversed(deltas):
            backward.commit_delta(attribute, delta)
        assert forward.snapshot().value == backward.snapshot().value
        assert forward.current_version == backward.current_version


# ----------------------------------------------------------------------
# Kernel determinism
# ----------------------------------------------------------------------
class TestKernelDeterminism:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
                st.integers(min_value=0, max_value=9),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=100)
    def test_identical_schedules_replay_identically(self, schedule):
        def run():
            sim = Simulator()
            trace = []
            for delay, tag in schedule:
                sim.schedule(delay, lambda t=tag: trace.append((sim.now, t)))
            sim.run()
            return trace

        assert run() == run()

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            min_size=2,
            max_size=20,
        )
    )
    @settings(max_examples=100)
    def test_same_instant_fires_in_schedule_order(self, delays):
        """Events scheduled for the same time fire in submission order."""
        sim = Simulator()
        fired = []
        for index, _delay in enumerate(delays):
            sim.schedule(5.0, fired.append, index)
        sim.run()
        assert fired == list(range(len(delays)))
