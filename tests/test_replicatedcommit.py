"""Replicated Commit: Paxos across data centers over per-DC 2PC.

Covers the protocol's three claims against MDCC (one WAN round per
transaction, majority reads, no blocking on a straggler DC) plus its
failure vocabulary: minority partitions abort, out-of-order applies
buffer instead of corrupting, and anti-entropy converges a DC that
missed a decision — releasing any lock the lost decision stranded.
"""

import pytest

from repro.core.messages import RcApply, RcPrepare, CatchUp
from repro.core.options import PhysicalUpdate, RecordId
from repro.db.cluster import build_cluster
from repro.protocols.replicatedcommit import (
    ReplicatedCommitClient,
    ReplicatedCommitStorageNode,
)
from repro.storage.schema import Constraint, TableSchema

ITEMS = TableSchema("items", constraints={"stock": Constraint(minimum=0)})


def make_cluster(seed=1, **kwargs):
    cluster = build_cluster("repcommit", seed=seed, **kwargs)
    cluster.register_table(ITEMS)
    return cluster


def run_tx(cluster, fut, limit_ms=300_000):
    return cluster.sim.run_until(fut, limit=cluster.sim.now + limit_ms)


def drain(cluster, ms=5_000):
    cluster.sim.run(until=cluster.sim.now + ms)


class TestCommitPath:
    def test_commit_applies_everywhere(self):
        cluster = make_cluster()
        cluster.load_record("items", "i", {"stock": 10})
        client = cluster.add_client("us-west")
        tx = cluster.begin(client)
        run_tx(cluster, tx.read("items", "i"))
        tx.write("items", "i", {"stock": 9})
        outcome = run_tx(cluster, tx.commit())
        assert outcome.committed
        assert not outcome.fast_path
        drain(cluster)
        for snap in cluster.committed_snapshots("items", "i").values():
            assert snap.value == {"stock": 9}
            assert snap.version == 2

    def test_one_wan_round_per_transaction(self):
        """Commit latency is one WAN round to the majority-deciding DC —
        about the RTT to the 3rd-closest DC from us-west (~120ms), far
        under 2PC's two rounds to ALL replicas (~420ms)."""
        cluster = make_cluster(seed=2)
        for i in range(3):
            cluster.load_record("items", f"i{i}", {"stock": 10})
        client = cluster.add_client("us-west")
        tx = cluster.begin(client)
        for i in range(3):
            run_tx(cluster, tx.read("items", f"i{i}", ))
            tx.write("items", f"i{i}", {"stock": 9})
        outcome = run_tx(cluster, tx.commit())
        assert outcome.committed
        # Multi-record write-set, still a single wide-area round.
        assert 100 <= outcome.latency_ms <= 250

    def test_empty_writeset_commits_immediately(self):
        cluster = make_cluster(seed=3)
        client = cluster.add_client("us-east")
        outcome = run_tx(cluster, cluster.begin(client).commit())
        assert outcome.committed
        assert outcome.statuses == {}

    def test_conflicting_transactions_one_aborts(self):
        cluster = make_cluster(seed=4)
        cluster.load_record("items", "hot", {"stock": 50})
        c1 = cluster.add_client("us-west")
        c2 = cluster.add_client("eu-west")
        t1, t2 = cluster.begin(c1), cluster.begin(c2)
        run_tx(cluster, t1.read("items", "hot"))
        run_tx(cluster, t2.read("items", "hot"))
        t1.write("items", "hot", {"stock": 49})
        t2.write("items", "hot", {"stock": 48})
        f1, f2 = t1.commit(), t2.commit()
        o1, o2 = run_tx(cluster, f1), run_tx(cluster, f2)
        assert not (o1.committed and o2.committed)
        drain(cluster, 30_000)
        values = {
            snap.value["stock"]
            for snap in cluster.committed_snapshots("items", "hot").values()
        }
        assert len(values) == 1  # every replica converged on one winner

    def test_constraint_checked_at_prepare(self):
        cluster = make_cluster(seed=5)
        cluster.load_record("items", "scarce", {"stock": 1})
        client = cluster.add_client("us-west")
        tx = cluster.begin(client)
        run_tx(cluster, tx.read("items", "scarce"))
        tx.write("items", "scarce", {"stock": -1})
        assert not run_tx(cluster, tx.commit()).committed


class TestMajorityReads:
    def test_read_returns_freshest_of_majority(self):
        """'Reads go to a majority of data centers': one stale DC cannot
        serve a stale read even if it answers first."""
        cluster = make_cluster(seed=6)
        cluster.load_record("items", "i", {"stock": 10})
        record = RecordId("items", "i")
        # Advance 3 of 5 replicas out-of-band; us-west stays at version 1.
        for dc in ("us-east", "eu-west", "ap-southeast"):
            node = cluster.storage_nodes[cluster.placement.replica_in(record, dc)]
            node.store.record("items", "i").commit_value({"stock": 7})
        client = cluster.add_client("us-west")
        reply = run_tx(cluster, client.read("items", "i"))
        assert reply.version == 2
        assert reply.value == {"stock": 7}

    def test_pinned_read_takes_one_replica(self):
        cluster = make_cluster(seed=7)
        cluster.load_record("items", "i", {"stock": 10})
        client = cluster.add_client("us-west")
        reply = run_tx(cluster, client.read("items", "i", dc="us-west"))
        assert reply.version == 1

    def test_read_retries_are_bounded(self):
        """A read into a permanent full outage terminates (as a miss)
        instead of spinning forever."""
        cluster = make_cluster(seed=8)
        cluster.load_record("items", "i", {"stock": 10})
        for dc in cluster.placement.datacenters:
            cluster.fail_datacenter(dc)
        client = cluster.add_client("us-west")
        reply = run_tx(cluster, client.read("items", "i"), limit_ms=600_000)
        assert not reply.exists
        assert reply.version == 0


class TestPartitions:
    def test_minority_partition_aborts(self):
        """With 3 of 5 DCs unreachable the proposer cannot reach a
        majority of yes votes: the transaction aborts (vote timeout),
        it does not block."""
        cluster = make_cluster(seed=9)
        cluster.load_record("items", "i", {"stock": 10})
        client = cluster.add_client("us-west")
        tx = cluster.begin(client)
        run_tx(cluster, tx.read("items", "i"))
        for dc in ("eu-west", "ap-southeast", "ap-northeast"):
            cluster.fail_datacenter(dc)
        tx.write("items", "i", {"stock": 9})
        outcome = run_tx(cluster, tx.commit(), limit_ms=600_000)
        assert not outcome.committed
        # The healed cluster is not wedged: locks released, commits flow.
        for dc in ("eu-west", "ap-southeast", "ap-northeast"):
            cluster.recover_datacenter(dc)
        drain(cluster, 30_000)
        tx2 = cluster.begin(client)
        run_tx(cluster, tx2.read("items", "i"))
        tx2.write("items", "i", {"stock": 8})
        assert run_tx(cluster, tx2.commit()).committed

    def test_majority_commits_through_minority_outage(self):
        """The flip side: ONE failed DC does not stall commits (unlike
        2PC, which needs all replicas)."""
        cluster = make_cluster(seed=10)
        cluster.load_record("items", "i", {"stock": 10})
        cluster.fail_datacenter("ap-southeast")
        client = cluster.add_client("us-west")
        tx = cluster.begin(client)
        run_tx(cluster, tx.read("items", "i"))
        tx.write("items", "i", {"stock": 9})
        outcome = run_tx(cluster, tx.commit())
        assert outcome.committed

    def test_antientropy_converges_partitioned_dc(self):
        """A DC that missed the decision catches up via the shared
        RepairProbe/CatchUp sweep once the partition heals."""
        cluster = make_cluster(seed=11)
        cluster.load_record("items", "i", {"stock": 10})
        cluster.fail_datacenter("ap-southeast")
        client = cluster.add_client("us-west")
        tx = cluster.begin(client)
        run_tx(cluster, tx.read("items", "i"))
        tx.write("items", "i", {"stock": 9})
        assert run_tx(cluster, tx.commit()).committed
        drain(cluster, 30_000)
        cluster.recover_datacenter("ap-southeast")
        stale = cluster.read_committed("items", "i", dc="ap-southeast")
        assert stale.version == 1  # missed the apply during the outage
        agent = cluster.add_anti_entropy_agent("us-west")
        run_tx(cluster, agent.sweep("items", ["i"]))
        drain(cluster, 30_000)
        for snap in cluster.committed_snapshots("items", "i").values():
            assert snap.version == 2
            assert snap.value == {"stock": 9}


class TestParticipantStateMachine:
    """Direct handler-level coverage of the reorder/idempotence corners
    (the WAN delivers decisions and prepares in any order)."""

    def _node_and_record(self, cluster):
        record = RecordId("items", "i")
        node_id = cluster.placement.replica_in(record, "us-west")
        node = cluster.storage_nodes[node_id]
        assert isinstance(node, ReplicatedCommitStorageNode)
        return node, record

    def test_out_of_order_applies_buffer_until_predecessor(self):
        cluster = make_cluster(seed=12)
        cluster.load_record("items", "i", {"stock": 10})
        node, record = self._node_and_record(cluster)
        later = PhysicalUpdate(vread=2, new_value={"stock": 5})
        earlier = PhysicalUpdate(vread=1, new_value={"stock": 7})
        node.handle_rc_apply(
            RcApply(txid="t2", record=record, update=later, commit=True), "x"
        )
        # Parked: version 1 state is untouched until t1's apply lands.
        assert node.store.read("items", "i").value == {"stock": 10}
        node.handle_rc_apply(
            RcApply(txid="t1", record=record, update=earlier, commit=True), "x"
        )
        snap = node.store.read("items", "i")
        assert snap.version == 3
        assert snap.value == {"stock": 5}
        assert record not in node._apply_buffer  # drained

    def test_duplicate_apply_is_idempotent(self):
        cluster = make_cluster(seed=13)
        cluster.load_record("items", "i", {"stock": 10})
        node, record = self._node_and_record(cluster)
        update = PhysicalUpdate(vread=1, new_value={"stock": 9})
        message = RcApply(txid="t1", record=record, update=update, commit=True)
        node.handle_rc_apply(message, "x")
        node.handle_rc_apply(message, "x")
        assert node.store.read("items", "i").version == 2

    def test_prepare_after_decision_does_not_strand_lock(self):
        """A prepare overtaken by its own decision must not lock: nothing
        is coming to release it (same reorder hazard as 2PC)."""
        cluster = make_cluster(seed=14)
        cluster.load_record("items", "i", {"stock": 10})
        node, record = self._node_and_record(cluster)
        update = PhysicalUpdate(vread=1, new_value={"stock": 9})
        node.handle_rc_apply(
            RcApply(txid="t-lost", record=record, update=update, commit=False), "x"
        )
        node.handle_rc_prepare(
            RcPrepare(txid="t-lost", record=record, update=update, reply_to="x"), "x"
        )
        assert record not in node._locks

    def test_catch_up_releases_stranded_lock(self):
        """Adopting repaired state supersedes whatever decision the
        replica missed — the stranded lock must not block future writes."""
        cluster = make_cluster(seed=15)
        cluster.load_record("items", "i", {"stock": 10})
        node, record = self._node_and_record(cluster)
        update = PhysicalUpdate(vread=1, new_value={"stock": 9})
        node.handle_rc_prepare(
            RcPrepare(txid="t-lost", record=record, update=update, reply_to="x"), "x"
        )
        assert record in node._locks  # prepared, decision never arrives
        node.handle_catch_up(
            CatchUp(record=record, version=2, value={"stock": 9}, exists=True), "x"
        )
        assert record not in node._locks
        assert node.store.read("items", "i").version == 2


class TestClusterIntegration:
    def test_roles_are_replicated_commit(self):
        cluster = make_cluster(seed=16)
        assert all(
            isinstance(node, ReplicatedCommitStorageNode)
            for node in cluster.storage_nodes.values()
        )
        assert isinstance(cluster.add_client("us-east"), ReplicatedCommitClient)

    def test_serializable_supported(self):
        cluster = make_cluster(seed=17)
        cluster.load_record("items", "a", {"stock": 5})
        cluster.load_record("items", "b", {"stock": 5})
        client = cluster.add_client("us-west")
        tx = cluster.begin(client, serializable=True)
        run_tx(cluster, tx.read("items", "a"))  # read-set entry
        run_tx(cluster, tx.read("items", "b"))
        tx.write("items", "b", {"stock": 4})
        # Invalidate the read of "a" behind the transaction's back.
        other = cluster.begin(cluster.add_client("eu-west"))
        run_tx(cluster, other.read("items", "a"))
        other.write("items", "a", {"stock": 1})
        assert run_tx(cluster, other.commit()).committed
        drain(cluster, 30_000)
        assert not run_tx(cluster, tx.commit()).committed  # stale read-set

    def test_adaptive_placement_rejected(self):
        with pytest.raises(ValueError, match="adaptive master placement"):
            build_cluster("repcommit", master_policy="adaptive")

    def test_elastic_membership_rejected(self):
        with pytest.raises(ValueError, match="elastic membership"):
            build_cluster("repcommit", elastic=True)
