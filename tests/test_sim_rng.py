"""Unit tests for deterministic RNG streams."""

from repro.sim.rng import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "net") == derive_seed(1, "net")

    def test_name_sensitivity(self):
        assert derive_seed(1, "net") != derive_seed(1, "workload")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "net") != derive_seed(2, "net")


class TestRngRegistry:
    def test_same_name_same_stream_object(self):
        registry = RngRegistry(seed=5)
        assert registry.stream("a") is registry.stream("a")

    def test_streams_are_independent(self):
        # Drawing from one stream must not perturb another.
        reference = RngRegistry(seed=5)
        expected = [reference.stream("b").random() for _ in range(5)]

        registry = RngRegistry(seed=5)
        registry.stream("a").random()  # interleaved draw on another stream
        observed = [registry.stream("b").random() for _ in range(5)]
        assert observed == expected

    def test_replay_identical_across_registries(self):
        r1 = RngRegistry(seed=99)
        r2 = RngRegistry(seed=99)
        assert [r1.stream("x").random() for _ in range(10)] == [
            r2.stream("x").random() for _ in range(10)
        ]

    def test_fork_is_independent_of_parent(self):
        parent = RngRegistry(seed=1)
        child = parent.fork("child")
        assert child.seed != parent.seed
        assert child.stream("x").random() != parent.stream("x").random()

    def test_contains(self):
        registry = RngRegistry()
        assert "a" not in registry
        registry.stream("a")
        assert "a" in registry
