"""Unit and property tests for quorum sizing and intersections."""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.paxos.quorum import QuorumSpec, classic_quorum_size, min_fast_quorum_size


class TestSizes:
    def test_paper_setting_n5(self):
        # §3.3.1: "A typical setting for a replication factor of 5 is a
        # classic quorum size of 3 and a fast quorum size of 4."
        spec = QuorumSpec.for_replication(5)
        assert spec.classic_size == 3
        assert spec.fast_size == 4

    def test_classic_sizes(self):
        assert classic_quorum_size(1) == 1
        assert classic_quorum_size(3) == 2
        assert classic_quorum_size(4) == 3
        assert classic_quorum_size(5) == 3
        assert classic_quorum_size(7) == 4

    def test_classic_size_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            classic_quorum_size(0)

    def test_min_fast_sizes(self):
        assert min_fast_quorum_size(3, 2) == 3
        assert min_fast_quorum_size(5, 3) == 4
        assert min_fast_quorum_size(7, 4) == 6

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            QuorumSpec(n=5, classic_size=2, fast_size=4)  # classic too small
        with pytest.raises(ValueError):
            QuorumSpec(n=5, classic_size=3, fast_size=3)  # fast too small
        with pytest.raises(ValueError):
            QuorumSpec(n=5, classic_size=3, fast_size=6)  # fast too large

    @given(st.integers(min_value=1, max_value=15))
    def test_derived_spec_always_valid(self, n):
        spec = QuorumSpec.for_replication(n)  # __post_init__ validates
        assert spec.n == n

    @given(st.integers(min_value=1, max_value=9))
    def test_two_fast_one_classic_always_intersect(self, n):
        """Exhaustively verify requirement (ii) on small groups."""
        spec = QuorumSpec.for_replication(n)
        acceptors = [f"a{i}" for i in range(n)]
        fast_quorums = [
            set(c) for c in itertools.combinations(acceptors, spec.fast_size)
        ]
        classic_quorums = [
            set(c) for c in itertools.combinations(acceptors, spec.classic_size)
        ]
        for f1 in fast_quorums:
            for f2 in fast_quorums:
                for c in classic_quorums:
                    assert f1 & f2 & c, (f1, f2, c)

    @given(st.integers(min_value=1, max_value=9))
    def test_any_two_quorums_intersect(self, n):
        """Requirement (i)."""
        spec = QuorumSpec.for_replication(n)
        acceptors = [f"a{i}" for i in range(n)]
        all_quorums = [
            set(c) for c in itertools.combinations(acceptors, spec.classic_size)
        ] + [set(c) for c in itertools.combinations(acceptors, spec.fast_size)]
        for q1 in all_quorums:
            for q2 in all_quorums:
                assert q1 & q2


class TestPredicates:
    def test_is_quorum(self):
        spec = QuorumSpec.for_replication(5)
        assert spec.is_classic_quorum(["a", "b", "c"])
        assert not spec.is_classic_quorum(["a", "b"])
        assert spec.is_fast_quorum(["a", "b", "c", "d"])
        assert not spec.is_fast_quorum(["a", "b", "c"])

    def test_duplicates_do_not_inflate_quorum(self):
        spec = QuorumSpec.for_replication(5)
        assert not spec.is_classic_quorum(["a", "a", "a"])

    def test_fast_unreachable(self):
        spec = QuorumSpec.for_replication(5)  # fast quorum = 4
        # 2 positive, 2 responded-negative, 1 outstanding: max 3 < 4.
        assert spec.fast_unreachable(positive=2, total_responses=4)
        # 3 positive, 1 negative, 1 outstanding: could still reach 4.
        assert not spec.fast_unreachable(positive=3, total_responses=4)
        # All responded, 4 positive: reached, not unreachable.
        assert not spec.fast_unreachable(positive=4, total_responses=5)

    def test_possible_fast_quorums_count(self):
        spec = QuorumSpec.for_replication(5)
        quorums = list(spec.possible_fast_quorums([f"a{i}" for i in range(5)]))
        assert len(quorums) == 5  # C(5,4)
        assert all(len(q) == 4 for q in quorums)

    def test_possible_fast_quorums_wrong_group_size(self):
        spec = QuorumSpec.for_replication(5)
        with pytest.raises(ValueError):
            list(spec.possible_fast_quorums(["a", "b"]))

    def test_fast_intersections_with(self):
        spec = QuorumSpec.for_replication(5)
        acceptors = [f"a{i}" for i in range(5)]
        classic = {"a0", "a1", "a2"}
        pairs = list(spec.fast_intersections_with(classic, acceptors))
        assert len(pairs) == 5
        for fast_quorum, intersection in pairs:
            assert intersection == fast_quorum & classic
            assert intersection  # n=5 spec guarantees non-empty
